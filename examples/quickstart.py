"""Quickstart: robust predictive auto-scaling in ~30 lines.

Trains a TFT quantile forecaster on an Alibaba-like CPU trace, builds a
robust scaling plan at the 0.9 quantile, and replays it on the
disaggregated-cluster simulator.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FixedQuantilePolicy,
    RobustPredictiveAutoscaler,
    TFTForecaster,
    TrainingConfig,
    alibaba_like_trace,
    evaluate_plan,
)
from repro.simulator import replay_plan

CONTEXT, HORIZON, THETA = 72, 72, 60.0  # 12h context/horizon, 60% CPU per node

# 1. Workload trace (synthetic stand-in for the Alibaba cluster trace).
trace = alibaba_like_trace(num_steps=144 * 14, seed=7)
train, test = trace.split(test_fraction=0.2)
print(f"trace: {trace.name}, {len(trace)} steps ({trace.duration_hours:.0f} h)")

# 2. Probabilistic workload forecaster.
forecaster = TFTForecaster(
    CONTEXT,
    HORIZON,
    d_model=32,
    num_heads=4,
    config=TrainingConfig(epochs=15, window_stride=2, patience=3, seed=0),
)

# 3. Robust auto-scaler: forecaster + fixed-0.9-quantile policy.
autoscaler = RobustPredictiveAutoscaler(
    forecaster, threshold=THETA, policy=FixedQuantilePolicy(0.9)
)
print("training the forecaster ...")
autoscaler.fit(train.values)

# 4. One decision cycle: plan the next 12 hours.
context = test.values[:CONTEXT]
plan = autoscaler.plan(context, start_index=len(train.values))
print(f"plan ({plan.strategy}): {plan.total_nodes} node-steps over {plan.horizon} steps")
print("first 12 allocations:", plan.nodes[:12])

# 5. Score against what actually happened.
actual = test.values[CONTEXT : CONTEXT + HORIZON]
report = evaluate_plan(plan, actual)
print(f"under-provisioning rate: {report.under_provisioning_rate:.3f}")
print(f"over-provisioning rate : {report.over_provisioning_rate:.3f}")

# 6. Replay on the cluster simulator (warm-up, node-seconds, scale events).
result = replay_plan(plan, actual, interval_seconds=trace.interval_seconds)
print(
    f"simulator: {result.total_node_seconds / 3600:.1f} node-hours, "
    f"{result.scale_out_events} scale-outs, {result.scale_in_events} scale-ins, "
    f"violation rate {result.violation_rate:.3f}"
)
