"""Chaos engineering the closed autoscaling loop.

Subjects the same planner to escalating fault campaigns — telemetry
corruption only, planner crashes only, actuation failures only, then
everything at once — and shows what graceful degradation costs: the
loop never crashes, every planner failure is served by the reactive
fallback (visible as ``source="degraded"`` decisions), and the damage
shows up as a violation/overhead delta, not an exception.

Each campaign is a seeded :class:`~repro.faults.FaultSchedule`, so any
row of the table is exactly reproducible from its seed.

Run:  python examples/chaos_engineering.py
"""

from repro import FixedQuantilePolicy, RobustPredictiveAutoscaler, alibaba_like_trace
from repro.evaluation import chaos_run, format_chaos_report
from repro.faults import FaultSchedule
from repro.forecast import SeasonalNaiveForecaster
from repro.traces import STEPS_PER_DAY

CONTEXT, HORIZON, THETA = 144, 36, 60.0

trace = alibaba_like_trace(num_steps=10 * STEPS_PER_DAY, seed=29)
train, test = trace.split(test_fraction=0.3)

forecaster = SeasonalNaiveForecaster(HORIZON, season=STEPS_PER_DAY)
forecaster.fit(train.values)
scaler = RobustPredictiveAutoscaler(forecaster, THETA, FixedQuantilePolicy(0.9))

steps = len(test.values)
campaigns = {
    "telemetry only": FaultSchedule.random(
        steps, seed=1,
        rates={"nan": 0.05, "drop": 0.03, "spike": 0.02, "duplicate": 0.02},
    ),
    "planner only": FaultSchedule.random(
        steps, seed=2, rates={"planner_error": 0.01, "planner_timeout": 0.005},
    ),
    "cluster only": FaultSchedule.random(
        steps, seed=3,
        rates={"node_crash": 0.03, "provision_fail": 0.02, "warmup_stall": 0.02},
    ),
    "everything": FaultSchedule.random(
        steps, seed=4,
        rates={
            "nan": 0.03, "drop": 0.02, "spike": 0.01,
            "planner_error": 0.01, "planner_timeout": 0.005,
            "node_crash": 0.02, "provision_fail": 0.01, "warmup_stall": 0.01,
        },
    ),
}

print(f"{'campaign':<16} {'faults':>7} {'viol. clean':>12} {'viol. chaos':>12} "
      f"{'degraded':>9} {'overhead':>9} {'repro':>6}")
reports = {}
for name, faults in campaigns.items():
    report = chaos_run(
        lambda: scaler, test.values,
        context_length=CONTEXT, horizon=HORIZON, threshold=THETA,
        faults=faults, start_index=len(train.values),
    )
    reports[name] = report
    print(
        f"{name:<16} {len(faults):>7} "
        f"{report.baseline_violation_rate:>11.1%} "
        f"{report.faulted_violation_rate:>11.1%} "
        f"{report.degraded_intervals:>9} "
        f"{report.node_step_overhead:>8.1%} "
        f"{'yes' if report.deterministic else 'NO':>6}"
    )

print()
print("full report for the 'everything' campaign:")
print(format_chaos_report(reports["everything"]))

assert all(r.deterministic for r in reports.values()), "chaos must be reproducible"
print("\nall campaigns survived and replayed bit-identically")
