"""QoS view of auto-scaling: from node counts to p99 latency — with
model-health monitoring running alongside.

The paper scores strategies against resource thresholds; this example
uses the M/M/c performance model (the Section V-B future-work direction)
to translate allocations into query latency and score a p99 SLO.  On
top of that, a :class:`repro.obs.ModelHealthMonitor` watches the
forecaster's calibration online and an alert engine flags windows where
coverage sags or residual drift fires — the observability layer a
production deployment would page on.

Run:  python examples/qos_slo_monitoring.py
"""

import numpy as np

from repro import (
    FixedQuantilePolicy,
    RobustPredictiveAutoscaler,
    TFTForecaster,
    TrainingConfig,
    alibaba_like_trace,
    evaluate_strategy,
)
from repro.obs import (
    AlertEngine,
    ModelHealthMonitor,
    default_rules,
    parse_rule,
)
from repro.simulator import MMcQueue, evaluate_qos
from repro.core import ScalingPlan

CONTEXT, HORIZON, THETA = 72, 72, 60.0
SERVICE_RATE = 100.0  # queries/s per node
SLO = 0.025  # 25 ms p99 target

trace = alibaba_like_trace(num_steps=144 * 12, seed=17)
train, test = trace.split(test_fraction=0.25)

forecaster = TFTForecaster(
    CONTEXT, HORIZON, d_model=32, num_heads=4,
    config=TrainingConfig(epochs=12, window_stride=3, patience=3, seed=0),
)
print("training ...")
forecaster.fit(train.values)


def feed_monitor(monitor):
    """evaluate_strategy callback streaming each plan's forecast into the monitor."""
    def on_window(point, plan, actual_window):
        levels = plan.metadata.get("forecast_levels")
        values = plan.metadata.get("forecast_values")
        if levels is None:
            return
        for h in range(min(plan.horizon, len(actual_window))):
            monitor.observe(levels, values[:, h], actual_window[h],
                            time_index=point + h)
    return on_window


print(f"\n{'policy':<12} {'under-prov':>11} {'p99 SLO viol.':>14} "
      f"{'mean p99 (ms)':>14} {'node-steps':>11} {'cal.err':>8} {'drift':>6}")
monitors = {}
for tau in (0.5, 0.8, 0.9, 0.99):
    rules = default_rules(nominal_level=tau)
    rules.append(parse_rule("mape > 0.5 for 2"))
    monitor = ModelHealthMonitor(window=24, alerts=AlertEngine(rules))
    monitors[tau] = monitor
    scaler = RobustPredictiveAutoscaler(forecaster, THETA, FixedQuantilePolicy(tau))
    ev = evaluate_strategy(
        scaler, test.values, CONTEXT, HORIZON, THETA,
        series_start_index=len(train.values),
        on_window=feed_monitor(monitor),
    )
    plan = ScalingPlan(nodes=ev.nodes, threshold=THETA)
    qos = evaluate_qos(plan, ev.actual, service_rate=SERVICE_RATE, slo_seconds=SLO)
    cal_err = (float(np.mean([w.calibration_error for w in monitor.windows]))
               if monitor.windows else float("nan"))
    print(
        f"{'tau=' + str(tau):<12} {ev.report.under_provisioning_rate:>11.3f} "
        f"{qos.slo_violation_rate:>14.3f} {qos.mean_p99 * 1000:>14.2f} "
        f"{int(plan.total_nodes):>11} {cal_err:>8.3f} "
        f"{len(monitor.drift_events):>6}"
    )

# Model health for the paper's running configuration (tau = 0.9).
monitor = monitors[0.9]
print(f"\nmodel health at tau=0.9: {len(monitor.windows)} windows, "
      f"{len(monitor.drift_events)} drift events, "
      f"{len(monitor.alerts.alerts)} alerts")
for window in monitor.windows[-3:]:
    cov = window.coverage.get("0.9", float("nan"))
    print(f"  window {window.window} (t={window.start_index}-{window.end_index}): "
          f"coverage@0.9={cov:.2f}, wQL={window.mean_wql:.4f}, "
          f"MAPE={window.mape:.3f}")
for alert in monitor.alerts.alerts:
    print(f"  ALERT [{alert.rule.severity}] {alert.message}")

# A single interval, inspected closely.
queue = MMcQueue(arrival_rate=2200.0, service_rate=SERVICE_RATE, servers=40)
print(
    f"\nexample interval: 22 Erlangs on 40 nodes -> rho={queue.utilization:.2f}, "
    f"P(wait)={queue.erlang_c():.4f}, p99 response="
    f"{queue.response_quantile(0.99) * 1000:.2f} ms"
)
