"""QoS view of auto-scaling: from node counts to p99 latency.

The paper scores strategies against resource thresholds; this example
uses the M/M/c performance model (the Section V-B future-work direction)
to translate allocations into query latency and score a p99 SLO.

Run:  python examples/qos_slo_monitoring.py
"""

import numpy as np

from repro import (
    FixedQuantilePolicy,
    RobustPredictiveAutoscaler,
    TFTForecaster,
    TrainingConfig,
    alibaba_like_trace,
    evaluate_strategy,
)
from repro.simulator import MMcQueue, evaluate_qos
from repro.core import ScalingPlan

CONTEXT, HORIZON, THETA = 72, 72, 60.0
SERVICE_RATE = 100.0  # queries/s per node
SLO = 0.025  # 25 ms p99 target

trace = alibaba_like_trace(num_steps=144 * 12, seed=17)
train, test = trace.split(test_fraction=0.25)

forecaster = TFTForecaster(
    CONTEXT, HORIZON, d_model=32, num_heads=4,
    config=TrainingConfig(epochs=12, window_stride=3, patience=3, seed=0),
)
print("training ...")
forecaster.fit(train.values)

print(f"\n{'policy':<12} {'under-prov':>11} {'p99 SLO viol.':>14} "
      f"{'mean p99 (ms)':>14} {'node-steps':>11}")
for tau in (0.5, 0.8, 0.9, 0.99):
    scaler = RobustPredictiveAutoscaler(forecaster, THETA, FixedQuantilePolicy(tau))
    ev = evaluate_strategy(
        scaler, test.values, CONTEXT, HORIZON, THETA,
        series_start_index=len(train.values),
    )
    plan = ScalingPlan(nodes=ev.nodes, threshold=THETA)
    qos = evaluate_qos(plan, ev.actual, service_rate=SERVICE_RATE, slo_seconds=SLO)
    print(
        f"{'tau=' + str(tau):<12} {ev.report.under_provisioning_rate:>11.3f} "
        f"{qos.slo_violation_rate:>14.3f} {qos.mean_p99 * 1000:>14.2f} "
        f"{int(plan.total_nodes):>11}"
    )

# A single interval, inspected closely.
queue = MMcQueue(arrival_rate=2200.0, service_rate=SERVICE_RATE, servers=40)
print(
    f"\nexample interval: 22 Erlangs on 40 nodes -> rho={queue.utilization:.2f}, "
    f"P(wait)={queue.erlang_c():.4f}, p99 response="
    f"{queue.response_quantile(0.99) * 1000:.2f} ms"
)
