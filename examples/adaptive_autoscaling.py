"""Uncertainty-aware adaptive scaling (Algorithm 1) in action.

Compares three policies with the same TFT forecaster on a Google-like
trace (where forecast uncertainty genuinely varies over time):

* fixed optimistic (tau = 0.7),
* fixed conservative (tau = 0.9),
* adaptive: 0.9 when the Eq. 8 uncertainty exceeds a threshold picked
  from the train-split uncertainty distribution, 0.7 otherwise.

The adaptive policy should land near the conservative one on
under-provisioning while spending fewer nodes — the paper's Figure 11
claim.

Run:  python examples/adaptive_autoscaling.py
"""

import numpy as np

from repro import (
    FixedQuantilePolicy,
    RobustPredictiveAutoscaler,
    StaircasePolicy,
    TFTForecaster,
    TrainingConfig,
    UncertaintyAwarePolicy,
    evaluate_strategy,
    google_like_trace,
    quantile_uncertainty,
)

CONTEXT, HORIZON, THETA = 72, 72, 60.0

trace = google_like_trace(num_steps=144 * 14, seed=13)
train, test = trace.split(test_fraction=0.25)

forecaster = TFTForecaster(
    CONTEXT, HORIZON,
    quantile_levels=(0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99),
    d_model=32, num_heads=4,
    config=TrainingConfig(epochs=15, window_stride=2, patience=3, seed=0),
)
print("training TFT ...")
forecaster.fit(train.values)

# Calibrate the uncertainty threshold rho on the tail of the train split.
calibration = train.values[-(CONTEXT + HORIZON) * 4 :]
uncertainties = []
for start in range(0, len(calibration) - CONTEXT - HORIZON + 1, HORIZON):
    fc = forecaster.predict(
        calibration[start : start + CONTEXT],
        start_index=len(train.values) - len(calibration) + start,
    )
    uncertainties.append(quantile_uncertainty(fc))
rho = float(np.median(np.concatenate(uncertainties)))
print(f"calibrated uncertainty threshold rho = {rho:.1f}")

policies = {
    "fixed-0.7": FixedQuantilePolicy(0.7),
    "fixed-0.9": FixedQuantilePolicy(0.9),
    "adaptive 0.7/0.9": UncertaintyAwarePolicy(0.7, 0.9, uncertainty_threshold=rho),
    "staircase": StaircasePolicy([(0.0, 0.7), (rho, 0.9), (2 * rho, 0.95)]),
}

print(f"\n{'policy':<18} {'under':>8} {'over':>8} {'node-steps':>11}")
for name, policy in policies.items():
    scaler = RobustPredictiveAutoscaler(forecaster, THETA, policy)
    ev = evaluate_strategy(
        scaler, test.values, CONTEXT, HORIZON, THETA,
        series_start_index=len(train.values),
    )
    print(
        f"{name:<18} {ev.report.under_provisioning_rate:>8.3f} "
        f"{ev.report.over_provisioning_rate:>8.3f} {ev.report.total_nodes:>11}"
    )
