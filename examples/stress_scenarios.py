"""Stress-testing a robust autoscaler with injected incidents.

Injects the classic incident shapes (level shift, flash crowd, outage
with retry surge, noise burst) into a clean test trace and measures how
the robust 0.9-quantile strategy and a median (point-like) strategy ride
through each — plus a node failure on the simulated cluster.

Run:  python examples/stress_scenarios.py
"""

import numpy as np

from repro import (
    FixedQuantilePolicy,
    RobustPredictiveAutoscaler,
    TFTForecaster,
    TrainingConfig,
    alibaba_like_trace,
    evaluate_strategy,
)
from repro.simulator import DisaggregatedCluster, SharedStorage, Simulation
from repro.traces import (
    Trace,
    inject_flash_crowd,
    inject_level_shift,
    inject_noise_burst,
    inject_outage_dip,
)

CONTEXT, HORIZON, THETA = 72, 72, 60.0

trace = alibaba_like_trace(num_steps=144 * 12, seed=29)
train, test = trace.split(test_fraction=0.3)

forecaster = TFTForecaster(
    CONTEXT, HORIZON, d_model=32, num_heads=4,
    config=TrainingConfig(epochs=12, window_stride=3, patience=3, seed=0),
)
print("training on the clean trace ...")
forecaster.fit(train.values)

mid = len(test.values) // 2
scenarios = {
    "clean": test,
    "level shift +30%": inject_level_shift(test, start=mid, magnitude=0.3 * test.values.mean()),
    "flash crowd": inject_flash_crowd(test, start=mid, peak_magnitude=0.8 * test.values.mean()),
    "outage + retries": inject_outage_dip(test, start=mid, duration=12, retry_surge_fraction=0.6),
    "noise burst": inject_noise_burst(test, start=mid, duration=72, extra_std=0.15 * test.values.mean()),
}

print(f"\n{'scenario':<18} {'policy':<10} {'under':>8} {'over':>8}")
for name, scenario in scenarios.items():
    for tau in (0.5, 0.9):
        scaler = RobustPredictiveAutoscaler(forecaster, THETA, FixedQuantilePolicy(tau))
        ev = evaluate_strategy(
            scaler, scenario.values, CONTEXT, HORIZON, THETA,
            series_start_index=len(train.values),
        )
        print(
            f"{name:<18} {'tau=' + str(tau):<10} "
            f"{ev.report.under_provisioning_rate:>8.3f} "
            f"{ev.report.over_provisioning_rate:>8.3f}"
        )

# Node failure on the cluster: capacity gap lasts one warm-up.
print("\nnode-failure drill on the simulated cluster:")
simulation = Simulation()
cluster = DisaggregatedCluster(
    simulation, SharedStorage(checkpoint_gb=4.0, jitter_fraction=0.0), initial_nodes=20
)
simulation.run(until=3600.0)
victim = cluster.fail_node()  # control plane auto-replaces
print(f"  failed node {victim.node_id}; serving now: {cluster.serving_nodes()}/20")
simulation.run(until=simulation.now + 10.0)
print(f"  10 s later (post warm-up):   {cluster.serving_nodes()}/20")
print(f"  failures recorded: {cluster.failures}")
