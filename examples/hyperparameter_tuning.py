"""Hyperparameter search for a workload forecaster (the paper's Optuna step).

The paper tunes each model's hyperparameters once with Optuna and then
freezes them across prediction horizons.  This example reproduces the
workflow with the built-in :mod:`repro.tuning` study on a small budget:
random search over TFT's width/heads/learning rate, scored by validation
mean weighted quantile loss on a held-out slice.

Run:  python examples/hyperparameter_tuning.py
"""

import numpy as np

from repro import TFTForecaster, TrainingConfig, alibaba_like_trace
from repro.evaluation import mean_weighted_quantile_loss
from repro.tuning import Study

CONTEXT, HORIZON = 48, 24
LEVELS = (0.1, 0.3, 0.5, 0.7, 0.9)

trace = alibaba_like_trace(num_steps=144 * 8, seed=41)
train, holdout = trace.split(test_fraction=0.25)


def score(model) -> float:
    """Validation mean_wQL over rolling windows of the holdout slice."""
    targets, forecasts = [], {tau: [] for tau in LEVELS}
    for point in range(CONTEXT, len(holdout.values) - HORIZON + 1, HORIZON):
        fc = model.predict(
            holdout.values[point - CONTEXT : point],
            levels=LEVELS,
            start_index=len(train.values) + point - CONTEXT,
        )
        targets.append(holdout.values[point : point + HORIZON])
        for i, tau in enumerate(LEVELS):
            forecasts[tau].append(fc.values[i])
    return mean_weighted_quantile_loss(
        np.concatenate(targets),
        {tau: np.concatenate(chunks) for tau, chunks in forecasts.items()},
    )


def objective(trial) -> float:
    d_model = trial.suggest_categorical("d_model", [16, 32])
    num_heads = trial.suggest_categorical("num_heads", [2, 4])
    lr = trial.suggest_float("learning_rate", 3e-4, 3e-3, log=True)
    config = TrainingConfig(
        epochs=6, window_stride=4, patience=2, learning_rate=lr, seed=0
    )
    model = TFTForecaster(
        CONTEXT, HORIZON, quantile_levels=LEVELS,
        d_model=d_model, num_heads=num_heads, config=config,
    ).fit(train.values)
    value = score(model)
    print(f"  trial {trial.number}: d_model={d_model} heads={num_heads} "
          f"lr={lr:.1e} -> mean_wQL={value:.4f}")
    return value


study = Study(direction="minimize", seed=7)
print("searching (8 trials) ...")
study.optimize(objective, n_trials=8)

print(f"\nbest mean_wQL : {study.best_value:.4f}")
print(f"best params   : {study.best_params}")
print(
    "\nThe paper freezes the winning configuration across all prediction "
    "horizons (Section IV-A2); do the same before running the full "
    "evaluation harness."
)
