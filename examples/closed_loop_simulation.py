"""Closed-loop operation: runtime + forecaster + simulated cluster.

Unlike the offline plan-then-score evaluation, this example operates the
full Figure 2 workflow continuously: the runtime observes each interval's
workload, re-plans every 6 hours from the trailing 12-hour context, and
drives a simulated disaggregated cluster whose nodes attach with real
warm-up delays.  A reactive fallback covers the cold-start phase before
the first context window fills.

Run:  python examples/closed_loop_simulation.py
"""

import numpy as np

from repro import (
    AutoscalingRuntime,
    FixedQuantilePolicy,
    RobustPredictiveAutoscaler,
    TFTForecaster,
    TrainingConfig,
    required_nodes,
)
from repro.simulator import DisaggregatedCluster, SharedStorage, Simulation
from repro.traces import alibaba_like_trace

CONTEXT, HORIZON, THETA = 72, 72, 60.0
INTERVAL = 600.0

trace = alibaba_like_trace(num_steps=144 * 12, seed=23)
train, test = trace.split(test_fraction=0.25)

forecaster = TFTForecaster(
    CONTEXT, HORIZON, d_model=32, num_heads=4,
    config=TrainingConfig(epochs=12, window_stride=3, patience=3, seed=0),
)
print("training ...")
forecaster.fit(train.values)

planner = RobustPredictiveAutoscaler(forecaster, THETA, FixedQuantilePolicy(0.9))
runtime = AutoscalingRuntime(
    planner=planner,
    context_length=CONTEXT,
    horizon=HORIZON,
    threshold=THETA,
    replan_every=36,  # receding horizon: re-plan every 6 hours
    start_tick=len(train.values),
)

simulation = Simulation()
storage = SharedStorage(checkpoint_gb=4.0, jitter_fraction=0.1, seed=1)
cluster = DisaggregatedCluster(simulation, storage, initial_nodes=1)

violations = warmup_violations = 0
for t, workload in enumerate(test.values):
    target = runtime.target_nodes()
    cluster.scale_to(target)
    interval_start = simulation.now
    simulation.run(until=interval_start + INTERVAL)
    serving_seconds = sum(
        node.serving_seconds(interval_start, simulation.now) for node in cluster.nodes
    )
    effective = max(serving_seconds / INTERVAL, 1e-9)
    if workload / effective > THETA:
        violations += 1
        if workload / target <= THETA:
            warmup_violations += 1
    runtime.observe(workload)

steps = len(test.values)
needed = required_nodes(test.values, THETA)
print(f"\nintervals simulated        : {steps}")
print(f"planning decisions         : {len(runtime.decisions)}")
print(f"threshold violations       : {violations} ({violations / steps:.1%})")
print(f"  of which warm-up induced : {warmup_violations}")
print(f"node-hours consumed        : {cluster.total_node_seconds() / 3600:.0f}")
print(f"ideal (oracle) node-hours  : {needed.sum() * INTERVAL / 3600:.0f}")
print(f"scale-out events           : {cluster.scale_out_events}")
print(f"scale-in events            : {cluster.scale_in_events}")
