"""Thrashing control via ramp limits (Section V-A) on the simulator.

An unconstrained robust plan can flap: bursty quantile forecasts yield
node counts that jump up and down every interval.  Bounding the per-step
scale-out/in rate smooths the plan at a small node premium.  Both plans
are replayed on the cluster simulator to count actual scale events and
node-hours.

Run:  python examples/thrashing_control.py
"""

import numpy as np

from repro import (
    FixedQuantilePolicy,
    RobustPredictiveAutoscaler,
    SeasonalNaiveForecaster,
    alibaba_like_trace,
)
from repro.simulator import SharedStorage, replay_plan
from repro.traces import STEPS_PER_DAY

CONTEXT, HORIZON, THETA = 144, 144, 60.0  # one-day horizon

trace = alibaba_like_trace(num_steps=144 * 10, seed=31)
train, test = trace.split(test_fraction=0.3)

# A deliberately jumpy forecaster (seasonal naive repeats last-day noise)
# makes thrashing visible.
forecaster = SeasonalNaiveForecaster(horizon=HORIZON, season=STEPS_PER_DAY)
forecaster.fit(train.values)

free = RobustPredictiveAutoscaler(
    forecaster, THETA, FixedQuantilePolicy(0.9), quantile_levels=(0.5, 0.9)
)
ramped = RobustPredictiveAutoscaler(
    forecaster, THETA, FixedQuantilePolicy(0.9), quantile_levels=(0.5, 0.9),
    max_scale_out=2, max_scale_in=2,
)

context = test.values[:CONTEXT]
actual = test.values[CONTEXT : CONTEXT + HORIZON]
storage = SharedStorage(checkpoint_gb=4.0, jitter_fraction=0.05)

print(f"{'plan':<14} {'node-steps':>11} {'direction changes':>18} "
      f"{'scale events':>13} {'node-hours':>11} {'violations':>11}")
for name, scaler in (("unconstrained", free), ("ramped (2/step)", ramped)):
    plan = scaler.plan(context, start_index=len(train.values))
    deltas = np.diff(plan.nodes)
    changes = int((np.diff(np.sign(deltas[deltas != 0])) != 0).sum())
    result = replay_plan(plan, actual, interval_seconds=600.0, storage=storage)
    print(
        f"{name:<14} {plan.total_nodes:>11} {changes:>18} "
        f"{result.scale_out_events + result.scale_in_events:>13} "
        f"{result.total_node_seconds / 3600:>11.1f} "
        f"{result.violation_rate:>11.3f}"
    )

print(
    "\nRamping trades a small node premium for far fewer scale operations "
    "— the Section V-A mitigation."
)
