"""Compare every probabilistic forecaster on both traces (mini Table I).

Evaluates ARIMA, MLP, DeepAR, and TFT with the paper's metrics
(mean_wQL, wQL/Coverage at 0.7/0.8/0.9, MSE) at a laptop-scale budget.
The full-budget version is benchmarks/test_table1_forecast_accuracy.py.

Run:  python examples/forecaster_shootout.py
"""

import numpy as np

from repro import TrainingConfig, alibaba_like_trace, google_like_trace
from repro.evaluation import evaluate_quantile_forecast, format_table
from repro.forecast import ARIMAForecaster, DeepARForecaster, MLPForecaster, TFTForecaster

CONTEXT, HORIZON = 72, 36
LEVELS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def build_models():
    config = TrainingConfig(epochs=10, window_stride=3, patience=3, seed=0)
    return {
        "ARIMA": ARIMAForecaster(HORIZON, order=(3, 1, 2)),
        "MLP": MLPForecaster(CONTEXT, HORIZON, hidden_size=64, config=config),
        "DeepAR": DeepARForecaster(
            CONTEXT, HORIZON, hidden_size=24, num_samples=80, config=config
        ),
        "TFT": TFTForecaster(
            CONTEXT, HORIZON, quantile_levels=LEVELS, d_model=24, num_heads=2,
            config=config,
        ),
    }


for maker, name in ((alibaba_like_trace, "Alibaba"), (google_like_trace, "Google")):
    trace = maker(num_steps=144 * 12, seed=5)
    train, test = trace.split(test_fraction=0.25)
    reports = []
    for model_name, model in build_models().items():
        print(f"[{name}] training {model_name} ...")
        model.fit(train.values)
        # Average metrics over several rolling windows.
        merged_target, merged = [], {tau: [] for tau in LEVELS}
        for point in range(CONTEXT, len(test.values) - HORIZON + 1, HORIZON):
            context = test.values[point - CONTEXT : point]
            fc = model.predict(
                context, levels=LEVELS,
                start_index=len(train.values) + point - CONTEXT,
            )
            merged_target.append(test.values[point : point + HORIZON])
            for i, tau in enumerate(LEVELS):
                merged[tau].append(fc.values[i])
        target = np.concatenate(merged_target)
        forecasts = {tau: np.concatenate(chunks) for tau, chunks in merged.items()}
        reports.append(evaluate_quantile_forecast(model_name, name, target, forecasts))
    print()
    print(format_table(reports, title=f"=== {name} trace ==="))
    print()
