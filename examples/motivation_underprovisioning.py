"""Figure 1's story: why point forecasts under-provision.

A point forecaster commits to the central tendency; whenever the actual
workload lands above it, nodes sized to the forecast are too few.  A
quantile forecast at the 0.9 level absorbs most of those misses at a
modest node premium.  This script finds a window where the point
forecast underestimates and prints the comparison step by step.

Run:  python examples/motivation_underprovisioning.py
"""

import numpy as np

from repro import (
    MLPForecaster,
    TrainingConfig,
    alibaba_like_trace,
    required_nodes,
)

CONTEXT, HORIZON, THETA = 72, 36, 60.0

trace = alibaba_like_trace(num_steps=144 * 14, seed=21)
train, test = trace.split(test_fraction=0.2)

forecaster = MLPForecaster(
    CONTEXT, HORIZON, hidden_size=64,
    config=TrainingConfig(epochs=20, window_stride=2, patience=4, seed=0),
)
print("training ...")
forecaster.fit(train.values)

# Scan the test split for the window where the point forecast
# under-provisions the most — Figure 1's failure case.
best_point, best_under = CONTEXT, -1
for point in range(CONTEXT, len(test.values) - HORIZON + 1, HORIZON // 2):
    fc = forecaster.predict(
        test.values[point - CONTEXT : point],
        levels=(0.5,),
        start_index=len(train.values) + point - CONTEXT,
    )
    window_actual = test.values[point : point + HORIZON]
    under = int(
        (
            required_nodes(np.maximum(fc.values[0], 0), THETA)
            < required_nodes(window_actual, THETA)
        ).sum()
    )
    if under > best_under:
        best_point, best_under = point, under

context = test.values[best_point - CONTEXT : best_point]
actual = test.values[best_point : best_point + HORIZON]
fc = forecaster.predict(
    context, levels=(0.5, 0.9),
    start_index=len(train.values) + best_point - CONTEXT,
)

point = fc.at(0.5)
robust = fc.at(0.9)
nodes_needed = required_nodes(actual, THETA)
nodes_point = required_nodes(np.maximum(point, 0), THETA)
nodes_robust = required_nodes(np.maximum(robust, 0), THETA)

print(f"\n{'step':>4} {'actual':>8} {'point':>8} {'q0.9':>8} "
      f"{'need':>5} {'point':>6} {'q0.9':>6}  verdict")
for t in range(HORIZON):
    verdict = ""
    if nodes_point[t] < nodes_needed[t]:
        verdict = "POINT UNDER-PROVISIONS"
        if nodes_robust[t] >= nodes_needed[t]:
            verdict += " (q0.9 covers)"
    print(
        f"{t:>4} {actual[t]:>8.0f} {point[t]:>8.0f} {robust[t]:>8.0f} "
        f"{nodes_needed[t]:>5} {nodes_point[t]:>6} {nodes_robust[t]:>6}  {verdict}"
    )

point_under = int((nodes_point < nodes_needed).sum())
robust_under = int((nodes_robust < nodes_needed).sum())
premium = int(nodes_robust.sum() - nodes_point.sum())
print(
    f"\npoint forecast under-provisions {point_under}/{HORIZON} steps; "
    f"0.9-quantile under-provisions {robust_under}/{HORIZON} "
    f"at a premium of {premium} node-steps "
    f"({premium / max(nodes_point.sum(), 1):.1%})."
)
