"""Summarize telemetry event streams (the ``report`` CLI's engine).

Consumes the flat event records produced by
:class:`~repro.obs.registry.MetricsRegistry` — from a JSON-lines file,
an :class:`~repro.obs.sinks.InMemorySink`, or any iterable of dicts —
and reduces them to the aggregate view a human wants after a run:
per-phase span timings, counter totals, last gauge values, and
histogram statistics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

from .registry import format_metric_key

__all__ = [
    "KNOWN_KINDS",
    "SpanSummary",
    "DistributionSummary",
    "TelemetrySummary",
    "ModelHealthSummary",
    "summarize_records",
    "summarize_model_health",
    "read_jsonl",
    "format_summary",
    "format_model_health",
]


@dataclass
class SpanSummary:
    """Aggregate wall-clock time spent in one span path."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total_s += duration
        self.max_s = max(self.max_s, duration)


@dataclass
class DistributionSummary:
    """Aggregate of one histogram's observations."""

    values: list[float] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.values, q)) if self.values else 0.0

    @property
    def max(self) -> float:
        return float(np.max(self.values)) if self.values else 0.0


#: Record kinds some part of the reporting pipeline understands.
#: Anything else is surfaced as a per-kind count, not dropped silently.
KNOWN_KINDS = frozenset(
    {
        "counter",
        "gauge",
        "histogram",
        "span",
        "model_health",
        "alert",
        "provenance",
        "decision",
        "slo",
        "trace",
    }
)


@dataclass
class TelemetrySummary:
    """Everything a telemetry stream said, aggregated."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, DistributionSummary] = field(default_factory=dict)
    spans: dict[str, SpanSummary] = field(default_factory=dict)
    records: int = 0
    unknown_kinds: dict[str, int] = field(default_factory=dict)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets (e.g. all strategies)."""
        return sum(
            value
            for key, value in self.counters.items()
            if key == name or key.startswith(name + "{")
        )


def summarize_records(records: Iterable[dict]) -> TelemetrySummary:
    """Reduce an event stream to a :class:`TelemetrySummary`."""
    summary = TelemetrySummary()
    for record in records:
        summary.records += 1
        kind = record.get("kind")
        name = record.get("name", "")
        key = format_metric_key(name, record.get("labels") or {})
        if kind == "counter":
            # Events carry the running total; the last one wins.
            summary.counters[key] = float(record.get("value", 0.0))
        elif kind == "gauge":
            summary.gauges[key] = float(record.get("value", 0.0))
        elif kind == "histogram":
            summary.histograms.setdefault(key, DistributionSummary()).values.append(
                float(record.get("value", 0.0))
            )
        elif kind == "span":
            summary.spans.setdefault(key, SpanSummary()).add(
                float(record.get("duration_s", 0.0))
            )
        elif kind not in KNOWN_KINDS:
            label = str(kind) if kind is not None else "<missing>"
            summary.unknown_kinds[label] = summary.unknown_kinds.get(label, 0) + 1
    return summary


@dataclass
class ModelHealthSummary:
    """The model-health slice of a telemetry stream.

    Four record families, in stream order: per-window calibration
    records and drift events from
    :class:`~repro.obs.monitor.ModelHealthMonitor`, fired alerts from
    :class:`~repro.obs.alerts.AlertEngine`, and per-decision provenance
    records from :class:`~repro.core.runtime.AutoscalingRuntime`.
    """

    windows: list[dict] = field(default_factory=list)
    drifts: list[dict] = field(default_factory=list)
    alerts: list[dict] = field(default_factory=list)
    provenance: list[dict] = field(default_factory=list)
    slos: dict[str, dict] = field(default_factory=dict)  # latest per objective

    def __bool__(self) -> bool:
        return bool(
            self.windows
            or self.drifts
            or self.alerts
            or self.provenance
            or self.slos
        )


def summarize_model_health(records: Iterable[dict]) -> ModelHealthSummary:
    """Collect window/drift/alert/provenance/slo records from a stream."""
    health = ModelHealthSummary()
    for record in records:
        kind = record.get("kind")
        if kind == "model_health":
            if record.get("name") == "monitor.window":
                health.windows.append(record)
            elif record.get("name") == "monitor.drift":
                health.drifts.append(record)
        elif kind == "alert":
            health.alerts.append(record)
        elif kind == "provenance":
            health.provenance.append(record)
        elif kind == "slo":
            health.slos[record.get("objective", record.get("name", "?"))] = record
    return health


def _coverage_columns(windows: list[dict], max_columns: int = 5) -> list[str]:
    """Which coverage levels to show: all if few, else the upper tail."""
    seen: list[str] = []
    for window in windows:
        for key in window.get("coverage", {}):
            if key not in seen:
                seen.append(key)
    seen.sort(key=float)
    if len(seen) <= max_columns:
        return seen
    # Planning lives in the upper tail — prefer the highest levels, but
    # keep the median as an anchor if present.
    tail = seen[-(max_columns - 1) :]
    return (["0.5"] if "0.5" in seen and "0.5" not in tail else []) + tail


def format_model_health(
    health: ModelHealthSummary, max_provenance: int = 12
) -> str:
    """Render the model-health timeline as aligned plain-text tables."""
    lines: list[str] = ["model health"]

    if health.windows:
        levels = _coverage_columns(health.windows)
        steps = health.windows[0].get("steps", "?")
        lines.append("")
        lines.append(f"  calibration over time ({steps} steps/window)")
        header = f"  {'win':>4} {'t-range':>13}"
        for level in levels:
            header += f" {'cov@' + level:>9}"
        header += f" {'cal.err':>8} {'mean_wQL':>9} {'MAPE':>7} {'drift':>6}"
        if any("violation_rate" in w for w in health.windows):
            header += f" {'viol.':>6}"
        show_degraded = any(w.get("degraded_intervals") for w in health.windows)
        if show_degraded:
            header += f" {'degr.':>6}"
        lines.append(header)
        for window in health.windows:
            row = (
                f"  {window.get('window', '?'):>4} "
                f"{str(window.get('start_index', '?')) + '-' + str(window.get('end_index', '?')):>13}"
            )
            coverage = window.get("coverage", {})
            for level in levels:
                value = coverage.get(level)
                row += f" {value:>9.3f}" if value is not None else f" {'-':>9}"
            row += (
                f" {window.get('calibration_error', 0.0):>8.3f}"
                f" {window.get('mean_wql', 0.0):>9.4f}"
                f" {window.get('mape', 0.0):>7.3f}"
                f" {window.get('drift_events', 0):>6}"
            )
            if "violation_rate" in window:
                row += f" {window['violation_rate']:>6.2f}"
            elif any("violation_rate" in w for w in health.windows):
                row += f" {'-':>6}"
            if show_degraded:
                row += f" {window.get('degraded_intervals', 0):>6}"
            lines.append(row)

    if health.drifts:
        lines.append("")
        lines.append("  drift events")
        for drift in health.drifts:
            lines.append(
                f"  t={drift.get('time_index', '?'):<6} "
                f"{drift.get('detector', '?'):<14} "
                f"score={drift.get('score', 0.0):<8.2f} "
                f"direction={drift.get('direction', '?')}"
            )

    if health.alerts:
        lines.append("")
        lines.append("  alerts")
        for alert in health.alerts:
            lines.append(
                f"  [{alert.get('severity', 'warning'):<8}] "
                f"{alert.get('message', alert.get('name', '?'))}"
            )

    if health.slos:
        lines.append("")
        lines.append("  SLO error budgets (latest window)")
        for objective, entry in health.slos.items():
            state = "ok  " if entry.get("healthy", True) else "FIRE"
            if entry.get("slo_kind") == "latency":
                value = entry.get("value_s")
                shown_value = f"{value:.3f}s" if value is not None else "-"
                detail = (
                    f"p{int(entry.get('quantile', 0.99) * 100)} {shown_value} "
                    f"vs {entry.get('threshold_s', 0.0):g}s"
                )
            else:
                consumed = entry.get("budget_consumed", 0.0) or 0.0
                burns = entry.get("burn", {})
                burn_bits = " ".join(
                    f"{severity[:4]} {stats.get('long_burn', 0.0):.1f}x"
                    for severity, stats in burns.items()
                )
                detail = f"budget used {consumed * 100:5.1f}%  burn {burn_bits}"
            lines.append(f"  [{state}] {objective:<38} {detail}")

    if health.provenance:
        lines.append("")
        shown = health.provenance[-max_provenance:]
        label = (
            f"  decisions (last {len(shown)} of {len(health.provenance)})"
            if len(shown) < len(health.provenance)
            else f"  decisions ({len(health.provenance)})"
        )
        lines.append(label)
        lines.append(
            f"  {'t':>6} {'source':<18} {'tau':>11} {'unc.mean':>9} "
            f"{'bound.max':>10} {'clip':>5} {'nodes[0]':>9}"
        )
        for record in shown:
            tau_min = record.get("tau_min")
            tau_max = record.get("tau_max")
            if tau_min is None:
                tau = "-"
            elif tau_min == tau_max:
                tau = f"{tau_min:g}"
            else:
                tau = f"{tau_min:g}-{tau_max:g}"
            unc = record.get("uncertainty_mean")
            bound = record.get("bound_max")
            lines.append(
                f"  {record.get('time_index', '?'):>6} "
                f"{record.get('source', '?'):<18} "
                f"{tau:>11} "
                + (f"{unc:>9.2f} " if unc is not None else f"{'-':>9} ")
                + (f"{bound:>10.1f} " if bound is not None else f"{'-':>10} ")
                + f"{record.get('ramp_clipped_steps', 0):>5} "
                + f"{record.get('nodes_first', '?'):>9}"
            )

    return "\n".join(lines)


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a telemetry JSON-lines file, skipping malformed lines."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def _parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`format_metric_key`: ``name{k=v,...}`` -> (name, labels)."""
    if "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels = dict(part.split("=", 1) for part in inner.rstrip("}").split(",") if part)
    return name, labels


def _training_section(summary: TelemetrySummary) -> list[str]:
    """Per-model training table: which grad path ran, and how fast.

    Groups the fit-loop metrics (``forecast.fastgrad_batches`` counts
    batches per path, ``forecast.batch_seconds`` times them) by
    (model, path) so a run that mixed tape and fast-path training shows
    one row per combination.
    """
    rows: dict[tuple[str, str], dict] = {}
    for key, value in summary.counters.items():
        name, labels = _parse_metric_key(key)
        if name == "forecast.fastgrad_batches":
            rows.setdefault(
                (labels.get("model", "?"), labels.get("path", "?")), {}
            )["batches"] = value
    for key, hist in summary.histograms.items():
        name, labels = _parse_metric_key(key)
        if name == "forecast.batch_seconds":
            rows.setdefault(
                (labels.get("model", "?"), labels.get("path", "?")), {}
            )["hist"] = hist
    if not rows:
        return []

    lines = ["", "training (per grad path)"]
    lines.append(
        f"  {'model':<24} {'path':<10} {'batches':>8} "
        f"{'mean ms':>9} {'p50 ms':>9} {'max ms':>9}"
    )
    for (model, path), row in sorted(rows.items()):
        hist = row.get("hist")
        batches = int(row.get("batches", hist.count if hist else 0))
        if hist is not None:
            stats = (
                f"{hist.mean * 1e3:>9.2f} {hist.quantile(0.5) * 1e3:>9.2f} "
                f"{hist.max * 1e3:>9.2f}"
            )
        else:
            stats = f"{'-':>9} {'-':>9} {'-':>9}"
        lines.append(f"  {model:<24} {path:<10} {batches:>8} {stats}")
    return lines


def format_summary(summary: TelemetrySummary) -> str:
    """Render the aggregate view as an aligned plain-text table."""
    lines: list[str] = [f"telemetry summary ({summary.records} records)"]
    if summary.unknown_kinds:
        kinds = ", ".join(
            f"{kind} x{count}"
            for kind, count in sorted(summary.unknown_kinds.items())
        )
        lines.append(
            f"  note: skipped records of unknown kind ({kinds}) — "
            f"likely written by a newer version"
        )
    lines.extend(_training_section(summary))

    if summary.spans:
        lines.append("")
        lines.append("phase timings (spans)")
        lines.append(f"  {'span':<40} {'count':>7} {'total s':>10} {'mean s':>10} {'max s':>10}")
        for key in sorted(summary.spans):
            s = summary.spans[key]
            lines.append(
                f"  {key:<40} {s.count:>7} {s.total_s:>10.4f} {s.mean_s:>10.4f} {s.max_s:>10.4f}"
            )

    if summary.counters:
        lines.append("")
        lines.append("counters")
        width = max(len(k) for k in summary.counters)
        for key in sorted(summary.counters):
            lines.append(f"  {key:<{width}} {summary.counters[key]:>12g}")

    if summary.gauges:
        lines.append("")
        lines.append("gauges (last value)")
        width = max(len(k) for k in summary.gauges)
        for key in sorted(summary.gauges):
            lines.append(f"  {key:<{width}} {summary.gauges[key]:>12g}")

    if summary.histograms:
        lines.append("")
        lines.append("histograms")
        lines.append(f"  {'metric':<40} {'count':>7} {'mean':>10} {'p50':>10} {'p90':>10} {'max':>10}")
        for key in sorted(summary.histograms):
            h = summary.histograms[key]
            lines.append(
                f"  {key:<40} {h.count:>7} {h.mean:>10.4f} "
                f"{h.quantile(0.5):>10.4f} {h.quantile(0.9):>10.4f} {h.max:>10.4f}"
            )

    return "\n".join(lines)
