"""Summarize telemetry event streams (the ``report`` CLI's engine).

Consumes the flat event records produced by
:class:`~repro.obs.registry.MetricsRegistry` — from a JSON-lines file,
an :class:`~repro.obs.sinks.InMemorySink`, or any iterable of dicts —
and reduces them to the aggregate view a human wants after a run:
per-phase span timings, counter totals, last gauge values, and
histogram statistics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

from .registry import format_metric_key

__all__ = [
    "SpanSummary",
    "DistributionSummary",
    "TelemetrySummary",
    "summarize_records",
    "read_jsonl",
    "format_summary",
]


@dataclass
class SpanSummary:
    """Aggregate wall-clock time spent in one span path."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total_s += duration
        self.max_s = max(self.max_s, duration)


@dataclass
class DistributionSummary:
    """Aggregate of one histogram's observations."""

    values: list[float] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.values, q)) if self.values else 0.0

    @property
    def max(self) -> float:
        return float(np.max(self.values)) if self.values else 0.0


@dataclass
class TelemetrySummary:
    """Everything a telemetry stream said, aggregated."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, DistributionSummary] = field(default_factory=dict)
    spans: dict[str, SpanSummary] = field(default_factory=dict)
    records: int = 0

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets (e.g. all strategies)."""
        return sum(
            value
            for key, value in self.counters.items()
            if key == name or key.startswith(name + "{")
        )


def summarize_records(records: Iterable[dict]) -> TelemetrySummary:
    """Reduce an event stream to a :class:`TelemetrySummary`."""
    summary = TelemetrySummary()
    for record in records:
        summary.records += 1
        kind = record.get("kind")
        name = record.get("name", "")
        key = format_metric_key(name, record.get("labels") or {})
        if kind == "counter":
            # Events carry the running total; the last one wins.
            summary.counters[key] = float(record.get("value", 0.0))
        elif kind == "gauge":
            summary.gauges[key] = float(record.get("value", 0.0))
        elif kind == "histogram":
            summary.histograms.setdefault(key, DistributionSummary()).values.append(
                float(record.get("value", 0.0))
            )
        elif kind == "span":
            summary.spans.setdefault(key, SpanSummary()).add(
                float(record.get("duration_s", 0.0))
            )
    return summary


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a telemetry JSON-lines file, skipping malformed lines."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def format_summary(summary: TelemetrySummary) -> str:
    """Render the aggregate view as an aligned plain-text table."""
    lines: list[str] = [f"telemetry summary ({summary.records} records)"]

    if summary.spans:
        lines.append("")
        lines.append("phase timings (spans)")
        lines.append(f"  {'span':<40} {'count':>7} {'total s':>10} {'mean s':>10} {'max s':>10}")
        for key in sorted(summary.spans):
            s = summary.spans[key]
            lines.append(
                f"  {key:<40} {s.count:>7} {s.total_s:>10.4f} {s.mean_s:>10.4f} {s.max_s:>10.4f}"
            )

    if summary.counters:
        lines.append("")
        lines.append("counters")
        width = max(len(k) for k in summary.counters)
        for key in sorted(summary.counters):
            lines.append(f"  {key:<{width}} {summary.counters[key]:>12g}")

    if summary.gauges:
        lines.append("")
        lines.append("gauges (last value)")
        width = max(len(k) for k in summary.gauges)
        for key in sorted(summary.gauges):
            lines.append(f"  {key:<{width}} {summary.gauges[key]:>12g}")

    if summary.histograms:
        lines.append("")
        lines.append("histograms")
        lines.append(f"  {'metric':<40} {'count':>7} {'mean':>10} {'p50':>10} {'p90':>10} {'max':>10}")
        for key in sorted(summary.histograms):
            h = summary.histograms[key]
            lines.append(
                f"  {key:<40} {h.count:>7} {h.mean:>10.4f} "
                f"{h.quantile(0.5):>10.4f} {h.quantile(0.9):>10.4f} {h.max:>10.4f}"
            )

    return "\n".join(lines)
