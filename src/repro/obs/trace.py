"""End-to-end trace records built from the registry's span stack.

The span machinery in :mod:`repro.obs.registry` aggregates durations
into histograms — great for "what does ``runtime.step/plan`` usually
cost", useless for "what happened at tick 3071".  A
:class:`TraceCollector` attached to a registry
(:meth:`~repro.obs.registry.MetricsRegistry.set_tracer`) promotes the
live span stack into real trace records: every tick becomes one trace
(``trace_id`` = tick), every ``registry.span(...)`` block inside it one
span with a ``span_id``, ``parent_id``, start offset, duration, and
``ok``/``error`` status.

Traces survive the :class:`~repro.parallel.WorkerPool` boundary: the
parent's ``(trace_id, parent span)`` context ships with each task, the
worker collects its spans under deterministic ``w<item>.<n>`` span ids,
and :meth:`absorb` grafts them back into the parent's live trace during
the registry merge — so a ``backtest(n_jobs=2)`` timeline shows the
worker's ``predict`` spans under the same ``backtest`` root a serial
run would produce.

Completed traces land in a bounded ring (newest win) and are emitted as
``kind="trace"`` events to the registry's sinks;
:func:`render_trace_timeline` draws one trace as an indented
critical-path timeline for ``report --traces`` and the control plane's
``GET /traces``.

Tracing never feeds decisions: the collector only observes timing, so
attaching one cannot perturb the planner — the bit-determinism
contracts (``n_jobs=1 == n_jobs=N``, checkpoint/restore) hold with
tracing on.
"""

from __future__ import annotations

import time
from collections import deque

__all__ = ["TraceCollector", "render_trace_timeline"]


class TraceCollector:
    """Collects completed spans into per-trace records.

    Attach with ``registry.set_tracer(collector)``; the registry then
    calls :meth:`open_span` / :meth:`close_span` from its ``span()``
    context manager.  Bracket each unit of work (the runtime brackets
    every ``step()``) with :meth:`begin` / :meth:`end`.

    Parameters
    ----------
    max_traces:
        Completed traces kept in the ring; older ones fall off.
    id_prefix:
        Prefix for generated span ids — workers use ``"w<item>."`` so
        merged ids stay unique and deterministic regardless of how the
        pool chunked the work.
    """

    def __init__(self, max_traces: int = 64, id_prefix: str = "") -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.max_traces = max_traces
        self.id_prefix = id_prefix
        self.finished: deque[dict] = deque(maxlen=max_traces)
        self._trace: dict | None = None
        self._open: list[dict] = []
        self._root_parent: str | None = None
        self._next_id = 0
        self._t0 = 0.0
        self.traces_started = 0
        self.traces_finished = 0

    # -- trace lifecycle -------------------------------------------------
    @property
    def active(self) -> bool:
        """True while a trace is open (spans are being collected)."""
        return self._trace is not None

    @property
    def trace_id(self):
        return self._trace["trace_id"] if self._trace else None

    @property
    def current_span_id(self) -> str | None:
        """Id of the innermost open span (the parent for fanned-out work)."""
        return self._open[-1]["span_id"] if self._open else self._root_parent

    def begin(self, trace_id, parent_id: str | None = None) -> None:
        """Open a trace; an unfinished previous trace is ended as-is."""
        if self._trace is not None:
            self.end(status="ok")
        self._trace = {
            "trace_id": trace_id,
            "status": "ok",
            "duration_s": 0.0,
            "spans": [],
        }
        self._open = []
        self._root_parent = parent_id
        self._next_id = 0
        self._t0 = time.perf_counter()
        self.traces_started += 1

    def end(self, status: str = "ok") -> dict | None:
        """Close the trace, append it to the ring, and return it."""
        trace = self._trace
        if trace is None:
            return None
        now = time.perf_counter()
        # A crashed block can leave spans open (the registry closes its
        # own, but a raised begin/end mismatch should not wedge us).
        for span in self._open:
            span["duration_s"] = (now - self._t0) - span["start_s"]
            span["status"] = "error"
        self._open = []
        # An error recorded mid-trace (failed span, absorbed worker
        # error) sticks even when the bracketing caller saw success.
        if trace["status"] != "error":
            trace["status"] = status
        trace["duration_s"] = now - self._t0
        self._trace = None
        self.finished.append(trace)
        self.traces_finished += 1
        return trace

    # -- span hooks (called by MetricsRegistry.span) ---------------------
    def open_span(self, name: str, labels: dict) -> dict | None:
        """Record a span start; returns the live span dict (or None)."""
        if self._trace is None:
            return None
        self._next_id += 1
        span = {
            "span_id": f"{self.id_prefix}{self._next_id}",
            "parent_id": self.current_span_id,
            "name": name,
            "labels": dict(labels),
            "start_s": time.perf_counter() - self._t0,
            "duration_s": 0.0,
            "status": "ok",
        }
        self._trace["spans"].append(span)
        self._open.append(span)
        return span

    def close_span(self, span: dict, duration: float, status: str) -> None:
        if span is None or self._trace is None:
            return
        span["duration_s"] = float(duration)
        span["status"] = status
        if status == "error":
            self._trace["status"] = "error"
        if self._open and self._open[-1] is span:
            self._open.pop()
        elif span in self._open:  # defensive: out-of-order close
            self._open.remove(span)

    # -- worker merge ----------------------------------------------------
    def absorb(self, trace: dict, span_prefix: str | None = None) -> None:
        """Graft a worker's finished trace into this collector.

        When the worker's ``trace_id`` matches the live trace, its spans
        are re-anchored so they *end* at merge time (the parent cannot
        know when the worker actually started relative to its own
        clock) and appended to the live span list; otherwise the trace
        is kept whole in the finished ring.  ``span_prefix`` re-roots
        span names the same way the registry re-roots span histograms.
        """
        spans = [dict(span) for span in trace.get("spans", [])]
        if span_prefix:
            for span in spans:
                span["name"] = f"{span_prefix}/{span['name']}"
        live = self._trace
        if live is not None and live["trace_id"] == trace.get("trace_id"):
            base = (time.perf_counter() - self._t0) - float(
                trace.get("duration_s", 0.0)
            )
            for span in spans:
                span["start_s"] = float(span["start_s"]) + base
                if span.get("parent_id") is None:
                    span["parent_id"] = self.current_span_id
            live["spans"].extend(spans)
            if trace.get("status") == "error":
                live["status"] = "error"
        else:
            self.finished.append({**trace, "spans": spans})
            self.traces_finished += 1

    # -- inspection ------------------------------------------------------
    def drain(self) -> list[dict]:
        """Pop and return all finished traces (oldest first)."""
        traces = list(self.finished)
        self.finished.clear()
        return traces

    def traces(self, limit: int | None = None) -> list[dict]:
        """The newest ``limit`` finished traces, oldest first."""
        traces = list(self.finished)
        if limit is not None:
            traces = traces[-limit:]
        return traces


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_trace_timeline(trace: dict, width: int = 80) -> str:
    """Draw one trace as an indented timeline with the critical path.

    Each span gets a line: marker (``*`` = on the critical path),
    indented name, a proportional ``#`` bar positioned on the trace's
    time axis, duration, and a trailing ``!`` for error spans.  Pure
    ASCII so it survives any terminal or CI log.
    """
    spans = list(trace.get("spans", []))
    total = float(trace.get("duration_s", 0.0)) or max(
        (float(s["start_s"]) + float(s["duration_s"]) for s in spans),
        default=0.0,
    )
    header = (
        f"trace {trace.get('trace_id')} [{trace.get('status', '?')}] "
        f"{_format_seconds(total)} - {len(spans)} spans"
    )
    if not spans:
        return header
    children: dict[str | None, list[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: float(s["start_s"]))
    by_id = {s["span_id"]: s for s in spans}
    roots = [s for s in spans if s.get("parent_id") not in by_id]

    # Critical path: from the longest root, repeatedly descend into the
    # longest child — the chain of spans that bounds the trace duration.
    critical: set[str] = set()
    if roots:
        node = max(roots, key=lambda s: float(s["duration_s"]))
        while node is not None:
            critical.add(node["span_id"])
            kids = children.get(node["span_id"], [])
            node = max(kids, key=lambda s: float(s["duration_s"]), default=None)

    name_width = min(
        max((2 * _depth(s, by_id) + len(s["name"]) for s in spans), default=0),
        max(width // 2, 20),
    )
    bar_width = max(width - name_width - 22, 10)
    lines = [header]

    def emit(span: dict, depth: int) -> None:
        start = float(span["start_s"])
        duration = float(span["duration_s"])
        begin = int(round(bar_width * start / total)) if total else 0
        length = int(round(bar_width * duration / total)) if total else 0
        begin = min(begin, bar_width - 1)
        length = max(1, min(length, bar_width - begin))
        bar = "." * begin + "#" * length
        bar = bar.ljust(bar_width, ".")
        marker = "*" if span["span_id"] in critical else " "
        flag = " !" if span.get("status") == "error" else ""
        label = ("  " * depth + span["name"])[:name_width].ljust(name_width)
        lines.append(
            f"{marker} {label} |{bar}| {_format_seconds(duration):>8}{flag}"
        )
        for child in children.get(span["span_id"], []):
            emit(child, depth + 1)

    for root in sorted(roots, key=lambda s: float(s["start_s"])):
        emit(root, 0)
    return "\n".join(lines)


def _depth(span: dict, by_id: dict) -> int:
    depth = 0
    parent = span.get("parent_id")
    while parent in by_id:
        depth += 1
        parent = by_id[parent].get("parent_id")
    return depth
