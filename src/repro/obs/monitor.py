"""Streaming model-health monitors for the closed autoscaling loop.

The paper's argument rests on forecast uncertainty being *trustworthy*:
the adaptive policy reacts to estimated uncertainty, and the robust
bounds only hold if the quantile forecasts stay calibrated.  Offline
metrics (``repro.evaluation.metrics``) score a finished run; this module
watches calibration *while the loop runs*, the way RobustScaler couples
its scaler to continuous uncertainty estimates and OptScaler monitors
prediction reliability online.

:class:`ModelHealthMonitor` consumes one ``(forecast quantiles,
realized value)`` pair per interval and maintains:

* **windowed calibration** — per-level empirical coverage vs. nominal
  over fixed-size windows, plus the mean absolute calibration error;
* **rolling accuracy** — per-window wQL (per level and mean) and MAPE
  of the median forecast;
* **residual drift** — :class:`PageHinkley` and :class:`CUSUM`
  detectors on spread-normalised residuals, emitting regime-change
  events the moment the forecaster's error distribution moves.

Everything is published through the ambient metrics registry
(:func:`repro.obs.get_registry`), so any attached sink — JSONL file,
in-memory buffer, summary table — receives ``model_health`` events for
free, and ``repro-autoscale report`` can reconstruct the full health
timeline from a telemetry file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from .registry import get_registry

if TYPE_CHECKING:  # pragma: no cover
    from ..forecast.base import QuantileForecast
    from .alerts import AlertEngine
    from .slo import SLOTracker

__all__ = [
    "DriftDetector",
    "PageHinkley",
    "CUSUM",
    "DriftEvent",
    "WindowStats",
    "ModelHealthMonitor",
]

#: Floor for the residual-normalisation scale, so degenerate (zero
#: width) forecast fans cannot produce infinite drift statistics.
_SCALE_FLOOR = 1e-9


@runtime_checkable
class DriftDetector(Protocol):
    """Streaming change detector over a residual sequence."""

    name: str

    def update(self, value: float) -> bool:
        """Feed one value; return True when a change-point fires."""
        ...

    def reset(self) -> None:
        """Forget all state (called automatically after a firing)."""
        ...

    @property
    def score(self) -> float:
        """Current test statistic (compared against the threshold)."""
        ...

    @property
    def direction(self) -> str:
        """Which side is drifting: ``"up"``, ``"down"``, or ``"none"``."""
        ...

    fired_score: float
    fired_direction: str


class PageHinkley:
    """Two-sided Page-Hinkley test for mean shift in a stream.

    Tracks the cumulative deviation of the input from its running mean
    (minus a slack ``delta``); a drift fires when the deviation exceeds
    its historical minimum (resp. maximum, for downward shifts) by more
    than ``threshold``.  Input is expected to be roughly unit-scale —
    the monitor feeds spread-normalised residuals.

    Parameters
    ----------
    threshold:
        λ — firing threshold on the PH statistic.
    delta:
        Per-step slack absorbing benign drift of the mean.
    min_samples:
        Observations required before the test may fire (warm-up).
    """

    name = "page-hinkley"

    def __init__(
        self, threshold: float = 12.0, delta: float = 0.05, min_samples: int = 12
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.threshold = threshold
        self.delta = delta
        self.min_samples = min_samples
        self.reset()

    #: statistic/direction at the moment of the most recent firing
    fired_score: float = 0.0
    fired_direction: str = "none"

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._cum_up = 0.0  # Σ (x - mean - delta)
        self._cum_down = 0.0  # Σ (x - mean + delta)
        self._min_up = 0.0
        self._max_down = 0.0

    def update(self, value: float) -> bool:
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._cum_up += value - self._mean - self.delta
        self._cum_down += value - self._mean + self.delta
        self._min_up = min(self._min_up, self._cum_up)
        self._max_down = max(self._max_down, self._cum_down)
        if self._count < self.min_samples:
            return False
        if self.score > self.threshold:
            # Snapshot the firing statistic before the reset wipes it —
            # drift events report the score that crossed the threshold.
            self.fired_score = self.score
            self.fired_direction = self.direction
            self.reset()
            return True
        return False

    def state_dict(self) -> dict:
        return {
            "count": self._count,
            "mean": self._mean,
            "cum_up": self._cum_up,
            "cum_down": self._cum_down,
            "min_up": self._min_up,
            "max_down": self._max_down,
            "fired_score": self.fired_score,
            "fired_direction": self.fired_direction,
        }

    def load_state_dict(self, state: dict) -> "PageHinkley":
        self._count = int(state["count"])
        self._mean = float(state["mean"])
        self._cum_up = float(state["cum_up"])
        self._cum_down = float(state["cum_down"])
        self._min_up = float(state["min_up"])
        self._max_down = float(state["max_down"])
        self.fired_score = float(state["fired_score"])
        self.fired_direction = state["fired_direction"]
        return self

    @property
    def _score_up(self) -> float:
        return self._cum_up - self._min_up

    @property
    def _score_down(self) -> float:
        return self._max_down - self._cum_down

    @property
    def score(self) -> float:
        return max(self._score_up, self._score_down)

    @property
    def direction(self) -> str:
        if self._score_up == self._score_down == 0.0:
            return "none"
        return "up" if self._score_up >= self._score_down else "down"


class CUSUM:
    """Two-sided cumulative-sum detector for mean shift in a stream.

    Classic tabular CUSUM: accumulate deviations beyond a slack
    ``drift`` on each side, fire when either side's sum exceeds
    ``threshold``.  Complements Page-Hinkley — CUSUM reacts faster to
    abrupt jumps, PH is more sensitive to slow creep.
    """

    name = "cusum"

    def __init__(
        self, threshold: float = 8.0, drift: float = 0.5, min_samples: int = 6
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if drift < 0:
            raise ValueError("drift must be non-negative")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.threshold = threshold
        self.drift = drift
        self.min_samples = min_samples
        self.reset()

    fired_score: float = 0.0
    fired_direction: str = "none"

    def reset(self) -> None:
        self._count = 0
        self._pos = 0.0
        self._neg = 0.0

    def update(self, value: float) -> bool:
        self._count += 1
        self._pos = max(0.0, self._pos + value - self.drift)
        self._neg = max(0.0, self._neg - value - self.drift)
        if self._count < self.min_samples:
            return False
        if self.score > self.threshold:
            self.fired_score = self.score
            self.fired_direction = self.direction
            self.reset()
            return True
        return False

    def state_dict(self) -> dict:
        return {
            "count": self._count,
            "pos": self._pos,
            "neg": self._neg,
            "fired_score": self.fired_score,
            "fired_direction": self.fired_direction,
        }

    def load_state_dict(self, state: dict) -> "CUSUM":
        self._count = int(state["count"])
        self._pos = float(state["pos"])
        self._neg = float(state["neg"])
        self.fired_score = float(state["fired_score"])
        self.fired_direction = state["fired_direction"]
        return self

    @property
    def score(self) -> float:
        return max(self._pos, self._neg)

    @property
    def direction(self) -> str:
        if self._pos == self._neg == 0.0:
            return "none"
        return "up" if self._pos >= self._neg else "down"


@dataclass(frozen=True)
class DriftEvent:
    """One regime-change firing from a drift detector."""

    time_index: int
    detector: str
    score: float
    direction: str

    def as_record(self) -> dict:
        return {
            "kind": "model_health",
            "name": "monitor.drift",
            "time_index": self.time_index,
            "detector": self.detector,
            "score": self.score,
            "direction": self.direction,
        }


@dataclass(frozen=True)
class WindowStats:
    """Model-health aggregates over one completed monitoring window."""

    window: int
    start_index: int
    end_index: int
    steps: int
    coverage: dict[str, float]  # level (str, e.g. "0.9") -> empirical
    calibration_error: float  # mean |empirical - nominal| over levels
    wql: dict[str, float]  # level -> windowed wQL
    mean_wql: float
    mape: float
    mean_residual: float
    drift_score: float  # max detector statistic at window close
    drift_events: int  # firings inside this window
    violation_rate: float | None = None  # when allocations were observed
    degraded_intervals: int = 0  # intervals served by a degraded plan
    degraded_rate: float = 0.0  # degraded_intervals / steps

    def as_record(self) -> dict:
        record = {
            "kind": "model_health",
            "name": "monitor.window",
            "window": self.window,
            "start_index": self.start_index,
            "end_index": self.end_index,
            "steps": self.steps,
            "coverage": dict(self.coverage),
            "calibration_error": self.calibration_error,
            "wql": dict(self.wql),
            "mean_wql": self.mean_wql,
            "mape": self.mape,
            "mean_residual": self.mean_residual,
            "drift_score": self.drift_score,
            "drift_events": self.drift_events,
            "degraded_intervals": self.degraded_intervals,
            "degraded_rate": self.degraded_rate,
        }
        if self.violation_rate is not None:
            record["violation_rate"] = self.violation_rate
        return record


def _level_key(tau: float) -> str:
    """Stable string form for a quantile level (JSON-safe dict key)."""
    return format(float(tau), "g")


class ModelHealthMonitor:
    """Online calibration, accuracy, and drift tracking.

    Feed one forecast/actual pair per interval via :meth:`observe` (the
    runtime does this automatically when a monitor is attached), or a
    whole forecast window via :meth:`observe_forecast` (the backtest
    integration).  Aggregates are finalised every ``window`` steps;
    drift detectors run on every step.

    Parameters
    ----------
    window:
        Steps per calibration window.  Smaller windows localise drift
        better but make per-level coverage noisier; the default (24 =
        4 hours at 10-minute intervals) matches the paper's replan
        cadence order of magnitude.
    detectors:
        Drift detectors run on spread-normalised residuals; default is
        one :class:`PageHinkley` and one :class:`CUSUM` instance.
    alerts:
        Optional :class:`~repro.obs.alerts.AlertEngine`; when present,
        every finalised window record is evaluated against its rules.
    slos:
        Optional :class:`~repro.obs.slo.SLOTracker`; when present,
        every finalised window record feeds its error-budget ledgers
        and burn-rate alerting (which fires through ``alerts`` when the
        tracker shares that engine).
    eps:
        Denominator guard for MAPE.
    """

    def __init__(
        self,
        window: int = 24,
        detectors: "list[DriftDetector] | None" = None,
        alerts: "AlertEngine | None" = None,
        slos: "SLOTracker | None" = None,
        eps: float = 1e-9,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.detectors: list[DriftDetector] = (
            list(detectors) if detectors is not None else [PageHinkley(), CUSUM()]
        )
        self.alerts = alerts
        self.slos = slos
        self.eps = eps

        self.steps_observed = 0
        self.windows: list[WindowStats] = []
        self.drift_events: list[DriftEvent] = []
        self._reset_window()
        self._window_count = 0
        self._window_drift_events = 0

    # -- per-window accumulator state ----------------------------------
    def _reset_window(self) -> None:
        self._buf_indices: list[int] = []
        self._buf_actuals: list[float] = []
        self._buf_medians: list[float] = []
        self._buf_covered: dict[str, list[bool]] = {}
        self._buf_taus: dict[str, float] = {}
        self._buf_ql: dict[str, float] = {}
        self._buf_violations: list[bool] = []
        self._window_drift_events = 0
        self._window_steps = 0
        self._window_degraded = 0

    # -- feeding -------------------------------------------------------
    def observe(
        self,
        levels: np.ndarray,
        values: np.ndarray,
        actual: float,
        time_index: int,
        nodes: int | None = None,
        threshold: float | None = None,
    ) -> None:
        """Ingest one interval's forecast quantiles and realized value.

        Parameters
        ----------
        levels, values:
            The quantile levels (shape ``(L,)``) and the corresponding
            forecasts *for this single step* (shape ``(L,)``).
        actual:
            The workload that materialised.
        time_index:
            Absolute interval index (drift events carry it).
        nodes, threshold:
            Optionally, the allocation that served this interval and the
            per-node threshold — enables the window's QoS
            ``violation_rate`` (and alert rules on it).
        """
        levels = np.asarray(levels, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        # np.interp requires ascending abscissae and the spread below
        # assumes values[0]/values[-1] are the extreme quantiles; an
        # unsorted grid would silently corrupt both, so sort by level.
        if len(levels) > 1 and np.any(np.diff(levels) < 0):
            order = np.argsort(levels)
            levels = levels[order]
            values = values[order]
        actual = float(actual)
        median = float(np.interp(0.5, levels, values))
        residual = actual - median

        self._buf_indices.append(int(time_index))
        self._buf_actuals.append(actual)
        self._buf_medians.append(median)
        for tau, predicted in zip(levels, values):
            key = _level_key(tau)
            self._buf_taus.setdefault(key, float(tau))
            # Ties count as covered: the quantile definition is
            # P(X <= q) >= tau, so actual == predicted satisfies it.
            self._buf_covered.setdefault(key, []).append(bool(predicted >= actual))
            indicator = 1.0 if actual <= predicted else 0.0
            self._buf_ql[key] = self._buf_ql.get(key, 0.0) + (
                (tau - indicator) * (actual - predicted)
            )
        if nodes is not None and threshold is not None:
            self._buf_violations.append(actual > nodes * threshold)

        # Drift detection on the spread-normalised residual.
        spread = float(values[-1] - values[0]) if len(values) > 1 else 0.0
        scale = max(spread, _SCALE_FLOOR)
        normalised = residual / scale
        registry = get_registry()
        for detector in self.detectors:
            if detector.update(normalised):
                event = DriftEvent(
                    time_index=int(time_index),
                    detector=detector.name,
                    score=float(detector.fired_score),
                    direction=detector.fired_direction,
                )
                self.drift_events.append(event)
                self._window_drift_events += 1
                registry.emit_event(**event.as_record())
                registry.counter(
                    "monitor.drift_events", detector=detector.name
                ).inc()

        self.steps_observed += 1
        self._window_steps += 1
        if self._window_steps >= self.window:
            self._finalize_window()

    def observe_degraded(self, time_index: int) -> None:
        """Ingest one interval served by a degraded (fallback) plan.

        Degraded intervals carry no forecast quantiles, so they cannot
        feed calibration — but they must still advance the window and be
        visible to alerting: the per-window ``degraded_intervals`` /
        ``degraded_rate`` fields count them, and rules from
        :func:`~repro.obs.alerts.degradation_rules` fire on them.
        """
        self._buf_indices.append(int(time_index))
        self._window_degraded += 1
        self._window_steps += 1
        self.steps_observed += 1
        get_registry().counter("monitor.degraded_steps").inc()
        if self._window_steps >= self.window:
            self._finalize_window()

    def observe_forecast(
        self,
        forecast: "QuantileForecast",
        actuals: np.ndarray,
        start_index: int = 0,
    ) -> None:
        """Ingest a whole forecast window step by step (backtest path)."""
        actuals = np.asarray(actuals, dtype=np.float64)
        steps = min(forecast.horizon, len(actuals))
        for h in range(steps):
            self.observe(
                forecast.levels,
                forecast.values[:, h],
                actuals[h],
                time_index=start_index + h,
            )

    # -- window finalisation -------------------------------------------
    def _finalize_window(self) -> None:
        actuals = np.asarray(self._buf_actuals, dtype=np.float64)
        medians = np.asarray(self._buf_medians, dtype=np.float64)
        steps = self._window_steps
        coverage = {
            key: float(np.mean(flags)) for key, flags in self._buf_covered.items()
        }
        calibration_error = (
            float(
                np.mean(
                    [abs(coverage[k] - self._buf_taus[k]) for k in coverage]
                )
            )
            if coverage
            else 0.0
        )
        abs_sum = float(np.abs(actuals).sum())
        if abs_sum > 0.0:
            wql = {k: 2.0 * ql / abs_sum for k, ql in self._buf_ql.items()}
        else:
            wql = {k: 0.0 for k in self._buf_ql}
        # A fully degraded window has no forecasted steps at all — the
        # accuracy aggregates are defined as 0 rather than NaN.
        mape = (
            float(
                np.mean(
                    np.abs(medians - actuals) / np.maximum(np.abs(actuals), self.eps)
                )
            )
            if len(actuals)
            else 0.0
        )
        stats = WindowStats(
            window=self._window_count,
            start_index=self._buf_indices[0],
            end_index=self._buf_indices[-1],
            steps=steps,
            coverage=coverage,
            calibration_error=calibration_error,
            wql=wql,
            mean_wql=float(np.mean(list(wql.values()))) if wql else 0.0,
            mape=mape,
            mean_residual=(
                float(np.mean(actuals - medians)) if len(actuals) else 0.0
            ),
            drift_score=max((d.score for d in self.detectors), default=0.0),
            drift_events=self._window_drift_events,
            violation_rate=(
                float(np.mean(self._buf_violations))
                if self._buf_violations
                else None
            ),
            degraded_intervals=self._window_degraded,
            degraded_rate=self._window_degraded / steps if steps else 0.0,
        )
        self.windows.append(stats)
        self._window_count += 1
        self._reset_window()

        registry = get_registry()
        record = stats.as_record()
        registry.emit_event(**record)
        for key, value in coverage.items():
            registry.gauge("monitor.coverage", level=key).set(value)
        registry.gauge("monitor.calibration_error").set(calibration_error)
        registry.gauge("monitor.mean_wql").set(stats.mean_wql)
        registry.gauge("monitor.mape").set(mape)
        registry.gauge("monitor.drift_score").set(stats.drift_score)
        registry.gauge("monitor.degraded_rate").set(stats.degraded_rate)
        registry.counter("monitor.windows").inc()

        if self.alerts is not None:
            self.alerts.evaluate(record)
        if self.slos is not None:
            self.slos.observe_window(record)

    # -- checkpoint/restore --------------------------------------------
    def state_dict(self) -> dict:
        """The monitor's full streaming state as JSON-safe containers.

        Covers finalised windows, the open window's accumulators, drift
        detector internals, and (when an alert engine is attached) its
        streak/firing state — everything needed for a restored monitor
        to produce bit-identical windows, drift events, and alerts from
        the same subsequent observation stream.  Configuration (window
        size, detector thresholds, rules) is not serialized; a restored
        monitor keeps what it was constructed with.
        """
        from dataclasses import asdict

        return {
            "steps_observed": self.steps_observed,
            "window_count": self._window_count,
            "windows": [asdict(w) for w in self.windows],
            "drift_events": [asdict(d) for d in self.drift_events],
            "detectors": [
                {"name": d.name, "state": d.state_dict()} for d in self.detectors
            ],
            "buffer": {
                "indices": list(self._buf_indices),
                "actuals": list(self._buf_actuals),
                "medians": list(self._buf_medians),
                "covered": {k: list(v) for k, v in self._buf_covered.items()},
                "taus": dict(self._buf_taus),
                "ql": dict(self._buf_ql),
                "violations": list(self._buf_violations),
                "window_drift_events": self._window_drift_events,
                "window_steps": self._window_steps,
                "window_degraded": self._window_degraded,
            },
            "alerts": self.alerts.state_dict() if self.alerts is not None else None,
            "slos": self.slos.state_dict() if self.slos is not None else None,
        }

    def load_state_dict(self, state: dict) -> "ModelHealthMonitor":
        """Restore streaming state captured by :meth:`state_dict` in place.

        Detector states are matched positionally and verified by name —
        restoring into a monitor configured with different detectors is
        an error, not a silent miscount.
        """
        self.steps_observed = int(state["steps_observed"])
        self._window_count = int(state["window_count"])
        self.windows = [WindowStats(**w) for w in state["windows"]]
        self.drift_events = [DriftEvent(**d) for d in state["drift_events"]]
        saved = state["detectors"]
        if len(saved) != len(self.detectors) or any(
            entry["name"] != detector.name
            for entry, detector in zip(saved, self.detectors)
        ):
            raise ValueError(
                "checkpointed detectors "
                f"{[e['name'] for e in saved]} do not match configured "
                f"{[d.name for d in self.detectors]}"
            )
        for entry, detector in zip(saved, self.detectors):
            detector.load_state_dict(entry["state"])
        buffer = state["buffer"]
        self._buf_indices = [int(v) for v in buffer["indices"]]
        self._buf_actuals = [float(v) for v in buffer["actuals"]]
        self._buf_medians = [float(v) for v in buffer["medians"]]
        self._buf_covered = {
            k: [bool(f) for f in v] for k, v in buffer["covered"].items()
        }
        self._buf_taus = {k: float(v) for k, v in buffer["taus"].items()}
        self._buf_ql = {k: float(v) for k, v in buffer["ql"].items()}
        self._buf_violations = [bool(v) for v in buffer["violations"]]
        self._window_drift_events = int(buffer["window_drift_events"])
        self._window_steps = int(buffer["window_steps"])
        self._window_degraded = int(buffer["window_degraded"])
        if state["alerts"] is not None and self.alerts is not None:
            self.alerts.load_state_dict(state["alerts"])
        # Older checkpoints predate SLO tracking; absence means empty.
        if state.get("slos") is not None and self.slos is not None:
            self.slos.load_state_dict(state["slos"])
        return self

    # -- inspection ----------------------------------------------------
    def coverage_series(self, tau: float) -> np.ndarray:
        """Per-window empirical coverage of one level, in window order."""
        key = _level_key(tau)
        return np.array(
            [w.coverage.get(key, np.nan) for w in self.windows], dtype=np.float64
        )

    def window_records(self) -> list[dict]:
        """All finalised windows as plain event records."""
        return [w.as_record() for w in self.windows]

    def drift_records(self) -> list[dict]:
        """All drift events as plain event records."""
        return [d.as_record() for d in self.drift_events]

    def summary(self) -> dict:
        """Headline health figures (latest window + totals)."""
        latest = self.windows[-1] if self.windows else None
        return {
            "steps_observed": self.steps_observed,
            "windows": len(self.windows),
            "drift_events": len(self.drift_events),
            "latest_coverage": dict(latest.coverage) if latest else {},
            "latest_calibration_error": (
                latest.calibration_error if latest else None
            ),
            "latest_mean_wql": latest.mean_wql if latest else None,
            "latest_mape": latest.mape if latest else None,
        }
