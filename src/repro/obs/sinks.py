"""Telemetry sinks: where metric events go.

A sink receives every metric update and completed span from a
:class:`~repro.obs.registry.MetricsRegistry` as a plain dict.  Three
implementations:

* :class:`InMemorySink` — buffers records for programmatic inspection
  (tests, notebooks);
* :class:`JsonlSink` — appends one JSON object per line to a file, the
  interchange format ``repro-autoscale report`` consumes;
* :class:`TableSink` — aggregates records and writes a human-readable
  summary table to a stream on :meth:`close`.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO, Protocol, runtime_checkable

__all__ = ["Sink", "InMemorySink", "JsonlSink", "TableSink"]


@runtime_checkable
class Sink(Protocol):
    """Structural contract for telemetry consumers."""

    def emit(self, record: dict) -> None: ...

    def close(self) -> None: ...


class InMemorySink:
    """Keep every record in a list."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        # Copy: the registry reuses label dicts across events.
        self.records.append(dict(record))

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.records)


class JsonlSink:
    """Write one JSON object per line; also usable as a context manager.

    Crash safety: by default every record is flushed to the OS as soon
    as it is written, so a run killed mid-stream still leaves a readable
    (at worst truncated-last-line) telemetry file.  Raise
    ``flush_every`` to trade durability for fewer syscalls on hot
    streams.
    """

    def __init__(self, path: str | Path, flush_every: int = 1) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = Path(path)
        self.flush_every = flush_every
        self._file: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._unflushed = 0
        self.records_written = 0

    def emit(self, record: dict) -> None:
        if self._file is None:
            raise ValueError(f"JsonlSink({self.path}) already closed")
        try:
            line = json.dumps(record, default=_jsonable, allow_nan=False)
        except ValueError:
            # Non-finite floats (empty-histogram min/max, inf burn
            # rates) would serialize as bare NaN/Infinity tokens no
            # strict JSON parser accepts; null them instead.  The
            # round-trip normalises numpy scalars first so _sanitize
            # only ever sees plain floats.
            normalized = json.loads(json.dumps(record, default=_jsonable))
            line = json.dumps(_sanitize(normalized), allow_nan=False)
        self._file.write(line + "\n")
        self.records_written += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self._file.flush()
            self._unflushed = 0

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _sanitize(value):
    """Replace non-finite floats with None, recursively."""
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else None
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


def _jsonable(value):
    """Fallback encoder for numpy scalars/arrays in metadata."""
    if hasattr(value, "item"):
        try:
            return value.item()
        except (ValueError, TypeError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


class TableSink:
    """Aggregate records, print a readable summary when closed.

    Useful as a CLI-side "live" sink: attach it alongside a
    :class:`JsonlSink` and the run ends with a telemetry table on
    stderr without a separate ``report`` invocation.
    """

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._records: list[dict] = []
        self._closed = False

    def emit(self, record: dict) -> None:
        self._records.append(dict(record))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        from .report import format_summary, summarize_records

        if self._records:
            self.stream.write(format_summary(summarize_records(self._records)) + "\n")
