"""Observability for the autoscaling loop (zero-dependency telemetry).

The paper's pitch — robust planning cuts under-provisioning at modest
cost — is only demonstrable if the loop's behaviour is visible.  This
package provides the monitoring substrate RobustScaler/OptScaler-style
production autoscalers rely on, scaled down to a library:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` metrics and nested wall-clock ``span()`` timers;
* pluggable sinks (:class:`InMemorySink`, :class:`JsonlSink`,
  :class:`TableSink`);
* stream summarization for ``repro-autoscale report``.

Instrumented modules (``core.runtime``, ``simulator``, ``forecast``,
``core.evaluation``) write to the ambient registry from
:func:`get_registry`; attach a sink (or install a fresh registry with
:func:`using_registry`) to collect, e.g.::

    from repro import obs

    registry = obs.MetricsRegistry()
    registry.add_sink(obs.JsonlSink("run.jsonl"))
    with obs.using_registry(registry):
        runtime.run(workload)
    print(obs.format_summary(obs.summarize_records(
        obs.read_jsonl("run.jsonl"))))
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    using_registry,
)
from .report import (
    DistributionSummary,
    SpanSummary,
    TelemetrySummary,
    format_summary,
    read_jsonl,
    summarize_records,
)
from .sinks import InMemorySink, JsonlSink, Sink, TableSink

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "set_registry",
    "using_registry",
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "TableSink",
    "TelemetrySummary",
    "SpanSummary",
    "DistributionSummary",
    "summarize_records",
    "read_jsonl",
    "format_summary",
]
