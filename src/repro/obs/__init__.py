"""Observability for the autoscaling loop (zero-dependency telemetry).

The paper's pitch — robust planning cuts under-provisioning at modest
cost — is only demonstrable if the loop's behaviour is visible.  This
package provides the monitoring substrate RobustScaler/OptScaler-style
production autoscalers rely on, scaled down to a library:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` metrics and nested wall-clock ``span()`` timers;
* pluggable sinks (:class:`InMemorySink`, :class:`JsonlSink`,
  :class:`TableSink`);
* streaming **model-health monitors** (:mod:`repro.obs.monitor`):
  windowed quantile calibration, rolling wQL/MAPE, and residual drift
  detection via Page-Hinkley and CUSUM;
* a declarative **alert engine** (:mod:`repro.obs.alerts`) firing
  structured alert events into the same stream;
* stream summarization for ``repro-autoscale report`` — including the
  model-health timeline and per-decision provenance records.

Instrumented modules (``core.runtime``, ``simulator``, ``forecast``,
``core.evaluation``) write to the ambient registry from
:func:`get_registry`; attach a sink (or install a fresh registry with
:func:`using_registry`) to collect, e.g.::

    from repro import obs

    registry = obs.MetricsRegistry()
    registry.add_sink(obs.JsonlSink("run.jsonl"))
    monitor = obs.ModelHealthMonitor(window=24, alerts=obs.AlertEngine(
        obs.default_rules(nominal_level=0.9)))
    runtime.monitor = monitor
    with obs.using_registry(registry):
        runtime.run(workload)
    print(obs.format_summary(obs.summarize_records(
        obs.read_jsonl("run.jsonl"))))
    print(obs.format_model_health(obs.summarize_model_health(
        obs.read_jsonl("run.jsonl"))))
"""

from .alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    default_rules,
    degradation_rules,
    parse_rule,
)
from .monitor import (
    CUSUM,
    DriftDetector,
    DriftEvent,
    ModelHealthMonitor,
    PageHinkley,
    WindowStats,
)
from .prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    parse_exposition,
    render_prometheus,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    using_registry,
)
from .report import (
    DistributionSummary,
    ModelHealthSummary,
    SpanSummary,
    TelemetrySummary,
    format_model_health,
    format_summary,
    read_jsonl,
    summarize_model_health,
    summarize_records,
)
from .sinks import InMemorySink, JsonlSink, Sink, TableSink
from .slo import (
    SLO,
    BurnRateRule,
    SLOTracker,
    default_burn_rates,
    parse_slo,
)
from .trace import TraceCollector, render_trace_timeline

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "set_registry",
    "using_registry",
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "TableSink",
    "ModelHealthMonitor",
    "DriftDetector",
    "DriftEvent",
    "PageHinkley",
    "CUSUM",
    "WindowStats",
    "Alert",
    "AlertRule",
    "AlertEngine",
    "parse_rule",
    "default_rules",
    "degradation_rules",
    "TelemetrySummary",
    "SpanSummary",
    "DistributionSummary",
    "ModelHealthSummary",
    "summarize_records",
    "summarize_model_health",
    "read_jsonl",
    "format_summary",
    "format_model_health",
    "SLO",
    "BurnRateRule",
    "SLOTracker",
    "parse_slo",
    "default_burn_rates",
    "TraceCollector",
    "render_trace_timeline",
    "render_prometheus",
    "parse_exposition",
    "PROMETHEUS_CONTENT_TYPE",
]
