"""Declarative SLOs with error budgets and multi-window burn-rate alerts.

The paper's claim — probabilistic planning cuts QoS violations at
modest cost — is a *service-level objective* claim, so the monitor
needs a first-class notion of one.  An SLO here is a compact spec
string compiled by :func:`parse_slo`::

    qos_violation_rate < 0.05 over 288     # rate objective
    coverage@0.9 >= 0.85 over 144          # good-rate objective
    plan_latency_p99 < 0.5s                # latency objective

i.e. ``<metric>[@level] <op> <value>[ms|s] [over <window ticks>]``.

Two kinds fall out of the grammar:

* **rate** objectives watch a fraction in the
  :class:`~repro.obs.monitor.ModelHealthMonitor` window records.  For
  ``<``/``<=`` the metric is a *bad* rate (violation rate) and the
  threshold is the error budget; for ``>``/``>=`` it is a *good* rate
  (coverage) and the budget is ``1 - threshold``.  The tracker keeps a
  rolling ledger of bad ticks over the SLO window and converts it to
  Google-SRE-style **burn rates**: ``burn = observed bad rate / budget
  rate``, evaluated over a long and a short sub-window so alerts need
  both a sustained and a *current* burn (fast detection without
  flapping on a single bad window).
* **latency** objectives watch a quantile of a span-duration histogram
  (``plan_latency_p99`` → p99 of ``runtime.step/plan``), checked at
  every window close against the threshold.

Alerts fire through the shared :class:`~repro.obs.alerts.AlertEngine`,
so they reach the telemetry stream, the ``alerts.fired`` counter, and
the service daemon's replan-on-alert hook exactly like any other rule —
and *resolve* when the burn drops, re-arming the episode.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass

from .alerts import _OPS, AlertEngine, AlertRule
from .registry import get_registry

__all__ = [
    "SLO",
    "BurnRateRule",
    "SLOTracker",
    "parse_slo",
    "default_burn_rates",
]

#: Monitor-record fields addressable from a spec, by friendly name.
_RATE_ALIASES = {
    "qos_violation_rate": "violation_rate",
}

#: Span paths addressable from a latency spec, by friendly name.
#: Unknown bases are taken as literal span paths.
_LATENCY_ALIASES = {
    "plan_latency": "runtime.step/plan",
    "actuate_latency": "runtime.step/actuate",
    "observe_latency": "runtime.step/observe",
    "step_latency": "runtime.step",
}

_QUANTILE_SUFFIXES = {"_p50": 0.5, "_p90": 0.9, "_p99": 0.99}

_SPEC_RE = re.compile(
    r"""^\s*
    (?P<metric>[a-zA-Z_][a-zA-Z0-9_./-]*?)
    (?:@(?P<level>[0-9.]+))?
    \s*(?P<op><=|>=|<|>)\s*
    (?P<value>[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)
    (?P<unit>ms|s)?
    (?:\s+over\s+(?P<window>\d+))?
    \s*$""",
    re.VERBOSE,
)

#: Default rolling window for rate objectives, in ticks (two days at
#: 10-minute intervals).
DEFAULT_WINDOW = 288


@dataclass(frozen=True)
class SLO:
    """One compiled service-level objective."""

    metric: str  # record field (rate) or span path (latency)
    op: str
    threshold: float  # rate in [0,1], or seconds for latency
    window: int  # rolling window in ticks (rate objectives)
    kind: str  # "rate" | "latency"
    level: float | None = None  # quantile level for per-level record fields
    quantile: float = 0.99  # histogram quantile for latency objectives
    spec: str = ""  # original spec string (display name)

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparator {self.op!r}")
        if self.kind not in ("rate", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.kind == "rate" and not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"rate objective threshold must be in [0, 1], "
                f"got {self.threshold:g}"
            )
        if not self.spec:
            object.__setattr__(self, "spec", self._default_spec())

    def _default_spec(self) -> str:
        metric = self.metric
        if self.level is not None:
            metric = f"{metric}@{self.level:g}"
        if self.kind == "latency":
            return f"{metric} {self.op} {self.threshold:g}s"
        return f"{metric} {self.op} {self.threshold:g} over {self.window}"

    @property
    def budget_rate(self) -> float:
        """Allowed bad-event rate (the error budget as a fraction).

        Meaningful for rate objectives only; a ``< 0.05`` bad-rate
        objective budgets 5% bad ticks, a ``>= 0.85`` good-rate
        objective budgets 15%.
        """
        if self.op in ("<", "<="):
            return self.threshold
        return 1.0 - self.threshold

    def bad_rate(self, value: float) -> float:
        """Convert an observed metric value into a bad-event rate."""
        if self.op in ("<", "<="):
            return float(value)
        return 1.0 - float(value)

    def value_from(self, record: dict) -> float | None:
        """Extract this objective's metric from a monitor window record."""
        value = record.get(self.metric)
        if isinstance(value, dict):
            if self.level is None:
                return None
            value = value.get(format(self.level, "g"))
        if value is None:
            return None
        try:
            return float(value)
        except (TypeError, ValueError):
            return None


def parse_slo(spec: str) -> SLO:
    """Parse ``"<metric>[@level] <op> <value>[ms|s] [over N]"`` into an SLO."""
    match = _SPEC_RE.match(spec)
    if match is None:
        raise ValueError(
            f"cannot parse SLO {spec!r}; expected "
            f"'<metric>[@level] <op> <value>[ms|s] [over N]', e.g. "
            f"'qos_violation_rate < 0.05 over 288' or "
            f"'plan_latency_p99 < 0.5s'"
        )
    metric = match.group("metric")
    value = float(match.group("value"))
    unit = match.group("unit")
    level = match.group("level")
    window = match.group("window")

    quantile = None
    for suffix, q in _QUANTILE_SUFFIXES.items():
        if metric.endswith(suffix):
            quantile = q
            metric = metric[: -len(suffix)]
            break
    if quantile is not None or unit is not None:
        path = _LATENCY_ALIASES.get(metric, metric)
        if unit == "ms":
            value /= 1000.0
        return SLO(
            metric=path,
            op=match.group("op"),
            threshold=value,
            window=int(window) if window else DEFAULT_WINDOW,
            kind="latency",
            quantile=quantile if quantile is not None else 0.99,
            spec=spec.strip(),
        )
    return SLO(
        metric=_RATE_ALIASES.get(metric, metric),
        op=match.group("op"),
        threshold=value,
        window=int(window) if window else DEFAULT_WINDOW,
        kind="rate",
        level=float(level) if level is not None else None,
        spec=spec.strip(),
    )


@dataclass(frozen=True)
class BurnRateRule:
    """One burn-rate alerting condition (long + short sub-window).

    ``factor`` is the multiple of the budget-sustainable rate: burning
    at 14.4x exhausts a 2-day budget in ~3.3 hours.  The alert requires
    *both* sub-windows above the factor — the long window proves the
    burn is sustained, the short window proves it is still happening.
    """

    severity: str
    factor: float
    long_ticks: int
    short_ticks: int

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("factor must be positive")
        if self.long_ticks < 1 or self.short_ticks < 1:
            raise ValueError("burn windows must be >= 1 tick")


def default_burn_rates(window: int) -> list[BurnRateRule]:
    """The classic SRE two-alert ladder, scaled to the SLO window.

    For the canonical 30-day/1-hour page this is 14.4x over window/720
    — here windows are ticks, so the ratios are kept: a fast critical
    burn over ~window/24 and a slow warning burn over ~window/6.
    """
    return [
        BurnRateRule(
            severity="critical",
            factor=14.4,
            long_ticks=max(window // 24, 1),
            short_ticks=max(window // 96, 1),
        ),
        BurnRateRule(
            severity="warning",
            factor=6.0,
            long_ticks=max(window // 6, 1),
            short_ticks=max(window // 24, 1),
        ),
    ]


class SLOTracker:
    """Rolling error-budget accounting and burn-rate alerting.

    Attach to a :class:`~repro.obs.monitor.ModelHealthMonitor` (the
    ``slos=`` parameter); every finalised window record feeds
    :meth:`observe_window`, which updates each rate objective's bad-tick
    ledger, evaluates each latency objective against its span
    histogram, emits one ``kind="slo"`` event per objective, and fires
    or resolves burn alerts through the shared engine.

    Parameters
    ----------
    slos:
        Objectives, as spec strings or :class:`SLO` instances.
    engine:
        The :class:`~repro.obs.alerts.AlertEngine` burn alerts fire
        through (a private one is created when omitted, so the tracker
        works standalone).
    burn_rates:
        Burn ladder shared by all rate objectives; defaults to
        :func:`default_burn_rates` of each objective's own window.
    """

    def __init__(
        self,
        slos,
        engine: "AlertEngine | None" = None,
        burn_rates: "list[BurnRateRule] | None" = None,
    ) -> None:
        self.slos: list[SLO] = [
            slo if isinstance(slo, SLO) else parse_slo(slo) for slo in slos
        ]
        self.engine = engine if engine is not None else AlertEngine()
        self._burn_rates = burn_rates
        # Per-rate-objective ledger of (end_tick, steps, bad_ticks).
        self._samples: dict[str, deque] = {
            slo.spec: deque() for slo in self.slos if slo.kind == "rate"
        }
        self.windows_observed = 0
        self._last_status: list[dict] = []

    def burn_rates_for(self, slo: SLO) -> list[BurnRateRule]:
        if self._burn_rates is not None:
            return self._burn_rates
        return default_burn_rates(slo.window)

    # -- feeding ---------------------------------------------------------
    def observe_window(self, record: dict) -> list[dict]:
        """Ingest one monitor window record; returns per-SLO status."""
        end_tick = int(record.get("end_index", -1))
        steps = int(record.get("steps", 0))
        registry = get_registry()
        status: list[dict] = []
        for slo in self.slos:
            if slo.kind == "rate":
                value = slo.value_from(record)
                if value is not None and steps > 0:
                    ledger = self._samples[slo.spec]
                    ledger.append(
                        (end_tick, steps, slo.bad_rate(value) * steps)
                    )
                    horizon = end_tick - slo.window
                    while ledger and ledger[0][0] <= horizon:
                        ledger.popleft()
                entry = self._rate_status(slo, end_tick, record)
            else:
                entry = self._latency_status(slo, record)
            status.append(entry)
            registry.emit_event(**{"kind": "slo", "name": slo.spec, **entry})
            registry.gauge("slo.budget_consumed", objective=slo.spec).set(
                entry.get("budget_consumed", 0.0) or 0.0
            )
        self.windows_observed += 1
        self._last_status = status
        return status

    # -- per-kind evaluation ---------------------------------------------
    def _windowed_bad_rate(self, slo: SLO, ticks: int, now: int) -> float | None:
        """Observed bad-tick rate over the trailing ``ticks``, or None."""
        horizon = now - ticks
        steps = bad = 0.0
        for end_tick, window_steps, bad_ticks in self._samples[slo.spec]:
            if end_tick > horizon:
                steps += window_steps
                bad += bad_ticks
        if steps <= 0:
            return None
        return bad / steps

    def _rate_status(self, slo: SLO, now: int, record: dict) -> dict:
        ledger = self._samples[slo.spec]
        observed = sum(s for _, s, _ in ledger)
        bad = sum(b for _, _, b in ledger)
        budget_rate = slo.budget_rate
        budget_ticks = budget_rate * slo.window
        consumed = bad / budget_ticks if budget_ticks > 0 else float(bad > 0)
        burns: dict[str, dict] = {}
        firing_any = False
        for rule in self.burn_rates_for(slo):
            long_rate = self._windowed_bad_rate(slo, rule.long_ticks, now)
            short_rate = self._windowed_bad_rate(slo, rule.short_ticks, now)
            if budget_rate > 0:
                long_burn = (long_rate or 0.0) / budget_rate
                short_burn = (short_rate or 0.0) / budget_rate
            else:
                # Zero budget: any bad tick is an infinite burn.
                long_burn = float("inf") if (long_rate or 0.0) > 0 else 0.0
                short_burn = float("inf") if (short_rate or 0.0) > 0 else 0.0
            breaching = (
                long_rate is not None
                and long_burn >= rule.factor
                and short_burn >= rule.factor
            )
            name = f"slo-burn:{slo.spec}:{rule.severity}"
            if breaching:
                firing_any = True
                alert_rule = AlertRule(
                    metric="slo_burn_rate",
                    op=">=",
                    threshold=rule.factor,
                    severity=rule.severity,
                    name=name,
                )
                self.engine.fire(
                    alert_rule,
                    window=int(record.get("window", -1)),
                    end_index=now,
                    value=long_burn,
                )
            else:
                self.engine.resolve(name)
            burns[rule.severity] = {
                "factor": rule.factor,
                "long_ticks": rule.long_ticks,
                "short_ticks": rule.short_ticks,
                "long_burn": long_burn,
                "short_burn": short_burn,
                "firing": self.engine.is_firing(name),
            }
        return {
            "objective": slo.spec,
            "slo_kind": "rate",
            "metric": slo.metric,
            "window": slo.window,
            "ticks_observed": observed,
            "bad_ticks": bad,
            "budget_ticks": budget_ticks,
            "budget_consumed": consumed,
            "budget_remaining": max(1.0 - consumed, 0.0),
            "burn": burns,
            "healthy": not firing_any,
        }

    def _latency_status(self, slo: SLO, record: dict) -> dict:
        registry = get_registry()
        metric = registry._metrics.get(("histogram", f"span/{slo.metric}", ()))
        value = None
        if metric is not None and metric.count:
            value = metric.quantile(slo.quantile)
        name = f"slo-latency:{slo.spec}"
        breaching = value is not None and not _OPS[slo.op](value, slo.threshold)
        # The objective states the *good* condition; breach = not met.
        if breaching:
            alert_rule = AlertRule(
                metric="slo_latency",
                op=slo.op,
                threshold=slo.threshold,
                severity="warning",
                name=name,
            )
            self.engine.fire(
                alert_rule,
                window=int(record.get("window", -1)),
                end_index=int(record.get("end_index", -1)),
                value=float(value),
            )
        else:
            self.engine.resolve(name)
        return {
            "objective": slo.spec,
            "slo_kind": "latency",
            "metric": slo.metric,
            "quantile": slo.quantile,
            "threshold_s": slo.threshold,
            "value_s": value,
            "healthy": not self.engine.is_firing(name),
        }

    # -- inspection ------------------------------------------------------
    def status(self) -> list[dict]:
        """Latest per-objective status (empty before the first window)."""
        return [dict(entry) for entry in self._last_status]

    # -- checkpoint/restore ----------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe ledger state; objectives themselves are config."""
        return {
            "windows_observed": self.windows_observed,
            "samples": {
                spec: [[int(e), int(s), float(b)] for e, s, b in ledger]
                for spec, ledger in self._samples.items()
            },
            "last_status": [dict(entry) for entry in self._last_status],
        }

    def load_state_dict(self, state: dict) -> "SLOTracker":
        saved = state.get("samples", {})
        unknown = set(saved) - set(self._samples)
        if unknown:
            raise ValueError(
                f"checkpointed SLO ledgers {sorted(unknown)} do not match "
                f"configured objectives {sorted(self._samples)}"
            )
        for spec, ledger in self._samples.items():
            ledger.clear()
            for end_tick, steps, bad in saved.get(spec, []):
                ledger.append((int(end_tick), int(steps), float(bad)))
        self.windows_observed = int(state.get("windows_observed", 0))
        self._last_status = [dict(e) for e in state.get("last_status", [])]
        return self
