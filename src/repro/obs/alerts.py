"""Declarative alerting on top of the model-health event stream.

An :class:`AlertRule` states a condition over the per-window health
records :class:`~repro.obs.monitor.ModelHealthMonitor` produces —
"coverage@0.9 below 0.8 for 12 consecutive windows", "drift score above
λ", "QoS violation rate above x" — and the :class:`AlertEngine` tracks
consecutive breaches and fires structured ``alert`` events into the
telemetry stream when a rule's streak requirement is met.

Rules can be built programmatically or parsed from the compact spec
grammar the CLI exposes (``--alert``)::

    coverage@0.9 < 0.8 for 12
    drift_score > 25
    violation_rate > 0.1 for 3
    mape > 0.5

i.e. ``<metric>[@<level>] <op> <threshold> [for <N>]`` where ``metric``
is any numeric field of the window record (``coverage`` and ``wql``
take a quantile level), ``op`` is one of ``< <= > >=``, and ``N`` is
the number of *consecutive* breaching windows required (default 1).

A rule fires once per breach episode: after firing it re-arms only when
the condition recovers, so a long outage produces one alert, not one
per window.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .registry import get_registry

__all__ = [
    "Alert",
    "AlertRule",
    "AlertEngine",
    "parse_rule",
    "default_rules",
    "degradation_rules",
]

_OPS = {
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
}

_SPEC_RE = re.compile(
    r"""^\s*
    (?P<metric>[a-zA-Z_][a-zA-Z0-9_.]*)
    (?:@(?P<level>[0-9.]+))?
    \s*(?P<op><=|>=|<|>)\s*
    (?P<threshold>-?[0-9.eE+-]+)
    (?:\s+for\s+(?P<windows>\d+))?
    \s*$""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class AlertRule:
    """One declarative condition over window health records.

    Parameters
    ----------
    metric:
        Field of the window record to test.  ``coverage`` and ``wql``
        are per-level dicts and require ``level``; everything else
        (``calibration_error``, ``mean_wql``, ``mape``, ``drift_score``,
        ``drift_events``, ``violation_rate``, ``mean_residual``, ...)
        is read directly.
    op:
        Comparison: ``<``, ``<=``, ``>``, ``>=``.
    threshold:
        Right-hand side of the comparison.
    level:
        Quantile level for per-level metrics (e.g. 0.9).
    for_windows:
        Consecutive breaching windows required before firing.
    severity:
        Free-form label stamped onto fired alerts (``warning`` default).
    name:
        Display name; defaults to the spec-like form.
    """

    metric: str
    op: str
    threshold: float
    level: float | None = None
    for_windows: int = 1
    severity: str = "warning"
    name: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparator {self.op!r}")
        if self.for_windows < 1:
            raise ValueError("for_windows must be >= 1")
        if not self.name:
            object.__setattr__(self, "name", self.spec)

    @property
    def spec(self) -> str:
        """Canonical spec string (parseable by :func:`parse_rule`)."""
        metric = self.metric
        if self.level is not None:
            metric = f"{metric}@{self.level:g}"
        suffix = f" for {self.for_windows}" if self.for_windows > 1 else ""
        return f"{metric} {self.op} {self.threshold:g}{suffix}"

    def value_from(self, record: dict) -> float | None:
        """Extract this rule's metric from a window record (None if absent)."""
        value = record.get(self.metric)
        if isinstance(value, dict):
            if self.level is None:
                return None
            value = value.get(format(self.level, "g"))
        if value is None:
            return None
        try:
            return float(value)
        except (TypeError, ValueError):
            return None

    def breached(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)


@dataclass(frozen=True)
class Alert:
    """One fired alert."""

    rule: AlertRule
    window: int
    end_index: int
    value: float

    @property
    def message(self) -> str:
        streak = (
            f" for {self.rule.for_windows} consecutive windows"
            if self.rule.for_windows > 1
            else ""
        )
        return (
            f"{self.rule.name}: value {self.value:g} "
            f"{self.rule.op} {self.rule.threshold:g}{streak} "
            f"(window {self.window}, t={self.end_index})"
        )

    def as_record(self) -> dict:
        return {
            "kind": "alert",
            "name": self.rule.name,
            "metric": self.rule.metric,
            "level": self.rule.level,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "for_windows": self.rule.for_windows,
            "severity": self.rule.severity,
            "window": self.window,
            "end_index": self.end_index,
            "value": self.value,
            "message": self.message,
        }


def parse_rule(spec: str, severity: str = "warning") -> AlertRule:
    """Parse ``"<metric>[@level] <op> <threshold> [for N]"`` into a rule."""
    match = _SPEC_RE.match(spec)
    if match is None:
        raise ValueError(
            f"cannot parse alert rule {spec!r}; expected "
            f"'<metric>[@level] <op> <threshold> [for N]', "
            f"e.g. 'coverage@0.9 < 0.8 for 12'"
        )
    level = match.group("level")
    windows = match.group("windows")
    return AlertRule(
        metric=match.group("metric"),
        op=match.group("op"),
        threshold=float(match.group("threshold")),
        level=float(level) if level is not None else None,
        for_windows=int(windows) if windows is not None else 1,
        severity=severity,
    )


def default_rules(
    nominal_level: float = 0.9, coverage_slack: float = 0.15
) -> list[AlertRule]:
    """A sensible starter rule set for a closed-loop run.

    * coverage at the planning level sagging ``coverage_slack`` below
      nominal for 2 consecutive windows (miscalibration);
    * any window containing a drift firing (regime change);
    * QoS violation rate above 20% for 2 consecutive windows.
    """
    return [
        AlertRule(
            metric="coverage",
            level=nominal_level,
            op="<",
            threshold=max(nominal_level - coverage_slack, 0.0),
            for_windows=2,
            severity="warning",
        ),
        AlertRule(
            metric="drift_events",
            op=">",
            threshold=0.0,
            severity="critical",
        ),
        AlertRule(
            metric="violation_rate",
            op=">",
            threshold=0.2,
            for_windows=2,
            severity="critical",
        ),
    ]


def degradation_rules(max_degraded_rate: float = 0.5) -> list[AlertRule]:
    """Rules that surface graceful degradation in the runtime loop.

    Degraded intervals (planner failures served by the reactive
    fallback) reach the monitor's window records via
    :meth:`~repro.obs.monitor.ModelHealthMonitor.observe_degraded`:

    * any degraded interval in a window — the loop is running on its
      fallback (warning);
    * more than ``max_degraded_rate`` of a window degraded — the
      predictive planner is effectively down (critical).
    """
    if not 0.0 <= max_degraded_rate <= 1.0:
        raise ValueError("max_degraded_rate must be in [0, 1]")
    return [
        AlertRule(
            metric="degraded_intervals",
            op=">",
            threshold=0.0,
            severity="warning",
        ),
        AlertRule(
            metric="degraded_rate",
            op=">",
            threshold=max_degraded_rate,
            severity="critical",
        ),
    ]


class AlertEngine:
    """Evaluates rules against each window record; fires and logs alerts.

    Fired alerts are appended to :attr:`alerts`, published through the
    ambient registry as ``alert`` events (any attached sink receives
    them), and counted in the ``alerts.fired{rule=...}`` counter.
    """

    def __init__(self, rules: "list[AlertRule] | None" = None) -> None:
        self.rules: list[AlertRule] = list(rules) if rules is not None else []
        self.alerts: list[Alert] = []
        self._streaks: dict[str, int] = {}
        self._firing: dict[str, bool] = {}

    def add_rule(self, rule: AlertRule) -> None:
        self.rules.append(rule)

    def evaluate(self, record: dict) -> list[Alert]:
        """Test every rule against one window record; return new alerts."""
        fired: list[Alert] = []
        for rule in self.rules:
            value = rule.value_from(record)
            if value is None:
                continue
            if rule.breached(value):
                streak = self._streaks.get(rule.name, 0) + 1
                self._streaks[rule.name] = streak
                if streak >= rule.for_windows:
                    alert = self.fire(
                        rule,
                        window=int(record.get("window", -1)),
                        end_index=int(record.get("end_index", -1)),
                        value=value,
                    )
                    if alert is not None:
                        fired.append(alert)
            else:
                self._streaks[rule.name] = 0
                self.resolve(rule.name)
        return fired

    def fire(
        self, rule: AlertRule, window: int, end_index: int, value: float
    ) -> "Alert | None":
        """Fire ``rule`` directly, honouring once-per-episode re-arm.

        Used by evaluators that track their own breach condition (the
        SLO burn-rate tracker) but want alerts logged, emitted, and
        counted exactly like rule-engine firings.  Returns the new
        :class:`Alert`, or None when the rule is already firing.
        """
        if self._firing.get(rule.name):
            return None
        self._firing[rule.name] = True
        alert = Alert(
            rule=rule, window=window, end_index=end_index, value=value
        )
        self.alerts.append(alert)
        registry = get_registry()
        registry.emit_event(**alert.as_record())
        registry.counter("alerts.fired", rule=rule.name).inc()
        return alert

    def resolve(self, name: str) -> None:
        """Mark a rule's breach episode over, re-arming it."""
        self._firing[name] = False

    def is_firing(self, name: str) -> bool:
        """True while a rule is inside an unresolved breach episode."""
        return bool(self._firing.get(name))

    def alert_records(self) -> list[dict]:
        """All fired alerts as plain event records."""
        return [alert.as_record() for alert in self.alerts]

    # -- checkpoint/restore --------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe streak/firing state plus the fired-alert log.

        Rules themselves are configuration, not state — a restored
        engine keeps whatever rules it was constructed with; fired
        alerts carry their rule inline so the log survives even if the
        rule set changed between runs.
        """
        from dataclasses import asdict

        return {
            "streaks": dict(self._streaks),
            "firing": dict(self._firing),
            "alerts": [
                {
                    "rule": asdict(alert.rule),
                    "window": alert.window,
                    "end_index": alert.end_index,
                    "value": alert.value,
                }
                for alert in self.alerts
            ],
        }

    def load_state_dict(self, state: dict) -> "AlertEngine":
        """Restore state captured by :meth:`state_dict` in place."""
        self._streaks = {k: int(v) for k, v in state["streaks"].items()}
        self._firing = {k: bool(v) for k, v in state["firing"].items()}
        self.alerts = [
            Alert(
                rule=AlertRule(**entry["rule"]),
                window=int(entry["window"]),
                end_index=int(entry["end_index"]),
                value=float(entry["value"]),
            )
            for entry in state["alerts"]
        ]
        return self
