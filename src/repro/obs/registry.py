"""Metric primitives and the registry that owns them.

Zero-dependency (numpy only) process-local telemetry.  Three metric
kinds cover everything the autoscaling loop needs to expose:

* :class:`Counter` — monotonically increasing totals (decisions made,
  QoS violations, scale events);
* :class:`Gauge` — last-written values (nodes currently requested,
  per-epoch training loss);
* :class:`Histogram` — value distributions via a fixed-size reservoir
  sample (plan latencies, warm-up durations), with exact count / sum /
  min / max and approximate quantiles.

A :class:`MetricsRegistry` interns metrics by ``(name, labels)``,
aggregates in memory, and optionally streams every update to attached
sinks (see :mod:`repro.obs.sinks`) as plain-dict events — the format
:mod:`repro.obs.report` summarizes.

Instrumented library code never requires a registry argument: it reads
the process-wide *ambient* registry via :func:`get_registry`, which
callers replace with :func:`set_registry` or scope with
:func:`using_registry`.  The default ambient registry has no sinks, so
instrumentation costs a dict lookup and a float add when telemetry is
not being collected.
"""

from __future__ import annotations

import time
import zlib
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .sinks import Sink

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "using_registry",
]

LabelDict = dict[str, str]


def _label_key(labels: LabelDict) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def format_metric_key(name: str, labels: LabelDict) -> str:
    """Canonical flat key, e.g. ``evaluation.windows{strategy=TFT-0.9}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class _Metric:
    """Shared identity plumbing for all metric kinds."""

    kind = ""

    def __init__(self, registry: "MetricsRegistry", name: str, labels: LabelDict):
        self._registry = registry
        self.name = name
        self.labels = dict(labels)

    @property
    def key(self) -> str:
        return format_metric_key(self.name, self.labels)

    def _emit(self, **payload) -> None:
        self._registry._emit(
            {"kind": self.kind, "name": self.name, "labels": self.labels, **payload}
        )


class Counter(_Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, registry: "MetricsRegistry", name: str, labels: LabelDict):
        super().__init__(registry, name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        self.value += amount
        self._emit(delta=float(amount), value=self.value)


class Gauge(_Metric):
    """Last-written value (plus convenience add/sub)."""

    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry", name: str, labels: LabelDict):
        super().__init__(registry, name, labels)
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)
        self._emit(value=self.value)

    def add(self, amount: float) -> None:
        self.set((self.value or 0.0) + amount)


class Histogram(_Metric):
    """Distribution sketch: exact moments + reservoir-sampled quantiles.

    The reservoir (Vitter's Algorithm R, deterministic per-histogram
    seed) keeps a uniform sample of all observed values in a fixed
    numpy buffer, so quantile queries stay O(reservoir) regardless of
    how many observations flowed through.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        labels: LabelDict,
        reservoir_size: int = 1024,
    ):
        super().__init__(registry, name, labels)
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.count = 0
        self.sum = 0.0
        self.min = np.inf
        self.max = -np.inf
        self._filled = 0  # valid entries in the reservoir buffer
        self._reservoir = np.empty(reservoir_size, dtype=np.float64)
        # crc32, not hash(): str hashing is salted by PYTHONHASHSEED, so
        # reservoir contents (and thus quantiles) would differ between
        # processes observing the same value stream.
        self._rng = np.random.default_rng(zlib.crc32(self.key.encode("utf-8")))

    def observe(self, value: float) -> None:
        self._record(float(value))
        self._emit(value=float(value))

    def _record(self, value: float) -> None:
        """Update moments and reservoir without emitting an event."""
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        size = len(self._reservoir)
        if self._filled < size:
            self._reservoir[self._filled] = value
            self._filled += 1
        else:
            slot = int(self._rng.integers(0, self.count))
            if slot < size:
                self._reservoir[slot] = value

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's state (see ``MetricsRegistry.state_dict``).

        Moments (count/sum/min/max) merge exactly; the reservoir merge is
        approximate — a deterministic subsample of the union, drawn from
        this histogram's own seeded rng, so repeated runs with the same
        merge order produce identical quantile estimates.
        """
        if not state["count"]:
            return
        self.count += int(state["count"])
        self.sum += state["sum"]
        self.min = min(self.min, state["min"])
        self.max = max(self.max, state["max"])
        combined = np.concatenate(
            [self._reservoir[: self._filled], np.asarray(state["reservoir"])]
        )
        size = len(self._reservoir)
        if len(combined) <= size:
            self._reservoir[: len(combined)] = combined
            self._filled = len(combined)
        else:
            keep = np.sort(self._rng.choice(len(combined), size=size, replace=False))
            self._reservoir[:] = combined[keep]
            self._filled = size

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float | np.ndarray) -> float | np.ndarray | None:
        """Approximate quantile(s) from the reservoir sample.

        Returns ``None`` when the histogram has a count but no sampled
        values (a merged state can carry moments without a reservoir) —
        the quantile is unknowable, and ``None`` stays valid JSON where
        NaN would not.
        """
        if self.count == 0:
            raise ValueError(f"histogram {self.key!r} has no observations")
        if self._filled == 0:
            return None
        sample = self._reservoir[: self._filled]
        result = np.quantile(sample, q)
        return float(result) if np.ndim(result) == 0 else result

    def summary(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Owns metrics, interns them by (name, labels), fans out events.

    Parameters
    ----------
    sinks:
        Optional initial sinks; every metric update and completed span
        is emitted to each as a plain dict.
    time_source:
        Wall-clock for event timestamps (patchable in tests).
    """

    def __init__(self, sinks: "list[Sink] | None" = None, time_source=time.time):
        self._metrics: dict[tuple, _Metric] = {}
        self._sinks: list[Sink] = list(sinks) if sinks else []
        self._time = time_source
        self._span_stack: list[str] = []
        self._tracer = None

    # -- metric accessors ------------------------------------------------
    def _intern(self, cls, name: str, labels: LabelDict, **kwargs) -> _Metric:
        key = (cls.kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(self, name, labels, **kwargs)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._intern(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._intern(Gauge, name, labels)

    def histogram(
        self, name: str, reservoir_size: int = 1024, **labels: str
    ) -> Histogram:
        return self._intern(Histogram, name, labels, reservoir_size=reservoir_size)

    # -- spans -----------------------------------------------------------
    @contextmanager
    def span(self, name: str, **labels: str) -> Iterator[None]:
        """Time a block of work as a nested wall-clock span.

        Nested ``span()`` calls build slash-joined paths
        (``plan/forecast`` inside ``plan``); each completed span records
        its duration into a histogram keyed by the full path and emits a
        ``span`` event to the sinks.
        """
        self._span_stack.append(name)
        path = "/".join(self._span_stack)
        tracer = self._tracer
        token = tracer.open_span(path, labels) if tracer is not None else None
        status = "ok"
        start = time.perf_counter()
        try:
            yield
        except BaseException:
            status = "error"
            raise
        finally:
            duration = time.perf_counter() - start
            self._span_stack.pop()
            if token is not None:
                tracer.close_span(token, duration, status)
            histogram = self._intern(Histogram, f"span/{path}", labels)
            # Record without the generic histogram event; spans carry
            # their own richer record.
            histogram._record(duration)
            self._emit(
                {
                    "kind": "span",
                    "name": path,
                    "labels": dict(labels),
                    "duration_s": duration,
                    "status": status,
                    "depth": len(self._span_stack),
                }
            )

    @property
    def current_span_path(self) -> str | None:
        """Slash-joined path of the currently open spans (None at top level)."""
        return "/".join(self._span_stack) or None

    # -- tracing ---------------------------------------------------------
    def set_tracer(self, tracer):
        """Attach a :class:`~repro.obs.trace.TraceCollector` (or None).

        While attached, every completed ``span()`` block is also
        recorded as a trace span; returns the previously attached
        tracer so callers can restore it.
        """
        previous = self._tracer
        self._tracer = tracer
        return previous

    @property
    def tracer(self):
        """The attached trace collector, or None."""
        return self._tracer

    # -- sinks and snapshots ---------------------------------------------
    def add_sink(self, sink: "Sink") -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink: "Sink") -> None:
        self._sinks.remove(sink)

    @property
    def active(self) -> bool:
        """True when at least one sink is attached.

        Instrumentation that must *build* a payload (e.g. a provenance
        record) checks this first, so a sink-less run pays nothing
        beyond the attribute read.
        """
        return bool(self._sinks)

    def emit_event(self, kind: str, name: str, **payload) -> None:
        """Publish a free-form structured event to the sinks.

        The metric classes cover scalar telemetry; richer one-off
        records — provenance of a planning decision, a drift event, an
        alert — flow through here with a caller-chosen ``kind`` so
        existing sinks and ``report`` pick them up with no extra wiring.
        No-op when no sinks are attached.
        """
        if not self._sinks:
            return
        self._emit({"kind": kind, "name": name, "labels": {}, **payload})

    def _emit(self, record: dict) -> None:
        if not self._sinks:
            return
        record.setdefault("ts", self._time())
        for sink in self._sinks:
            sink.emit(record)

    # -- cross-process state ---------------------------------------------
    def state_dict(self) -> dict:
        """Picklable aggregate state, for shipping across process boundaries.

        Multiprocessing workers run under a fresh registry, return its
        ``state_dict()`` with their result, and the parent folds it back
        via :meth:`merge_state_dict` — so telemetry recorded inside
        workers is not silently dropped.  Only plain Python containers
        and floats, so any pickle protocol (and JSON) can carry it.
        """
        counters, gauges, histograms = [], [], []
        for metric in self._metrics.values():
            entry = {"name": metric.name, "labels": dict(metric.labels)}
            if isinstance(metric, Counter):
                counters.append({**entry, "value": metric.value})
            elif isinstance(metric, Gauge):
                gauges.append({**entry, "value": metric.value})
            elif isinstance(metric, Histogram):
                histograms.append(
                    {
                        **entry,
                        "count": metric.count,
                        "sum": metric.sum,
                        "min": metric.min,
                        "max": metric.max,
                        "reservoir": metric._reservoir[: metric._filled].tolist(),
                        "reservoir_size": len(metric._reservoir),
                    }
                )
        state = {"counters": counters, "gauges": gauges, "histograms": histograms}
        if self._tracer is not None and self._tracer.finished:
            state["traces"] = self._tracer.drain()
        return state

    def merge_state_dict(self, state: dict, span_prefix: str | None = None) -> None:
        """Fold a worker's :meth:`state_dict` into this registry.

        Counters add (through :meth:`Counter.inc`, so attached sinks see
        the merged delta), gauges take the incoming value, histograms
        merge moments exactly and reservoirs approximately (see
        :meth:`Histogram.merge_state`).  Span histograms ride along like
        any other histogram; pass ``span_prefix`` (typically the
        parent's :attr:`current_span_path`) to re-root them under the
        spans that were open when the work was fanned out, so a worker's
        ``predict`` span lands in the same ``backtest/predict`` histogram
        a serial run would record.  When no sink is attached this is a
        few dict lookups and float adds — the zero-cost contract holds.
        """
        for entry in state.get("counters", []):
            if entry["value"]:
                self.counter(entry["name"], **entry["labels"]).inc(entry["value"])
        for entry in state.get("gauges", []):
            if entry["value"] is not None:
                self.gauge(entry["name"], **entry["labels"]).set(entry["value"])
        for entry in state.get("histograms", []):
            name = entry["name"]
            if span_prefix and name.startswith("span/"):
                name = f"span/{span_prefix}/{name[len('span/'):]}"
            histogram = self._intern(
                Histogram,
                name,
                entry["labels"],
                reservoir_size=entry.get("reservoir_size", 1024),
            )
            histogram.merge_state(entry)
        if self._tracer is not None:
            for trace in state.get("traces", []):
                self._tracer.absorb(trace, span_prefix=span_prefix)

    def snapshot(self) -> dict[str, dict]:
        """Aggregate state as plain dicts, keyed by flat metric key.

        ``spans`` carries the duration histograms recorded by
        :meth:`span` (name is the full slash path, without the
        ``span/`` prefix used internally to avoid collisions).
        """
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}
        for metric in self._metrics.values():
            if isinstance(metric, Counter):
                out["counters"][metric.key] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][metric.key] = metric.value
            elif isinstance(metric, Histogram):
                if metric.name.startswith("span/"):
                    key = format_metric_key(metric.name[len("span/") :], metric.labels)
                    out["spans"][key] = metric.summary()
                else:
                    out["histograms"][metric.key] = metric.summary()
        return out


# -- ambient registry ----------------------------------------------------
_ambient = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry instrumented code writes to."""
    return _ambient


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as ambient; returns the previous one."""
    global _ambient
    previous = _ambient
    _ambient = registry
    return previous


@contextmanager
def using_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the ambient registry to a ``with`` block (test-friendly)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
