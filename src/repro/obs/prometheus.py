"""Prometheus text exposition for registry snapshots.

:func:`render_prometheus` maps a
:meth:`~repro.obs.registry.MetricsRegistry.snapshot` onto the
Prometheus text format (version 0.0.4): counters become ``_total``
counters, gauges stay gauges, and histograms — whose reservoir gives
quantiles, not fixed buckets — are exposed as *summaries* with
``quantile`` labels plus ``_sum``/``_count``.  Span histograms all fold
into one ``<prefix>_span_duration_seconds`` family labelled by their
slash path, so dashboards can select phases without per-path metric
names.

The service control plane serves this at
``GET /metrics?format=prometheus``; everything is stdlib string
building, no client library involved.
"""

from __future__ import annotations

import math
import re

from .report import _parse_metric_key

__all__ = ["render_prometheus", "parse_exposition", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, prefix: str) -> str:
    name = _NAME_OK.sub("_", name)
    if prefix:
        name = f"{prefix}_{name}"
    if name and name[0].isdigit():
        name = f"_{name}"
    return name


def _label_pairs(labels: dict) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        label = _LABEL_OK.sub("_", str(key))
        value = (
            str(labels[key])
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{label}="{value}"')
    return "{" + ",".join(parts) + "}"


def _number(value) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _summary_lines(
    name: str, labels: dict, summary: dict, lines: list[str]
) -> None:
    quantiles = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))
    for q, key in quantiles:
        value = summary.get(key)
        if value is None:
            # Empty reservoir (e.g. merged moments without samples):
            # quantiles are unknowable, sum/count below still hold.
            continue
        lines.append(
            f"{name}{_label_pairs({**labels, 'quantile': q})} {_number(value)}"
        )
    lines.append(f"{name}_sum{_label_pairs(labels)} {_number(summary.get('sum', 0.0))}")
    lines.append(f"{name}_count{_label_pairs(labels)} {int(summary.get('count', 0))}")


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a registry snapshot as Prometheus exposition text."""
    lines: list[str] = []

    families: dict[str, list[tuple[dict, float]]] = {}
    for key, value in snapshot.get("counters", {}).items():
        name, labels = _parse_metric_key(key)
        families.setdefault(name, []).append((labels, value))
    for name in sorted(families):
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        for labels, value in families[name]:
            lines.append(f"{metric}{_label_pairs(labels)} {_number(value)}")

    families = {}
    for key, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        name, labels = _parse_metric_key(key)
        families.setdefault(name, []).append((labels, value))
    for name in sorted(families):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in families[name]:
            lines.append(f"{metric}{_label_pairs(labels)} {_number(value)}")

    summaries: dict[str, list[tuple[dict, dict]]] = {}
    for key, summary in snapshot.get("histograms", {}).items():
        name, labels = _parse_metric_key(key)
        summaries.setdefault(name, []).append((labels, summary))
    for name in sorted(summaries):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for labels, summary in summaries[name]:
            _summary_lines(metric, labels, summary, lines)

    spans = snapshot.get("spans", {})
    if spans:
        metric = _metric_name("span_duration_seconds", prefix)
        lines.append(f"# TYPE {metric} summary")
        for key in sorted(spans):
            path, labels = _parse_metric_key(key)
            _summary_lines(metric, {"path": path, **labels}, spans[key], lines)

    return "\n".join(lines) + "\n" if lines else ""


def parse_exposition(text: str) -> dict[str, dict[str, float]]:
    """Parse exposition text back into ``{metric: {labelset: value}}``.

    A deliberately small validator — used by tests and the CI smoke
    script to prove the rendered output is well-formed, not a full
    client.  Raises ``ValueError`` on any malformed line.
    """
    sample_re = re.compile(
        r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(?P<labels>\{[^}]*\})?"
        r" (?P<value>[^ ]+)$"
    )
    out: dict[str, dict[str, float]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("#"):
            if line.startswith("#") and not line.startswith(("# TYPE ", "# HELP ")):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            continue
        match = sample_re.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        raw = match.group("value")
        if raw in ("+Inf", "-Inf", "NaN"):
            value = float(raw.replace("Inf", "inf").replace("NaN", "nan"))
        else:
            value = float(raw)  # raises ValueError on garbage
        out.setdefault(match.group("name"), {})[
            match.group("labels") or ""
        ] = value
    return out
