"""Disaggregated cloud-database cluster simulator.

Substitutes for the production environment behind the paper's
experiments: an event-driven cluster where compute nodes attach to
shared storage with seconds-scale warm-up (Figure 5), on which scaling
plans are replayed against actual workload traces.
"""

from .cluster import DisaggregatedCluster
from .engine import Event, EventQueue, Simulation
from .node import ComputeNode, NodeState
from .qos import MMcQueue, QoSReport, evaluate_qos
from .replay import IntervalOutcome, ReplayResult, replay_plan
from .storage import SharedStorage

__all__ = [
    "Simulation",
    "Event",
    "EventQueue",
    "SharedStorage",
    "ComputeNode",
    "NodeState",
    "DisaggregatedCluster",
    "replay_plan",
    "ReplayResult",
    "IntervalOutcome",
    "MMcQueue",
    "QoSReport",
    "evaluate_qos",
]
