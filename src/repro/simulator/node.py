"""Compute-node lifecycle for the disaggregated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["NodeState", "ComputeNode"]


class NodeState(Enum):
    """Lifecycle of a compute node attached to shared storage."""

    WARMING = "warming"  # attached, rebuilding in-memory components
    ACTIVE = "active"  # serving queries
    RELEASED = "released"  # detached and returned to the pool


@dataclass
class ComputeNode:
    """One compute node.

    Tracks the timestamps of its lifecycle transitions so the cluster
    can account node-seconds and warm-up overlap exactly.
    """

    node_id: int
    attached_at: float
    warmup_seconds: float
    state: NodeState = NodeState.WARMING
    released_at: float | None = field(default=None)

    @property
    def active_at(self) -> float:
        """Instant this node finished warming and began serving."""
        return self.attached_at + self.warmup_seconds

    def activate(self, now: float) -> None:
        if self.state is not NodeState.WARMING:
            raise RuntimeError(f"node {self.node_id} cannot activate from {self.state}")
        if now + 1e-9 < self.active_at:
            raise RuntimeError(
                f"node {self.node_id} warm-up not complete at t={now} "
                f"(ready at {self.active_at})"
            )
        self.state = NodeState.ACTIVE

    def release(self, now: float) -> None:
        if self.state is NodeState.RELEASED:
            raise RuntimeError(f"node {self.node_id} already released")
        self.state = NodeState.RELEASED
        self.released_at = now

    def is_serving(self, now: float) -> bool:
        """Whether the node can take queries at instant ``now``."""
        if self.state is NodeState.RELEASED:
            return False
        return now + 1e-9 >= self.active_at

    def node_seconds(self, until: float) -> float:
        """Billed seconds (attach to release/``until``) — warm-up bills too."""
        end = self.released_at if self.released_at is not None else until
        return max(0.0, min(end, until) - self.attached_at)

    def serving_seconds(self, start: float, stop: float) -> float:
        """Seconds within [start, stop) during which this node served.

        The serving window is [active_at, released_at); a node released
        while warming never serves.
        """
        serve_start = self.active_at
        serve_stop = self.released_at if self.released_at is not None else float("inf")
        if serve_stop <= serve_start:
            return 0.0
        return max(0.0, min(stop, serve_stop) - max(start, serve_start))
