"""Replay a scaling plan against an actual workload on the simulator.

This closes the loop the paper's evaluation implies: the plan's node
counts are enacted as scale operations on a :class:`DisaggregatedCluster`
(with real warm-up delays), the actual utilization trace is applied, and
per-interval outcomes are recorded — including violations that exist
*only* because a freshly added node was still warming.

At the paper's 10-minute intervals the warm-up effect is negligible
(their justification for ignoring scaling overhead); the Fig. 5 bench
quantifies that claim by shrinking the interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core.plan import ScalingPlan
from ..obs import get_registry
from .cluster import DisaggregatedCluster
from .engine import Simulation
from .storage import SharedStorage

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.schedule import FaultSchedule

__all__ = ["IntervalOutcome", "ReplayResult", "replay_plan"]


@dataclass(frozen=True)
class IntervalOutcome:
    """What happened in one interval of the replay.

    ``effective_nodes`` is the time-weighted serving capacity over the
    interval (a node that spent the first 4 of 600 seconds warming
    contributes 596/600); per-node workload is measured against it, so
    warm-up matters exactly in proportion to the interval length — the
    quantity behind the paper's "negligible at tens of minutes" claim.
    """

    index: int
    target_nodes: int
    serving_nodes_start: int
    effective_nodes: float
    workload: float
    per_node_workload: float
    violated: bool
    warmup_limited: bool  # violation would vanish with all targets serving


@dataclass
class ReplayResult:
    """Aggregate of a full plan replay."""

    outcomes: list[IntervalOutcome] = field(default_factory=list)
    total_node_seconds: float = 0.0
    scale_out_events: int = 0
    scale_in_events: int = 0
    total_attaches: int = 0
    # Actuation faults observed during the replay (all zero without a
    # fault schedule): node_failures counts abrupt crashes,
    # provision/warmup failures count rejected attaches and wedged
    # warm-ups, failures is their total.
    failures: int = 0
    node_failures: int = 0
    provision_failures: int = 0
    warmup_failures: int = 0

    @property
    def violation_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.violated for o in self.outcomes) / len(self.outcomes)

    @property
    def warmup_limited_violations(self) -> int:
        return sum(o.warmup_limited for o in self.outcomes)


def replay_plan(
    plan: ScalingPlan,
    actual_workload: np.ndarray,
    interval_seconds: float = 600.0,
    storage: SharedStorage | None = None,
    initial_nodes: int | None = None,
    faults: "FaultSchedule | None" = None,
) -> ReplayResult:
    """Execute ``plan`` on a simulated cluster under ``actual_workload``.

    Each interval: the cluster is scaled to the plan's target at the
    interval boundary, the interval's workload arrives, and per-node
    load is measured against the plan's threshold using the
    *time-weighted* number of serving nodes over the interval (warming
    nodes contribute only the portion of the interval after their
    warm-up completes).

    Parameters
    ----------
    initial_nodes:
        Pre-warmed nodes at t=0; defaults to the plan's first target
        (steady-state start).
    faults:
        Optional :class:`~repro.faults.schedule.FaultSchedule`; its
        cluster-layer events fire during the replay — ``node_crash``
        kills a serving node at that interval's boundary (the control
        plane auto-replaces it), ``provision_fail`` / ``warmup_stall``
        / ``warmup_fail`` degrade the attaches attempted then.
    """
    actual_workload = np.asarray(actual_workload, dtype=np.float64)
    if actual_workload.shape != plan.nodes.shape:
        raise ValueError("workload and plan horizons differ")
    if interval_seconds <= 0:
        raise ValueError("interval_seconds must be positive")

    injector = None
    if faults is not None:
        from ..faults.cluster import ClusterFaultInjector

        injector = ClusterFaultInjector(faults, interval_seconds=interval_seconds)
    storage = storage if storage is not None else SharedStorage()
    simulation = Simulation()
    start_nodes = initial_nodes if initial_nodes is not None else int(plan.nodes[0])
    cluster = DisaggregatedCluster(
        simulation, storage, initial_nodes=start_nodes, fault_injector=injector
    )
    threshold = np.broadcast_to(
        np.asarray(plan.threshold, dtype=np.float64), actual_workload.shape
    )

    metrics = get_registry()
    result = ReplayResult()
    for index, (target, workload) in enumerate(zip(plan.nodes, actual_workload)):
        interval_start = simulation.now
        cluster.scale_to(int(target))
        if injector is not None:
            for _ in range(injector.crashes_at(index)):
                if cluster.serving_nodes() == 0:
                    break  # nothing left to kill this interval
                cluster.fail_node(replace=True)
        serving_start = cluster.serving_nodes()
        simulation.run(until=interval_start + interval_seconds)
        interval_stop = simulation.now
        serving_seconds = sum(
            node.serving_seconds(interval_start, interval_stop)
            for node in cluster.nodes
        )
        effective = max(serving_seconds / interval_seconds, 1e-9)
        per_node = workload / effective
        violated = per_node > threshold[index] + 1e-12
        # Would the violation clear with every target node serving fully?
        warmup_limited = violated and (
            workload / max(int(target), 1) <= threshold[index] + 1e-12
        )
        metrics.counter("simulator.intervals").inc()
        if violated:
            metrics.counter("simulator.qos_violations").inc()
            if warmup_limited:
                metrics.counter("simulator.warmup_limited_violations").inc()
        result.outcomes.append(
            IntervalOutcome(
                index=index,
                target_nodes=int(target),
                serving_nodes_start=serving_start,
                effective_nodes=float(effective),
                workload=float(workload),
                per_node_workload=float(per_node),
                violated=bool(violated),
                warmup_limited=bool(warmup_limited),
            )
        )

    result.total_node_seconds = cluster.total_node_seconds()
    result.scale_out_events = cluster.scale_out_events
    result.scale_in_events = cluster.scale_in_events
    result.total_attaches = storage.total_attaches
    result.failures = cluster.failures
    result.node_failures = cluster.node_crashes
    result.provision_failures = cluster.provision_failures
    result.warmup_failures = cluster.warmup_failures
    return result
