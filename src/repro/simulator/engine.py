"""Minimal discrete-event simulation engine.

The cluster simulator is event-driven: node warm-up completions, scale
decisions, and interval boundaries are all events on one priority queue.
Events scheduled for the same instant fire in scheduling order (a
monotonically increasing sequence number breaks ties), which keeps runs
fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventQueue", "Simulation"]


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, sequence)."""

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class EventQueue:
    """Priority queue of events with stable same-time ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        event = Event(time=time, sequence=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulation:
    """Event loop with a monotonic clock.

    Time never moves backwards; scheduling an event in the past raises,
    which catches double-firing bugs early instead of silently
    reordering history.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._queue = EventQueue()
        self.processed_events = 0

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s in the past")
        return self._queue.push(self.now + delay, action, label)

    def schedule_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now ({self.now})")
        return self._queue.push(time, action, label)

    def run(self, until: float | None = None) -> None:
        """Process events in order, optionally stopping at time ``until``.

        Stopping advances the clock to ``until`` even if the queue still
        holds later events, so interleaved ``run(until=...)`` calls
        behave like a paused simulation.  Processed events are counted
        into the ambient metrics registry, grouped by the prefix of
        their :attr:`Event.label` (the part before the first ``-``), so
        a telemetry stream shows e.g. how many ``warmup`` events fired.
        """
        from ..obs import get_registry

        metrics = get_registry()
        while self._queue:
            event = self._queue.pop()
            if until is not None and event.time > until:
                # Put it back; we are pausing, not discarding.
                heapq.heappush(self._queue._heap, event)
                break
            self.now = event.time
            event.action()
            self.processed_events += 1
            prefix = event.label.split("-", 1)[0] if event.label else "unlabeled"
            metrics.counter("simulator.events", label=prefix).inc()
        if until is not None and self.now < until:
            self.now = until
