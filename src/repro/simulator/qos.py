"""Quality-of-service estimation on top of provisioning decisions.

Section V-B of the paper deliberately stops at resource thresholds and
leaves QoS modelling ("performance modeling is a promising approach") to
future work.  This module implements that extension: an M/M/c queueing
model maps (aggregate workload, allocated nodes) to query-latency
estimates, so scaling strategies can additionally be scored against a
latency SLO — e.g. "p99 response time below 50 ms".

Model
-----
Aggregate workload ``w`` (percent-of-one-node units, as produced by the
trace generators) is interpreted as offered load ``a = w / 100`` Erlangs:
a workload of 300 keeps three nodes fully busy.  Each of the ``c``
allocated nodes serves queries at rate ``mu`` (queries/second), so the
arrival rate is ``lambda = a * mu``.  Standard M/M/c results then give
the Erlang-C waiting probability, waiting-time distribution and response
times.  The exponential waiting-tail is exact for M/M/c; response-time
quantiles use wait quantile + mean service time, a standard and slightly
conservative approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.plan import ScalingPlan

__all__ = ["MMcQueue", "QoSReport", "evaluate_qos"]


@dataclass(frozen=True)
class MMcQueue:
    """An M/M/c queue in steady state.

    Parameters
    ----------
    arrival_rate:
        lambda, queries per second across the cluster.
    service_rate:
        mu, queries per second a single node can serve.
    servers:
        c, the number of allocated nodes.
    """

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        if self.arrival_rate < 0 or self.service_rate <= 0 or self.servers < 1:
            raise ValueError("invalid queue parameters")

    @property
    def offered_load(self) -> float:
        """a = lambda / mu, in Erlangs."""
        return self.arrival_rate / self.service_rate

    @property
    def utilization(self) -> float:
        """rho = a / c; >= 1 means the queue is unstable."""
        return self.offered_load / self.servers

    @property
    def is_stable(self) -> bool:
        return self.utilization < 1.0

    def erlang_c(self) -> float:
        """Probability an arriving query must wait (Erlang-C formula).

        Computed with a numerically stable iterative scheme (no explicit
        factorials), valid for hundreds of servers.
        """
        if not self.is_stable:
            return 1.0
        a, c = self.offered_load, self.servers
        if a == 0.0:
            return 0.0
        # inverse of Erlang-B via the standard recurrence, then convert.
        inv_b = 1.0
        for k in range(1, c + 1):
            inv_b = 1.0 + inv_b * k / a
        b = 1.0 / inv_b
        rho = self.utilization
        return b / (1.0 - rho + rho * b)

    def mean_wait(self) -> float:
        """Expected queueing delay W_q in seconds (inf if unstable)."""
        if not self.is_stable:
            return math.inf
        c, mu = self.servers, self.service_rate
        return self.erlang_c() / (c * mu - self.arrival_rate)

    def mean_response(self) -> float:
        """Expected response time W = W_q + 1/mu."""
        return self.mean_wait() + 1.0 / self.service_rate

    def wait_quantile(self, q: float) -> float:
        """Quantile of the waiting-time distribution.

        P(W_q > t) = C * exp(-(c mu - lambda) t) with C the Erlang-C
        probability, so the q-quantile is 0 when q <= 1 - C and
        logarithmic otherwise.
        """
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if not self.is_stable:
            return math.inf
        c_prob = self.erlang_c()
        tail = 1.0 - q
        if tail >= c_prob:
            return 0.0
        rate = self.servers * self.service_rate - self.arrival_rate
        return math.log(c_prob / tail) / rate

    def response_quantile(self, q: float) -> float:
        """Approximate response-time quantile: wait quantile + mean service."""
        wait = self.wait_quantile(q)
        return wait + 1.0 / self.service_rate if math.isfinite(wait) else math.inf


@dataclass
class QoSReport:
    """Latency outcomes of a plan replayed under a latency SLO."""

    slo_seconds: float
    mean_response: list[float] = field(default_factory=list)
    p99_response: list[float] = field(default_factory=list)
    unstable_intervals: int = 0

    @property
    def slo_violation_rate(self) -> float:
        """Fraction of intervals whose p99 response exceeds the SLO."""
        if not self.p99_response:
            return 0.0
        violations = sum(
            1 for p99 in self.p99_response if not p99 <= self.slo_seconds
        )
        return violations / len(self.p99_response)

    @property
    def mean_p99(self) -> float:
        """Mean p99 over stable intervals (inf-free summary)."""
        finite = [p for p in self.p99_response if math.isfinite(p)]
        return float(np.mean(finite)) if finite else math.inf


def evaluate_qos(
    plan: ScalingPlan,
    actual_workload: np.ndarray,
    service_rate: float = 100.0,
    slo_seconds: float = 0.05,
    percent_per_node: float = 100.0,
) -> QoSReport:
    """Score a plan's latency under the M/M/c model, interval by interval.

    Parameters
    ----------
    service_rate:
        mu — queries/second per node (default 100/s).
    slo_seconds:
        p99 response-time target.
    percent_per_node:
        Workload units corresponding to one fully-busy node (100 for the
        percent-CPU traces in this repository).
    """
    actual_workload = np.asarray(actual_workload, dtype=np.float64)
    if actual_workload.shape != plan.nodes.shape:
        raise ValueError("workload and plan horizons differ")
    report = QoSReport(slo_seconds=slo_seconds)
    for nodes, workload in zip(plan.nodes, actual_workload):
        offered = workload / percent_per_node
        queue = MMcQueue(
            arrival_rate=offered * service_rate,
            service_rate=service_rate,
            servers=int(nodes),
        )
        if not queue.is_stable:
            report.unstable_intervals += 1
        report.mean_response.append(queue.mean_response())
        report.p99_response.append(queue.response_quantile(0.99))
    return report
