"""The disaggregated database cluster (Figure 4).

Compute nodes attach to a :class:`SharedStorage` pool and begin serving
after a seconds-scale warm-up; scale-in detaches nodes instantly (their
in-flight work drains within the same instant at this model's
granularity).  The cluster exposes exactly what the auto-scaling problem
needs: how many nodes are *serving* at a given time and the node-seconds
consumed.

Actuation is allowed to fail: pass a
:class:`~repro.faults.cluster.ClusterFaultInjector` (any object with
``provision_fails``/``warmup_multiplier``/``warmup_fails`` hooks) and
attach requests can be rejected, warm-ups stalled, or warm-ups wedged
outright — on top of the abrupt :meth:`DisaggregatedCluster.fail_node`
crashes.  Every fault of any kind increments :attr:`failures`, with
per-kind splits on :attr:`node_crashes`, :attr:`provision_failures`,
and :attr:`warmup_failures` (mirrored to the ``simulator.node_failures``
/ ``simulator.provision_failures`` / ``simulator.warmup_failures``
counters).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs import get_registry
from .engine import Simulation
from .node import ComputeNode, NodeState
from .storage import SharedStorage

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.cluster import ClusterFaultInjector

__all__ = ["DisaggregatedCluster"]


class DisaggregatedCluster:
    """A pool of compute nodes over shared storage.

    Parameters
    ----------
    simulation:
        The event engine driving time.
    storage:
        Shared storage pool (supplies warm-up durations).
    initial_nodes:
        Nodes serving at t=0 (pre-warmed).
    fault_injector:
        Optional actuation-fault source (see
        :class:`~repro.faults.cluster.ClusterFaultInjector`); ``None``
        means every attach succeeds and every warm-up completes.
    """

    def __init__(
        self,
        simulation: Simulation,
        storage: SharedStorage,
        initial_nodes: int = 1,
        fault_injector: "ClusterFaultInjector | None" = None,
    ) -> None:
        if initial_nodes < 1:
            raise ValueError("cluster needs at least one initial node")
        self.simulation = simulation
        self.storage = storage
        self.fault_injector = fault_injector
        self._nodes: list[ComputeNode] = []
        self._next_id = 0
        self.scale_out_events = 0
        self.scale_in_events = 0
        #: Total faults of every kind (crashes + provisioning + warm-up).
        self.failures = 0
        self.node_crashes = 0
        self.provision_failures = 0
        self.warmup_failures = 0
        for _ in range(initial_nodes):
            node = ComputeNode(
                node_id=self._next_id, attached_at=simulation.now, warmup_seconds=0.0
            )
            node.state = NodeState.ACTIVE
            self._nodes.append(node)
            self._next_id += 1

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[ComputeNode]:
        return list(self._nodes)

    def serving_nodes(self) -> int:
        """Nodes able to take queries right now."""
        now = self.simulation.now
        return sum(1 for node in self._nodes if node.is_serving(now))

    def attached_nodes(self) -> int:
        """Nodes attached (serving or warming) — what gets billed."""
        return sum(1 for node in self._nodes if node.state is not NodeState.RELEASED)

    # ------------------------------------------------------------------
    def scale_to(self, target: int) -> None:
        """Scale out/in so that ``target`` nodes are (or will be) attached.

        Scale-out attaches new nodes which serve only after warm-up;
        scale-in releases the most recently attached nodes first
        (LIFO — the coldest caches go first).
        """
        if target < 1:
            raise ValueError("target must be >= 1")
        current = self.attached_nodes()
        if target > current:
            for _ in range(target - current):
                self._attach_node()
            self.scale_out_events += 1
            get_registry().counter("simulator.scale_events", direction="out").inc()
        elif target < current:
            self._release_nodes(current - target)
            self.scale_in_events += 1
            get_registry().counter("simulator.scale_events", direction="in").inc()

    def _attach_node(self) -> "ComputeNode | None":
        now = self.simulation.now
        injector = self.fault_injector
        metrics = get_registry()
        if injector is not None and injector.provision_fails(now):
            # The control plane rejected the attach (capacity shortage,
            # API failure).  The cluster stays short; the next scale_to
            # sees the shortfall and retries.
            self.failures += 1
            self.provision_failures += 1
            metrics.counter("simulator.provision_failures").inc()
            return None
        warmup = self.storage.warmup_seconds()
        fails_warmup = False
        if injector is not None:
            warmup *= injector.warmup_multiplier(now)
            fails_warmup = injector.warmup_fails(now)
        node = ComputeNode(
            node_id=self._next_id,
            attached_at=now,
            warmup_seconds=warmup,
        )
        self._next_id += 1
        self._nodes.append(node)

        metrics.counter("simulator.node_attaches").inc()
        metrics.histogram("simulator.warmup_seconds").observe(warmup)

        def finish_warmup(n: ComputeNode = node, fails: bool = fails_warmup) -> None:
            # A node released mid-warm-up never activates.
            if n.state is not NodeState.WARMING:
                return
            if fails:
                # Wedged rebuild: the node never serves, but it was
                # attached (and billed) until the failure is noticed.
                n.release(self.simulation.now)
                self.failures += 1
                self.warmup_failures += 1
                get_registry().counter("simulator.warmup_failures").inc()
                return
            n.activate(self.simulation.now)
            get_registry().counter("simulator.warmup_completions").inc()

        self.simulation.schedule(warmup, finish_warmup, label=f"warmup-{node.node_id}")
        return node

    def _release_nodes(self, count: int) -> None:
        alive = [n for n in self._nodes if n.state is not NodeState.RELEASED]
        if count >= len(alive):
            raise ValueError("cannot release every node")
        for node in sorted(alive, key=lambda n: n.attached_at, reverse=True)[:count]:
            node.release(self.simulation.now)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail_node(self, node_id: int | None = None, replace: bool = True) -> ComputeNode:
        """Abruptly lose a node (hardware failure / preemption).

        The failed node stops serving immediately.  With ``replace=True``
        (the realistic default — the control plane notices and re-attaches)
        a replacement starts warming right away, so the cluster serves
        one node short until the replacement's warm-up completes.

        Parameters
        ----------
        node_id:
            Specific node to kill; default kills the oldest serving node
            (the one with the warmest cache — worst case).

        Returns
        -------
        The failed node.
        """
        now = self.simulation.now
        serving = [n for n in self._nodes if n.is_serving(now)]
        if not serving:
            raise RuntimeError("no serving node to fail")
        if node_id is None:
            victim = min(serving, key=lambda n: n.attached_at)
        else:
            matches = [n for n in serving if n.node_id == node_id]
            if not matches:
                raise ValueError(f"node {node_id} is not serving")
            victim = matches[0]
        victim.release(now)
        self.failures += 1
        self.node_crashes += 1
        get_registry().counter("simulator.node_failures").inc()
        if replace:
            self._attach_node()
        return victim

    # ------------------------------------------------------------------
    def total_node_seconds(self) -> float:
        """Billed node-seconds up to the current simulation time."""
        now = self.simulation.now
        return sum(node.node_seconds(now) for node in self._nodes)
