"""Shared (disaggregated) storage layer.

In a storage-disaggregated database (Aurora, PolarDB Serverless, ...)
data lives in a shared pool; a new compute node does not migrate data —
it attaches to the pool and rebuilds its *in-memory* components (buffer
pool, dictionary caches) from checkpoints.  The paper's Figure 5 reports
that this warm-up "only takes a few seconds".

:class:`SharedStorage` models exactly that: warm-up latency is a small
fixed attach cost plus checkpoint size divided by rebuild bandwidth,
with optional jitter.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SharedStorage"]


class SharedStorage:
    """The storage pool every compute node attaches to.

    Parameters
    ----------
    checkpoint_gb:
        Size of the in-memory state rebuilt on attach.
    rebuild_bandwidth_gbps:
        Checkpoint read/replay throughput (GB/s).
    attach_latency_s:
        Fixed control-plane cost of registering a node with the pool.
    jitter_fraction:
        Uniform +/- fractional noise on each warm-up (0 disables).
    """

    def __init__(
        self,
        checkpoint_gb: float = 4.0,
        rebuild_bandwidth_gbps: float = 1.2,
        attach_latency_s: float = 0.8,
        jitter_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        if checkpoint_gb < 0 or rebuild_bandwidth_gbps <= 0 or attach_latency_s < 0:
            raise ValueError("invalid storage parameters")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.checkpoint_gb = checkpoint_gb
        self.rebuild_bandwidth_gbps = rebuild_bandwidth_gbps
        self.attach_latency_s = attach_latency_s
        self.jitter_fraction = jitter_fraction
        self._rng = np.random.default_rng(seed)
        self.total_attaches = 0

    def expected_warmup_seconds(self) -> float:
        """Deterministic warm-up time (no jitter) — Figure 5's quantity."""
        return self.attach_latency_s + self.checkpoint_gb / self.rebuild_bandwidth_gbps

    def warmup_seconds(self) -> float:
        """One sampled warm-up duration (with jitter)."""
        self.total_attaches += 1
        base = self.expected_warmup_seconds()
        if self.jitter_fraction == 0.0:
            return base
        factor = 1.0 + self._rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return base * factor
