"""Output distributions for probabilistic workload forecasting."""

from .base import Distribution
from .empirical import Empirical
from .gaussian import Gaussian
from .studentt import StudentT

__all__ = ["Distribution", "Gaussian", "StudentT", "Empirical"]
