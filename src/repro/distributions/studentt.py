"""Location-scale Student-t output distribution.

The paper chooses Student-t for the DeepAR head because "it has longer
tails and a larger variance, allowing it to better handle outliers and
noise" (Section III-B2).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from .base import Distribution

__all__ = ["StudentT"]


class StudentT(Distribution):
    """t_nu(mu, s): ``mu + s * T`` with T standard Student-t, nu = df."""

    def __init__(self, mu: np.ndarray, scale: np.ndarray, df: np.ndarray | float) -> None:
        self.mu = np.asarray(mu, dtype=np.float64)
        self.scale = np.asarray(scale, dtype=np.float64)
        self.df = np.asarray(df, dtype=np.float64)
        if np.any(self.scale <= 0):
            raise ValueError("scale must be strictly positive")
        if np.any(self.df <= 0):
            raise ValueError("degrees of freedom must be strictly positive")

    def mean(self) -> np.ndarray:
        # Undefined for df <= 1; return the location (mode) there.
        return np.broadcast_to(self.mu, np.broadcast_shapes(self.mu.shape, self.df.shape)).copy()

    def std(self) -> np.ndarray:
        # Finite only for df > 2; fall back to the scale otherwise so the
        # uncertainty signal stays usable.
        df = np.broadcast_to(self.df, np.broadcast_shapes(self.scale.shape, self.df.shape))
        scale = np.broadcast_to(self.scale, df.shape)
        with np.errstate(invalid="ignore", divide="ignore"):
            variance_factor = np.where(df > 2, df / (df - 2), 1.0)
        return scale * np.sqrt(variance_factor)

    def quantile(self, tau: float | np.ndarray) -> np.ndarray:
        return stats.t.ppf(tau, df=self.df, loc=self.mu, scale=self.scale)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        shape = np.broadcast_shapes(self.mu.shape, self.scale.shape, self.df.shape)
        standard = rng.standard_t(np.broadcast_to(self.df, (size, *shape)))
        return self.mu + self.scale * standard

    def log_prob(self, value: np.ndarray) -> np.ndarray:
        return stats.t.logpdf(value, df=self.df, loc=self.mu, scale=self.scale)

    def __repr__(self) -> str:
        return f"StudentT(mu.shape={self.mu.shape})"
