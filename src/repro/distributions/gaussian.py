"""Gaussian output distribution (used by the probabilistic MLP head)."""

from __future__ import annotations

import numpy as np
from scipy import stats

from .base import Distribution

__all__ = ["Gaussian"]


class Gaussian(Distribution):
    """N(mu, sigma^2), batched over arbitrary-shaped parameter arrays."""

    def __init__(self, mu: np.ndarray, sigma: np.ndarray) -> None:
        self.mu = np.asarray(mu, dtype=np.float64)
        self.sigma = np.asarray(sigma, dtype=np.float64)
        if np.any(self.sigma <= 0):
            raise ValueError("sigma must be strictly positive")

    def mean(self) -> np.ndarray:
        return self.mu

    def std(self) -> np.ndarray:
        return np.broadcast_to(self.sigma, self.mu.shape).copy()

    def quantile(self, tau: float | np.ndarray) -> np.ndarray:
        return stats.norm.ppf(tau, loc=self.mu, scale=self.sigma)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(self.mu, self.sigma, size=(size, *self.mu.shape))

    def log_prob(self, value: np.ndarray) -> np.ndarray:
        return stats.norm.logpdf(value, loc=self.mu, scale=self.sigma)

    def __repr__(self) -> str:
        return f"Gaussian(mu.shape={self.mu.shape})"
