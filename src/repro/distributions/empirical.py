"""Empirical distribution built from Monte-Carlo sample paths.

DeepAR produces quantile forecasts by ancestral sampling: draw many
trajectories from the learned model, then read quantiles off the sample
cloud per step (paper Section III-B2, "sampling methods").
"""

from __future__ import annotations

import numpy as np

from .base import Distribution

__all__ = ["Empirical"]


class Empirical(Distribution):
    """Distribution represented by samples along axis 0.

    ``samples`` has shape (num_samples, *batch); every statistic reduces
    over axis 0.
    """

    def __init__(self, samples: np.ndarray) -> None:
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim < 1 or samples.shape[0] < 2:
            raise ValueError("need at least 2 samples along axis 0")
        self.samples = samples

    @property
    def num_samples(self) -> int:
        return self.samples.shape[0]

    def mean(self) -> np.ndarray:
        return self.samples.mean(axis=0)

    def std(self) -> np.ndarray:
        return self.samples.std(axis=0, ddof=1)

    def quantile(self, tau: float | np.ndarray) -> np.ndarray:
        return np.quantile(self.samples, tau, axis=0)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        picks = rng.integers(0, self.num_samples, size=size)
        return self.samples[picks]

    def log_prob(self, value: np.ndarray) -> np.ndarray:
        """Gaussian kernel-density estimate of the log density.

        Bandwidth follows Silverman's rule of thumb per batch element.
        """
        value = np.asarray(value, dtype=np.float64)
        spread = self.samples.std(axis=0, ddof=1)
        bandwidth = np.maximum(1.06 * spread * self.num_samples ** (-0.2), 1e-9)
        z = (value[None, ...] - self.samples) / bandwidth
        kernel = np.exp(-0.5 * z**2) / np.sqrt(2.0 * np.pi)
        density = kernel.mean(axis=0) / bandwidth
        return np.log(np.maximum(density, 1e-300))

    def __repr__(self) -> str:
        return f"Empirical(num_samples={self.num_samples}, batch={self.samples.shape[1:]})"
