"""Distribution interface shared by the probabilistic forecasters.

A forecaster that learns a parametric distribution (paper Section III-B,
"Learn parametric distributions") emits one :class:`Distribution` per
forecast step; quantile forecasts are then read off via :meth:`quantile`
or estimated by sampling (the paper's route for DeepAR).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Distribution"]


class Distribution(ABC):
    """A (possibly batched) univariate probability distribution."""

    @abstractmethod
    def mean(self) -> np.ndarray:
        """Expected value."""

    @abstractmethod
    def std(self) -> np.ndarray:
        """Standard deviation (a direct uncertainty measure, Section III-C2)."""

    @abstractmethod
    def quantile(self, tau: float | np.ndarray) -> np.ndarray:
        """Inverse CDF at level ``tau``."""

    @abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` samples per batch element; shape (size, *batch)."""

    @abstractmethod
    def log_prob(self, value: np.ndarray) -> np.ndarray:
        """Log density at ``value``."""

    def quantiles(self, levels: list[float]) -> np.ndarray:
        """Stack quantiles for several levels; shape (len(levels), *batch)."""
        return np.stack([self.quantile(tau) for tau in levels])
