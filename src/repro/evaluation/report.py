"""Structured evaluation reports matching the paper's Table I columns."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .metrics import (
    coverage,
    mean_weighted_quantile_loss,
    mse,
    weighted_quantile_loss,
)

__all__ = ["ForecastReport", "evaluate_quantile_forecast", "format_table"]

# The paper reports wQL and Coverage at these levels in Table I.
REPORTED_LEVELS = (0.7, 0.8, 0.9)


@dataclass
class ForecastReport:
    """One row of Table I: all metrics for one model on one dataset."""

    model: str
    dataset: str
    mean_wql: float
    wql: dict[float, float] = field(default_factory=dict)
    coverage: dict[float, float] = field(default_factory=dict)
    mse: float = float("nan")

    def as_row(self) -> list[str]:
        """Render the Table I row (model, mean_wQL, wQL@levels, coverage@levels, MSE)."""
        cells = [self.model, f"{self.mean_wql:.4f}"]
        cells += [f"{self.wql.get(tau, float('nan')):.4f}" for tau in REPORTED_LEVELS]
        cells += [f"{self.coverage.get(tau, float('nan')):.3f}" for tau in REPORTED_LEVELS]
        cells.append(f"{self.mse:.1f}")
        return cells


def evaluate_quantile_forecast(
    model: str,
    dataset: str,
    target: np.ndarray,
    quantile_forecasts: dict[float, np.ndarray],
    point_forecast: np.ndarray | None = None,
) -> ForecastReport:
    """Compute every Table I metric for one forecast.

    ``point_forecast`` defaults to the mean across the supplied quantile
    forecasts, mirroring the paper: "we derive the mean value from the
    forecast obtained at the predefined quantiles and utilize it as the
    point prediction."
    """
    if point_forecast is None:
        point_forecast = np.mean(np.stack(list(quantile_forecasts.values())), axis=0)
    wql = {
        tau: weighted_quantile_loss(target, forecast, tau)
        for tau, forecast in quantile_forecasts.items()
        if tau in REPORTED_LEVELS
    }
    cov = {
        tau: coverage(target, forecast)
        for tau, forecast in quantile_forecasts.items()
        if tau in REPORTED_LEVELS
    }
    return ForecastReport(
        model=model,
        dataset=dataset,
        mean_wql=mean_weighted_quantile_loss(target, quantile_forecasts),
        wql=wql,
        coverage=cov,
        mse=mse(target, point_forecast),
    )


def format_table(reports: list[ForecastReport], title: str = "") -> str:
    """Render reports as an aligned text table (one paper Table I block)."""
    header = (
        ["Model", "mean_wQL"]
        + [f"wQL[{tau}]" for tau in REPORTED_LEVELS]
        + [f"Cov[{tau}]" for tau in REPORTED_LEVELS]
        + ["MSE"]
    )
    rows = [header] + [report.as_row() for report in reports]
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    for row in rows:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
