"""Chaos harness: score the closed loop under injected faults.

:func:`chaos_run` drives the same closed-loop protocol as the
``evaluate`` CLI command twice — once clean, once with a
:class:`~repro.faults.schedule.FaultSchedule` wired into all three
injection layers — and reports the damage as a
:class:`ChaosReport`:

* the **telemetry layer** corrupts the observation feed before the
  runtime sees it (the runtime imputes or rejects the bad samples);
* the **planner layer** wraps the planner in a
  :class:`~repro.faults.planner.FlakyPlanner` (the runtime degrades to
  its reactive fallback when planning fails);
* the **cluster layer** fires actuation faults during the replay of the
  committed allocations (failed provisioning, stalled or wedged
  warm-ups, node crashes).

Violations are always measured against the *true* workload — corrupted
telemetry changes what the loop believes, not what it must serve.

With ``check_determinism=True`` (the default) the faulted run is
executed twice and the report's :attr:`~ChaosReport.deterministic` flag
asserts the two runs were bit-identical — the property that makes a
chaos failure reproducible from ``(workload, fault schedule)`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.plan import Planner, ScalingPlan
from ..core.runtime import AutoscalingRuntime
from ..faults import FaultSchedule, FlakyPlanner, corrupt_series
from ..simulator import ReplayResult, replay_plan

__all__ = ["ChaosReport", "chaos_run", "format_chaos_report"]

# Sampler seed for stochastic forecasters (DeepAR): both the baseline
# and every faulted repetition reseed from this constant so a run is a
# pure function of (workload, fault schedule).
_CHAOS_SEED = 0xC7A05


@dataclass(frozen=True)
class ChaosReport:
    """What a fault schedule did to one closed-loop run."""

    intervals: int
    fault_counts: dict = field(default_factory=dict)  # scheduled, per kind
    telemetry_faults: dict = field(default_factory=dict)  # injected, per kind
    planner_faults: int = 0
    # QoS, clean vs faulted (both replayed against the true workload).
    baseline_violation_rate: float = 0.0
    faulted_violation_rate: float = 0.0
    baseline_node_steps: int = 0
    faulted_node_steps: int = 0
    # How the runtime coped.
    invalid_observations: int = 0
    planner_errors: int = 0
    degraded_intervals: int = 0
    decisions_by_source: dict = field(default_factory=dict)
    # Actuation damage during the faulted replay.
    node_failures: int = 0
    provision_failures: int = 0
    warmup_failures: int = 0
    # Same-schedule repeat produced bit-identical results (None if the
    # check was skipped).
    deterministic: "bool | None" = None
    # Model health during the faulted run (zero unless a monitor_factory
    # was supplied).
    monitored: bool = False
    monitor_windows: int = 0
    drift_events: int = 0
    alerts_fired: int = 0
    # Latest SLO error-budget status from the faulted run (empty unless
    # the monitor carries an SLOTracker).
    slo_status: list = field(default_factory=list)

    @property
    def violation_regression(self) -> float:
        """Extra violation rate attributable to the faults."""
        return self.faulted_violation_rate - self.baseline_violation_rate

    @property
    def node_step_overhead(self) -> float:
        """Relative extra capacity the faulted run provisioned."""
        if self.baseline_node_steps == 0:
            return 0.0
        return (
            self.faulted_node_steps - self.baseline_node_steps
        ) / self.baseline_node_steps


def _reseed(planner: Planner) -> None:
    """Reseed a stochastic forecaster so repeats are bit-identical."""
    for owner in (planner, getattr(planner, "forecaster", None)):
        reseed = getattr(owner, "reseed_sampler", None)
        if reseed is not None:
            reseed(_CHAOS_SEED)
            return


def _closed_loop(
    planner: Planner,
    observed: np.ndarray,
    true_workload: np.ndarray,
    *,
    context_length: int,
    horizon: int,
    threshold: float,
    replan_every: "int | None",
    invalid_policy: str,
    max_plan_retries: int,
    start_index: int,
    interval_seconds: float,
    faults: "FaultSchedule | None",
    monitor_factory: "Callable[[], object] | None" = None,
) -> tuple[AutoscalingRuntime, np.ndarray, ReplayResult]:
    """One full loop: observe ``observed``, get judged on ``true_workload``."""
    _reseed(planner)
    runtime = AutoscalingRuntime(
        planner=planner,
        context_length=context_length,
        horizon=horizon,
        threshold=threshold,
        replan_every=replan_every,
        start_tick=start_index,
        invalid_policy=invalid_policy,
        on_planner_error="degrade",
        max_plan_retries=max_plan_retries,
    )
    if monitor_factory is not None:
        # A fresh monitor per run: the baseline and every faulted
        # repetition must start from identical (empty) health state or
        # the determinism check would compare different universes.
        runtime.monitor = monitor_factory()
    allocations = runtime.run(observed)
    committed = ScalingPlan(
        nodes=allocations, threshold=threshold, strategy=runtime.planner.name
    )
    replay = replay_plan(
        committed,
        true_workload,
        interval_seconds=interval_seconds,
        faults=faults,
    )
    return runtime, allocations, replay


def chaos_run(
    planner_factory: Callable[[], Planner],
    workload: np.ndarray,
    *,
    context_length: int,
    horizon: int,
    threshold: float,
    faults: FaultSchedule,
    interval_seconds: float = 600.0,
    replan_every: "int | None" = None,
    invalid_policy: str = "impute",
    max_plan_retries: int = 1,
    start_index: int = 0,
    check_determinism: bool = True,
    monitor_factory: "Callable[[], object] | None" = None,
) -> ChaosReport:
    """Run the closed loop clean and faulted; report the difference.

    Parameters
    ----------
    planner_factory:
        Zero-argument callable returning a (fitted) planner.  Called
        once per run so the baseline and each faulted repetition start
        from identical planner state; returning the *same* object is
        fine when the planner is stateless across runs (stochastic
        forecasters are reseeded before every run).
    workload:
        The true workload series; fault times in ``faults`` are indices
        into this array.
    faults:
        The fault schedule, applied at all three layers.
    invalid_policy:
        Passed to the runtime (``"impute"`` by default — a chaos run is
        about surviving; use :func:`~repro.core.runtime.AutoscalingRuntime`
        directly to study fail-fast behaviour).
    start_index:
        Absolute series index of ``workload[0]`` (e.g. ``len(train)``),
        forwarded to the planner; fault times stay workload-relative.
    check_determinism:
        Repeat the faulted run and verify bit-identical allocations and
        outcomes.
    monitor_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.obs.monitor.ModelHealthMonitor`; attached to
        every run (each run gets its own, preserving determinism).  The
        faulted run's window/drift/alert counts land in the report.
    """
    workload = np.asarray(workload, dtype=np.float64)
    loop = dict(
        context_length=context_length,
        horizon=horizon,
        threshold=threshold,
        replan_every=replan_every,
        invalid_policy=invalid_policy,
        max_plan_retries=max_plan_retries,
        start_index=start_index,
        interval_seconds=interval_seconds,
        monitor_factory=monitor_factory,
    )

    _, base_alloc, base_replay = _closed_loop(
        planner_factory(), workload, workload, faults=None, **loop
    )

    corrupted, injected = corrupt_series(workload, faults)

    def faulted_run():
        planner = FlakyPlanner(
            planner_factory(), faults, time_offset=start_index
        )
        return _closed_loop(planner, corrupted, workload, faults=faults, **loop)

    runtime, alloc, replay = faulted_run()
    planner_faults = runtime.planner.faults_injected

    deterministic: "bool | None" = None
    if check_determinism:
        _, alloc2, replay2 = faulted_run()
        deterministic = bool(
            np.array_equal(alloc, alloc2)
            and [o.violated for o in replay.outcomes]
            == [o.violated for o in replay2.outcomes]
            and replay.failures == replay2.failures
        )

    decisions_by_source: dict[str, int] = {}
    for decision in runtime.decisions:
        decisions_by_source[decision.source] = (
            decisions_by_source.get(decision.source, 0) + 1
        )

    return ChaosReport(
        intervals=len(workload),
        fault_counts=faults.counts(),
        telemetry_faults=injected,
        planner_faults=planner_faults,
        baseline_violation_rate=base_replay.violation_rate,
        faulted_violation_rate=replay.violation_rate,
        baseline_node_steps=int(base_alloc.sum()),
        faulted_node_steps=int(alloc.sum()),
        invalid_observations=runtime.invalid_observations,
        planner_errors=runtime.planner_errors,
        degraded_intervals=runtime.degraded_intervals,
        decisions_by_source=decisions_by_source,
        node_failures=replay.node_failures,
        provision_failures=replay.provision_failures,
        warmup_failures=replay.warmup_failures,
        deterministic=deterministic,
        monitored=runtime.monitor is not None,
        monitor_windows=(
            len(runtime.monitor.windows) if runtime.monitor is not None else 0
        ),
        drift_events=(
            len(runtime.monitor.drift_events) if runtime.monitor is not None else 0
        ),
        alerts_fired=(
            len(runtime.monitor.alerts.alerts)
            if runtime.monitor is not None and runtime.monitor.alerts is not None
            else 0
        ),
        slo_status=(
            runtime.monitor.slos.status()
            if runtime.monitor is not None
            and getattr(runtime.monitor, "slos", None) is not None
            else []
        ),
    )


def format_chaos_report(report: ChaosReport) -> str:
    """Render a :class:`ChaosReport` as an aligned plain-text block."""
    lines = [f"chaos report ({report.intervals} intervals)"]

    if report.fault_counts:
        scheduled = ", ".join(
            f"{kind}={count}" for kind, count in sorted(report.fault_counts.items())
        )
        lines.append(f"  faults scheduled    : {scheduled}")
    injected = ", ".join(
        f"{kind}={count}" for kind, count in sorted(report.telemetry_faults.items())
    )
    lines.append(f"  telemetry injected  : {injected or 'none'}")
    lines.append(f"  planner faults hit  : {report.planner_faults}")
    lines.append("")
    lines.append(
        f"  violations          : {report.baseline_violation_rate:.1%} clean"
        f" -> {report.faulted_violation_rate:.1%} faulted"
        f" (+{report.violation_regression:.1%})"
    )
    lines.append(
        f"  node-steps          : {report.baseline_node_steps} clean"
        f" -> {report.faulted_node_steps} faulted"
        f" ({report.node_step_overhead:+.1%})"
    )
    lines.append("")
    lines.append(f"  invalid observations: {report.invalid_observations}")
    lines.append(f"  planner errors      : {report.planner_errors}")
    lines.append(f"  degraded intervals  : {report.degraded_intervals}")
    sources = ", ".join(
        f"{source}={count}"
        for source, count in sorted(report.decisions_by_source.items())
    )
    lines.append(f"  decisions by source : {sources or 'none'}")
    lines.append(
        f"  actuation failures  : {report.node_failures} crashes, "
        f"{report.provision_failures} provision, "
        f"{report.warmup_failures} warm-up"
    )
    if report.monitored:
        lines.append(
            f"  model health        : {report.monitor_windows} windows, "
            f"{report.drift_events} drift events, "
            f"{report.alerts_fired} alerts"
        )
    for entry in report.slo_status:
        state = "ok" if entry.get("healthy", True) else "BURNING"
        if entry.get("slo_kind") == "latency":
            value = entry.get("value_s")
            shown = "n/a" if value is None else f"{value * 1e3:.1f}ms"
            detail = f"p{entry.get('quantile')} {shown}"
        else:
            consumed = float(entry.get("budget_consumed", 0.0) or 0.0)
            detail = f"budget used {consumed:.0%}"
        lines.append(
            f"  slo                 : [{state}] {entry.get('objective')} "
            f"({detail})"
        )
    if report.deterministic is not None:
        verdict = "bit-identical" if report.deterministic else "DIVERGED"
        lines.append(f"  determinism         : repeat run {verdict}")
    return "\n".join(lines)
