"""Rolling-origin backtesting for quantile forecasters.

The paper's evaluation protocol — walk the test split in decision
windows, forecast each from the preceding context, score everything
together — is what every user of this library ends up writing.  This
module makes it a first-class API:

```python
result = backtest(forecaster, test_values, context_length=72, horizon=72,
                  levels=(0.1, ..., 0.9), series_start_index=len(train))
result.report("TFT", "alibaba")      # a Table-I style ForecastReport
result.coverage(0.9)                 # empirical coverage of one level
result.forecasts[i], result.actuals[i]
```
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..forecast.base import Forecaster, QuantileForecast
from .metrics import coverage as coverage_metric
from .metrics import mean_weighted_quantile_loss, mse, weighted_quantile_loss
from .report import ForecastReport, evaluate_quantile_forecast

__all__ = ["BacktestResult", "backtest"]


@dataclass
class BacktestResult:
    """All forecasts and actuals from a rolling-origin evaluation."""

    levels: tuple[float, ...]
    points: list[int]
    forecasts: list[QuantileForecast] = field(default_factory=list)
    actuals: list[np.ndarray] = field(default_factory=list)

    @property
    def num_windows(self) -> int:
        return len(self.forecasts)

    @property
    def merged_actual(self) -> np.ndarray:
        """Actuals concatenated across windows."""
        return np.concatenate(self.actuals)

    def merged_level(self, tau: float) -> np.ndarray:
        """One quantile level's forecasts, concatenated across windows."""
        return np.concatenate([fc.at(tau) for fc in self.forecasts])

    def merged_point(self) -> np.ndarray:
        """Point forecasts concatenated across windows."""
        return np.concatenate([fc.point for fc in self.forecasts])

    # -- metrics ---------------------------------------------------------
    def coverage(self, tau: float) -> float:
        """Empirical coverage of the tau-quantile across all steps."""
        return coverage_metric(self.merged_actual, self.merged_level(tau))

    def wql(self, tau: float) -> float:
        """Weighted quantile loss at one level."""
        return weighted_quantile_loss(self.merged_actual, self.merged_level(tau), tau)

    def mean_wql(self, levels: tuple[float, ...] | None = None) -> float:
        """mean_wQL over ``levels`` (default: the backtest's grid)."""
        levels = levels if levels is not None else self.levels
        return mean_weighted_quantile_loss(
            self.merged_actual, {tau: self.merged_level(tau) for tau in levels}
        )

    def mse(self) -> float:
        """MSE of the point forecast."""
        return mse(self.merged_actual, self.merged_point())

    def report(self, model: str, dataset: str) -> ForecastReport:
        """A Table-I style report over all windows."""
        return evaluate_quantile_forecast(
            model,
            dataset,
            self.merged_actual,
            {tau: self.merged_level(tau) for tau in self.levels},
            point_forecast=self.merged_point(),
        )


def backtest(
    forecaster: Forecaster,
    values: np.ndarray,
    context_length: int,
    horizon: int,
    levels: tuple[float, ...],
    stride: int | None = None,
    series_start_index: int = 0,
    monitor=None,
) -> BacktestResult:
    """Rolling-origin evaluation of a fitted forecaster.

    Parameters
    ----------
    values:
        The evaluation series (e.g. a test split).  The forecaster must
        already be fitted; no window of ``values`` is used for training.
    stride:
        Distance between decision points; default ``horizon``
        (back-to-back windows, the paper's protocol).
    series_start_index:
        Absolute index of ``values[0]`` in the original trace — keeps
        calendar features phase-aligned when ``values`` is a split.
    monitor:
        Optional :class:`~repro.obs.monitor.ModelHealthMonitor`: every
        evaluated (forecast, actual) pair is streamed into it, so the
        backtest doubles as an offline calibration/drift analysis.
    """
    from ..core.evaluation import decision_points
    from ..obs import get_registry

    values = np.asarray(values, dtype=np.float64)
    points = decision_points(len(values), context_length, horizon, stride)
    result = BacktestResult(levels=tuple(sorted(levels)), points=points)
    metrics = get_registry()
    model = type(forecaster).__name__
    with metrics.span("backtest", model=model):
        for point in points:
            with metrics.span("predict"):
                forecast = forecaster.predict(
                    values[point - context_length : point],
                    levels=result.levels,
                    start_index=series_start_index + point - context_length,
                )
            metrics.counter("backtest.windows", model=model).inc()
            result.forecasts.append(forecast)
            actual = values[point : point + horizon]
            result.actuals.append(actual)
            if monitor is not None:
                monitor.observe_forecast(
                    forecast, actual, start_index=series_start_index + point
                )
    return result
