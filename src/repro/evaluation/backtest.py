"""Rolling-origin backtesting for quantile forecasters.

The paper's evaluation protocol — walk the test split in decision
windows, forecast each from the preceding context, score everything
together — is what every user of this library ends up writing.  This
module makes it a first-class API:

```python
result = backtest(forecaster, test_values, context_length=72, horizon=72,
                  levels=(0.1, ..., 0.9), series_start_index=len(train))
result.report("TFT", "alibaba")      # a Table-I style ForecastReport
result.coverage(0.9)                 # empirical coverage of one level
result.forecasts[i], result.actuals[i]
```
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..forecast.base import Forecaster, QuantileForecast
from .metrics import coverage as coverage_metric
from .metrics import mean_weighted_quantile_loss, mse, weighted_quantile_loss
from .report import ForecastReport, evaluate_quantile_forecast

__all__ = ["BacktestResult", "backtest"]

# Base seed for per-window sampler reseeding on the deterministic
# (n_jobs-enabled) path; combined with the window's absolute decision
# point so draws depend only on (seed, window), never on worker layout.
_WINDOW_SEED = 0x5EED


def _reseed_for_window(forecaster: Forecaster, absolute_point: int) -> None:
    reseed = getattr(forecaster, "reseed_sampler", None)
    if reseed is not None:
        reseed((_WINDOW_SEED, absolute_point))


def _predict_window(context: dict, point: int) -> QuantileForecast:
    """One decision window; module-level so workers can pickle it."""
    from ..obs import get_registry

    forecaster = context["forecaster"]
    values = context["values"]
    start = context["series_start_index"] + point - context["context_length"]
    _reseed_for_window(forecaster, context["series_start_index"] + point)
    with get_registry().span("predict"):
        return forecaster.predict(
            values[point - context["context_length"] : point],
            levels=context["levels"],
            start_index=start,
        )


def _predict_chunk(context: dict, chunk: list[int]) -> list[QuantileForecast]:
    """A contiguous batch of decision windows — the parallel task unit.

    One chunk per worker amortises payload unpickling, registry setup,
    and the reply message over many windows instead of paying them per
    window.  Each window still reseeds from its *absolute* point, so the
    forecasts are independent of how the windows were chunked.
    """
    return [_predict_window(context, point) for point in chunk]


@dataclass
class BacktestResult:
    """All forecasts and actuals from a rolling-origin evaluation."""

    levels: tuple[float, ...]
    points: list[int]
    forecasts: list[QuantileForecast] = field(default_factory=list)
    actuals: list[np.ndarray] = field(default_factory=list)
    # Merged-array cache: report() + mean_wql() + per-level coverage()
    # all reconcatenate O(windows * horizon) arrays; memoise them, keyed
    # on window count so appending windows invalidates naturally.
    _merged: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    @property
    def num_windows(self) -> int:
        return len(self.forecasts)

    def _merged_cache(self) -> dict:
        if self._merged.get("windows") != len(self.forecasts):
            self._merged = {"windows": len(self.forecasts)}
        return self._merged

    @property
    def merged_actual(self) -> np.ndarray:
        """Actuals concatenated across windows (cached)."""
        cache = self._merged_cache()
        if "actual" not in cache:
            cache["actual"] = np.concatenate(self.actuals)
        return cache["actual"]

    def merged_level(self, tau: float) -> np.ndarray:
        """One quantile level's forecasts, concatenated across windows (cached)."""
        cache = self._merged_cache()
        key = ("level", float(tau))
        if key not in cache:
            cache[key] = np.concatenate([fc.at(tau) for fc in self.forecasts])
        return cache[key]

    def merged_point(self) -> np.ndarray:
        """Point forecasts concatenated across windows (cached)."""
        cache = self._merged_cache()
        if "point" not in cache:
            cache["point"] = np.concatenate([fc.point for fc in self.forecasts])
        return cache["point"]

    # -- metrics ---------------------------------------------------------
    def coverage(self, tau: float) -> float:
        """Empirical coverage of the tau-quantile across all steps."""
        return coverage_metric(self.merged_actual, self.merged_level(tau))

    def wql(self, tau: float) -> float:
        """Weighted quantile loss at one level."""
        return weighted_quantile_loss(self.merged_actual, self.merged_level(tau), tau)

    def mean_wql(self, levels: tuple[float, ...] | None = None) -> float:
        """mean_wQL over ``levels`` (default: the backtest's grid)."""
        levels = levels if levels is not None else self.levels
        return mean_weighted_quantile_loss(
            self.merged_actual, {tau: self.merged_level(tau) for tau in levels}
        )

    def mse(self) -> float:
        """MSE of the point forecast."""
        return mse(self.merged_actual, self.merged_point())

    def report(self, model: str, dataset: str) -> ForecastReport:
        """A Table-I style report over all windows."""
        return evaluate_quantile_forecast(
            model,
            dataset,
            self.merged_actual,
            {tau: self.merged_level(tau) for tau in self.levels},
            point_forecast=self.merged_point(),
        )


def backtest(
    forecaster: Forecaster,
    values: np.ndarray,
    context_length: int,
    horizon: int,
    levels: tuple[float, ...],
    stride: int | None = None,
    series_start_index: int = 0,
    monitor=None,
    n_jobs: int | None = None,
) -> BacktestResult:
    """Rolling-origin evaluation of a fitted forecaster.

    Parameters
    ----------
    values:
        The evaluation series (e.g. a test split).  The forecaster must
        already be fitted; no window of ``values`` is used for training.
    stride:
        Distance between decision points; default ``horizon``
        (back-to-back windows, the paper's protocol).
    series_start_index:
        Absolute index of ``values[0]`` in the original trace — keeps
        calendar features phase-aligned when ``values`` is a split.
    monitor:
        Optional :class:`~repro.obs.monitor.ModelHealthMonitor`: every
        evaluated (forecast, actual) pair is streamed into it, so the
        backtest doubles as an offline calibration/drift analysis.
    n_jobs:
        ``None`` (default) keeps the legacy serial behaviour: windows
        share the forecaster's ongoing sampling rng stream.  Any integer
        ``>= 1`` switches to the deterministic path — the sampler is
        reseeded per decision window from ``(seed, window)`` — and
        ``>= 2`` fans windows across spawn workers, one contiguous
        chunk of windows per worker.  Because draws then
        depend only on the window, ``n_jobs=1`` and ``n_jobs=4`` give
        bit-identical results; the monitor is fed in window order either
        way, and worker telemetry merges into the ambient registry.
    """
    from ..core.evaluation import decision_points
    from ..obs import get_registry
    from ..parallel import chunk_evenly, parallel_map

    values = np.asarray(values, dtype=np.float64)
    points = decision_points(len(values), context_length, horizon, stride)
    result = BacktestResult(levels=tuple(sorted(levels)), points=points)
    metrics = get_registry()
    model = type(forecaster).__name__
    with metrics.span("backtest", model=model):
        if n_jobs is None:
            forecasts = []
            for point in points:
                with metrics.span("predict"):
                    forecasts.append(
                        forecaster.predict(
                            values[point - context_length : point],
                            levels=result.levels,
                            start_index=series_start_index + point - context_length,
                        )
                    )
        else:
            context = {
                "forecaster": forecaster,
                "values": values,
                "levels": result.levels,
                "context_length": context_length,
                "series_start_index": series_start_index,
            }
            # Coarse grain: one contiguous chunk of windows per worker,
            # not one task per window.  The chunk layout depends only on
            # (len(points), n_jobs), and every window reseeds from its
            # absolute point, so results stay bit-identical across
            # n_jobs — only the task-message count changes.
            chunks = chunk_evenly(points, n_jobs)
            forecasts = [
                forecast
                for batch in parallel_map(
                    _predict_chunk, chunks, context, n_jobs=n_jobs, serial_threshold=1
                )
                for forecast in batch
            ]
        for point, forecast in zip(points, forecasts):
            metrics.counter("backtest.windows", model=model).inc()
            result.forecasts.append(forecast)
            actual = values[point : point + horizon]
            result.actuals.append(actual)
            if monitor is not None:
                monitor.observe_forecast(
                    forecast, actual, start_index=series_start_index + point
                )
    return result
