"""Forecast-quality metrics from Section IV of the paper.

All functions here operate on plain numpy arrays — they evaluate finished
forecasts and never touch the autograd engine.  Conventions follow the
paper: a forecast array for a grid of quantile levels has shape
(num_levels, horizon) (or (num_levels, horizon, num_series)); the target
has shape (horizon,) (or (horizon, num_series)).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "quantile_loss",
    "weighted_quantile_loss",
    "mean_weighted_quantile_loss",
    "coverage",
    "mse",
    "mae",
    "mape",
    "calibration_table",
]


def quantile_loss(target: np.ndarray, predicted: np.ndarray, tau: float) -> float:
    """Total quantile loss QL_tau of Eq. 2 (summed, not averaged).

    rho_tau(y, yhat) = (tau - I[y < yhat]) * (y - yhat), summed over all
    horizons and series.  (The paper's Eq. 1 prints the last factor as
    ``yhat - y``, which would make the loss non-positive; we use the
    standard non-negative orientation.)
    """
    _check_tau(tau)
    target = np.asarray(target, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    indicator = (target < predicted).astype(np.float64)
    return float(((tau - indicator) * (target - predicted)).sum())


def weighted_quantile_loss(target: np.ndarray, predicted: np.ndarray, tau: float) -> float:
    """wQL_[tau] = 2 * QL_tau / sum(|y|)  (Section IV-B1).

    The absolute value in the denominator guards against sign
    cancellation; workload metrics are non-negative so it is a no-op on
    real traces.
    """
    denominator = float(np.abs(np.asarray(target, dtype=np.float64)).sum())
    if denominator == 0.0:
        raise ValueError("target sums to zero; wQL undefined")
    return 2.0 * quantile_loss(target, predicted, tau) / denominator


def mean_weighted_quantile_loss(
    target: np.ndarray,
    quantile_forecasts: dict[float, np.ndarray],
) -> float:
    """mean_wQL: average of wQL over a set of prespecified quantile levels.

    Parameters
    ----------
    quantile_forecasts:
        Mapping tau -> forecast array at that level.
    """
    if not quantile_forecasts:
        raise ValueError("need at least one quantile level")
    losses = [
        weighted_quantile_loss(target, forecast, tau)
        for tau, forecast in sorted(quantile_forecasts.items())
    ]
    return float(np.mean(losses))


def coverage(target: np.ndarray, predicted: np.ndarray) -> float:
    """Fraction of steps where the quantile forecast covers the target.

    Coverage_[tau] measures how often the tau-quantile forecast is larger
    than the true value; a perfectly calibrated forecaster achieves
    Coverage_[tau] = tau.

    NaN targets (missing observations) compare as *not covered* — they
    lower coverage rather than poisoning it, which is the conservative
    choice for the monitors built on top of this function.  Empty
    targets raise.
    """
    target = np.asarray(target, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if target.size == 0:
        raise ValueError("empty target")
    return float((np.asarray(predicted) > target).mean())


def mse(target: np.ndarray, predicted: np.ndarray) -> float:
    """Mean squared error of a point forecast."""
    target = np.asarray(target, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    return float(((predicted - target) ** 2).mean())


def mae(target: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute error of a point forecast."""
    target = np.asarray(target, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    return float(np.abs(predicted - target).mean())


def mape(target: np.ndarray, predicted: np.ndarray, eps: float = 1e-9) -> float:
    """Mean absolute percentage error (targets near zero are epsilon-guarded)."""
    target = np.asarray(target, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    return float((np.abs(predicted - target) / np.maximum(np.abs(target), eps)).mean())


def calibration_table(
    target: np.ndarray, quantile_forecasts: dict[float, np.ndarray]
) -> dict[float, float]:
    """Per-level coverage, for calibration diagnostics (Fig. 7 discussion).

    Every key must be a valid quantile level in (0, 1) — these tables
    feed the model-health monitors, where an out-of-range nominal level
    would silently corrupt calibration error.
    """
    for tau in quantile_forecasts:
        _check_tau(tau)
    return {
        tau: coverage(target, forecast)
        for tau, forecast in sorted(quantile_forecasts.items())
    }


def _check_tau(tau: float) -> None:
    if not 0.0 < tau < 1.0:
        raise ValueError(f"quantile level must be in (0, 1), got {tau}")
