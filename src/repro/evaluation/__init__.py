"""Forecast evaluation metrics, reports, and backtesting (Section IV)."""

from .backtest import BacktestResult, backtest
from .chaos import ChaosReport, chaos_run, format_chaos_report
from .metrics import (
    calibration_table,
    coverage,
    mae,
    mape,
    mean_weighted_quantile_loss,
    mse,
    quantile_loss,
    weighted_quantile_loss,
)
from .report import ForecastReport, evaluate_quantile_forecast, format_table

__all__ = [
    "quantile_loss",
    "weighted_quantile_loss",
    "mean_weighted_quantile_loss",
    "coverage",
    "mse",
    "mae",
    "mape",
    "calibration_table",
    "ForecastReport",
    "evaluate_quantile_forecast",
    "format_table",
    "backtest",
    "BacktestResult",
    "ChaosReport",
    "chaos_run",
    "format_chaos_report",
]
