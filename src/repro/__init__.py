"""repro — Robust Auto-Scaling with Probabilistic Workload Forecasting.

A from-scratch reproduction of the ICDE 2024 paper of the same name:
probabilistic workload forecasters (ARIMA, MLP, DeepAR, TFT, QB5000),
the robust auto-scaling optimizer with its uncertainty-aware adaptive
extension, reactive and point-forecast baselines, a disaggregated
cloud-database cluster simulator, and workload-trace generators.

Quick start::

    from repro import (alibaba_like_trace, TFTForecaster,
                       RobustPredictiveAutoscaler, FixedQuantilePolicy)

    trace = alibaba_like_trace(seed=7)
    train, test = trace.split(test_fraction=0.2)
    forecaster = TFTForecaster(context_length=72, horizon=72)
    scaler = RobustPredictiveAutoscaler(
        forecaster, threshold=60.0, policy=FixedQuantilePolicy(0.9)
    ).fit(train.values)
    plan = scaler.plan(train.values[-72:], start_index=len(train) - 72)
"""

from . import faults, obs
from .core import (
    AutoscalingRuntime,
    Decision,
    FixedQuantilePolicy,
    Planner,
    PointForecastScaler,
    ProvisioningReport,
    QuantilePolicy,
    ReactiveAvgScaler,
    ReactiveMaxScaler,
    RobustAutoScalingManager,
    RobustPredictiveAutoscaler,
    RollingEvaluation,
    ScalingPlan,
    StaircasePolicy,
    StepResult,
    UncertaintyAwarePolicy,
    evaluate_plan,
    evaluate_strategy,
    quantile_uncertainty,
    required_nodes,
    solve_closed_form,
    solve_lp,
    solve_with_ramp_limits,
)
from .forecast import (
    DEFAULT_QUANTILE_LEVELS,
    ARIMAForecaster,
    DeepARForecaster,
    EnsembleForecaster,
    Forecaster,
    MLPForecaster,
    MLPQuantileForecaster,
    PaddedPointForecaster,
    PointForecaster,
    QB5000Forecaster,
    QuantileForecast,
    QuantileRegressionForecaster,
    SeasonalNaiveForecaster,
    TFTForecaster,
    TFTPointForecaster,
    TrainingConfig,
)
from .evaluation import ChaosReport, backtest, chaos_run
from .faults import FaultSchedule
from .service import ServiceRuntime
from .traces import Trace, alibaba_like_trace, google_like_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # traces
    "Trace",
    "alibaba_like_trace",
    "google_like_trace",
    # forecasting
    "QuantileForecast",
    "Forecaster",
    "PointForecaster",
    "TrainingConfig",
    "DEFAULT_QUANTILE_LEVELS",
    "ARIMAForecaster",
    "MLPForecaster",
    "DeepARForecaster",
    "TFTForecaster",
    "QB5000Forecaster",
    "QuantileRegressionForecaster",
    "MLPQuantileForecaster",
    "EnsembleForecaster",
    "TFTPointForecaster",
    "PaddedPointForecaster",
    "SeasonalNaiveForecaster",
    # observability
    "obs",
    # fault injection
    "faults",
    "FaultSchedule",
    # evaluation harnesses
    "backtest",
    "chaos_run",
    "ChaosReport",
    # core
    "Planner",
    "ScalingPlan",
    "ProvisioningReport",
    "required_nodes",
    "evaluate_plan",
    "solve_closed_form",
    "solve_lp",
    "solve_with_ramp_limits",
    "quantile_uncertainty",
    "QuantilePolicy",
    "FixedQuantilePolicy",
    "UncertaintyAwarePolicy",
    "StaircasePolicy",
    "RobustAutoScalingManager",
    "RobustPredictiveAutoscaler",
    "PointForecastScaler",
    "ReactiveMaxScaler",
    "ReactiveAvgScaler",
    "evaluate_strategy",
    "RollingEvaluation",
    "AutoscalingRuntime",
    "Decision",
    "StepResult",
    # service daemon
    "ServiceRuntime",
]
