"""Anomaly injection for stress-testing auto-scaling strategies.

The paper motivates robustness with "workload variations, outliers, and
unexpected events".  These utilities inject controlled versions of the
classic incident shapes into a trace so a strategy's behaviour under
each can be measured in isolation:

* :func:`inject_level_shift` — a tenant migration / launch: the base
  load steps up (or down) permanently from a given instant;
* :func:`inject_flash_crowd` — a marketing event: load ramps up sharply,
  plateaus, and decays back;
* :func:`inject_outage_dip` — an upstream outage: traffic collapses for
  a window, then returns (often with a retry surge);
* :func:`inject_noise_burst` — a stretch of elevated variance without a
  level change (what the uncertainty-aware policy should detect).

All functions are pure: they return a new :class:`Trace`, never mutate
the input, and take explicit magnitudes so experiments are reproducible.
"""

from __future__ import annotations

import numpy as np

from .dataset import Trace

__all__ = [
    "inject_level_shift",
    "inject_flash_crowd",
    "inject_outage_dip",
    "inject_noise_burst",
]


def _check_window(trace: Trace, start: int, duration: int | None = None) -> None:
    if not 0 <= start < len(trace):
        raise ValueError(f"start {start} outside trace of length {len(trace)}")
    if duration is not None:
        if duration < 1:
            raise ValueError("duration must be >= 1")
        if start + duration > len(trace):
            raise ValueError(
                f"window [{start}, {start + duration}) exceeds trace length "
                f"{len(trace)}"
            )


def inject_level_shift(trace: Trace, start: int, magnitude: float) -> Trace:
    """Permanent additive step of ``magnitude`` from ``start`` onward.

    Negative magnitudes model capacity being freed; the result is floored
    at zero.
    """
    _check_window(trace, start)
    values = trace.values.copy()
    values[start:] = np.maximum(values[start:] + magnitude, 0.0)
    return Trace(
        f"{trace.name}+shift", values, trace.interval_seconds, trace.metric
    )


def inject_flash_crowd(
    trace: Trace,
    start: int,
    peak_magnitude: float,
    ramp_steps: int = 6,
    hold_steps: int = 12,
    decay_steps: int = 18,
) -> Trace:
    """Ramp-plateau-decay surge (a flash crowd / campaign spike).

    The surge rises linearly over ``ramp_steps``, holds at
    ``peak_magnitude`` for ``hold_steps``, and decays exponentially to
    ~zero over ``decay_steps``.
    """
    if peak_magnitude <= 0:
        raise ValueError("peak_magnitude must be positive")
    duration = ramp_steps + hold_steps + decay_steps
    _check_window(trace, start, duration)
    surge = np.concatenate(
        [
            np.linspace(0.0, peak_magnitude, max(ramp_steps, 1), endpoint=False),
            np.full(hold_steps, peak_magnitude),
            peak_magnitude * np.exp(-3.0 * np.arange(decay_steps) / max(decay_steps, 1)),
        ]
    )
    values = trace.values.copy()
    values[start : start + len(surge)] += surge
    return Trace(
        f"{trace.name}+flashcrowd", values, trace.interval_seconds, trace.metric
    )


def inject_outage_dip(
    trace: Trace,
    start: int,
    duration: int,
    residual_fraction: float = 0.1,
    retry_surge_fraction: float = 0.5,
    surge_steps: int = 3,
) -> Trace:
    """Traffic collapse followed by an optional retry surge.

    During the outage the workload drops to ``residual_fraction`` of its
    original value; on recovery, ``retry_surge_fraction`` of the dropped
    load returns on top of normal traffic for ``surge_steps`` intervals
    (clients retrying).
    """
    if not 0.0 <= residual_fraction <= 1.0:
        raise ValueError("residual_fraction must be in [0, 1]")
    if retry_surge_fraction < 0:
        raise ValueError("retry_surge_fraction must be >= 0")
    _check_window(trace, start, duration)
    values = trace.values.copy()
    dropped = values[start : start + duration] * (1.0 - residual_fraction)
    values[start : start + duration] -= dropped
    if retry_surge_fraction > 0 and surge_steps > 0:
        surge_start = start + duration
        surge_stop = min(surge_start + surge_steps, len(values))
        if surge_stop > surge_start:
            surge_total = dropped.sum() * retry_surge_fraction
            values[surge_start:surge_stop] += surge_total / (surge_stop - surge_start)
    return Trace(
        f"{trace.name}+outage", values, trace.interval_seconds, trace.metric
    )


def inject_noise_burst(
    trace: Trace,
    start: int,
    duration: int,
    extra_std: float,
    seed: int = 0,
) -> Trace:
    """A window of elevated variance with unchanged mean.

    The canonical case for the uncertainty-aware policy: nothing about
    the level changes, but forecast confidence should drop.
    """
    if extra_std <= 0:
        raise ValueError("extra_std must be positive")
    _check_window(trace, start, duration)
    rng = np.random.default_rng(seed)
    values = trace.values.copy()
    values[start : start + duration] = np.maximum(
        values[start : start + duration] + rng.normal(0.0, extra_std, duration), 0.0
    )
    return Trace(
        f"{trace.name}+noiseburst", values, trace.interval_seconds, trace.metric
    )
