"""Alibaba-cluster-style workload traces.

The real ``cluster-trace-v2018`` publishes per-machine resource usage
(``machine_usage.csv``: machine id, timestamp, cpu %, mem %, ...).  The
paper samples a subset of machines and aggregates their usage into one
series per resource at 10-minute intervals.

:func:`alibaba_like_trace` synthesises a series with that trace's
well-documented shape: a pronounced diurnal cycle with a secondary
business-hours harmonic, a weekly dip, moderate bursts, and a stable
baseline around 40% CPU.  :func:`load_machine_usage_csv` ingests the real
file format for users who have the trace.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .dataset import DEFAULT_INTERVAL_SECONDS, Trace, aggregate
from .synthetic import (
    STEPS_PER_DAY,
    STEPS_PER_WEEK,
    BurstComponent,
    NoiseComponent,
    SeasonalComponent,
    SpikeComponent,
    SyntheticWorkload,
    TrendComponent,
)

__all__ = ["alibaba_like_trace", "alibaba_workload_model", "load_machine_usage_csv"]


def alibaba_workload_model(metric: str = "cpu") -> SyntheticWorkload:
    """The component mix for an Alibaba-like series.

    Values are *aggregate* demand over the sampled machine subset, in
    units of percent-of-one-node (the paper aggregates usage across the
    sample, then sizes compute nodes against a per-node threshold theta,
    so plans span tens of nodes).  CPU is the paper's scaling metric;
    memory and disk variants are provided because the dataset includes
    them.
    """
    if metric == "cpu":
        return SyntheticWorkload(
            base_level=2000.0,
            floor=50.0,
            components=[
                SeasonalComponent(period=STEPS_PER_DAY, harmonics={1: 600.0, 2: 200.0}),
                SeasonalComponent(period=STEPS_PER_WEEK, harmonics={1: 250.0}, phase=0.7),
                TrendComponent(walk_std=4.0),
                BurstComponent(
                    rate_per_step=0.012, magnitude=450.0, decay=0.85,
                    rate_modulation_period=STEPS_PER_DAY,
                    rate_modulation_strength=0.95,
                ),
                SpikeComponent(
                    rate_per_step=0.005, magnitude=750.0,
                    rate_modulation_period=STEPS_PER_DAY,
                    rate_modulation_strength=0.95,
                ),
                NoiseComponent(
                    std=80.0, volatility_period=STEPS_PER_DAY, volatility_strength=0.6
                ),
            ],
        )
    if metric == "memory":
        return SyntheticWorkload(
            base_level=3000.0,
            floor=250.0,
            components=[
                SeasonalComponent(period=STEPS_PER_DAY, harmonics={1: 300.0}),
                TrendComponent(walk_std=2.5),
                NoiseComponent(std=50.0),
            ],
        )
    if metric == "disk":
        return SyntheticWorkload(
            base_level=1500.0,
            floor=0.0,
            components=[
                SeasonalComponent(period=STEPS_PER_DAY, harmonics={1: 200.0, 3: 75.0}),
                BurstComponent(rate_per_step=0.02, magnitude=300.0),
                NoiseComponent(std=100.0),
            ],
        )
    raise ValueError(f"unknown metric {metric!r}; expected cpu, memory, or disk")


def alibaba_like_trace(
    num_steps: int = 4 * STEPS_PER_WEEK,
    seed: int = 0,
    metric: str = "cpu",
) -> Trace:
    """Generate an Alibaba-like utilization trace.

    Parameters
    ----------
    num_steps:
        Length in 10-minute steps (default: four weeks, enough for the
        paper's 72-step context/horizon experiments with a test split).
    seed:
        Generator seed; the same seed reproduces the trace exactly.
    metric:
        ``"cpu"`` (default, the paper's scaling metric), ``"memory"``,
        or ``"disk"``.
    """
    series = alibaba_workload_model(metric).generate(num_steps, seed=seed)
    return Trace(name=f"alibaba-{metric}", values=series, metric=metric)


def load_machine_usage_csv(
    path: str | Path,
    machine_ids: set[str] | None = None,
    interval_seconds: int = DEFAULT_INTERVAL_SECONDS,
) -> Trace:
    """Load the real Alibaba ``machine_usage.csv`` format.

    Columns (no header): machine_id, time_stamp, cpu_util_percent,
    mem_util_percent, mem_gps, mkpi, net_in, net_out, disk_io_percent.
    CPU utilization is averaged over the sampled machines, then
    aggregated to ``interval_seconds`` bins — the paper's construction.

    Parameters
    ----------
    machine_ids:
        Optional subset of machines to keep ("sampling a subset of
        machines"); None keeps all.
    """
    timestamps: list[float] = []
    values: list[float] = []
    with open(path, newline="") as handle:
        for row in csv.reader(handle):
            if len(row) < 3:
                continue
            machine, stamp, cpu = row[0], row[1], row[2]
            if machine_ids is not None and machine not in machine_ids:
                continue
            if not cpu:
                continue
            timestamps.append(float(stamp))
            values.append(float(cpu))
    if not values:
        raise ValueError(f"no usable records found in {path}")
    series = aggregate(np.asarray(timestamps), np.asarray(values), interval_seconds)
    return Trace(name="alibaba-cpu", values=series, interval_seconds=interval_seconds)
