"""Workload traces: synthetic generators, real-format loaders, containers."""

from .alibaba import alibaba_like_trace, alibaba_workload_model, load_machine_usage_csv
from .anomalies import (
    inject_flash_crowd,
    inject_level_shift,
    inject_noise_burst,
    inject_outage_dip,
)
from .dataset import DEFAULT_INTERVAL_SECONDS, StandardScaler, Trace, aggregate
from .google import google_like_trace, google_workload_model, load_task_usage_csv
from .synthetic import (
    STEPS_PER_DAY,
    STEPS_PER_WEEK,
    BurstComponent,
    NoiseComponent,
    RegimeSwitchComponent,
    SeasonalComponent,
    SpikeComponent,
    SyntheticWorkload,
    TrendComponent,
)

__all__ = [
    "Trace",
    "StandardScaler",
    "aggregate",
    "DEFAULT_INTERVAL_SECONDS",
    "STEPS_PER_DAY",
    "STEPS_PER_WEEK",
    "SyntheticWorkload",
    "SeasonalComponent",
    "TrendComponent",
    "NoiseComponent",
    "BurstComponent",
    "SpikeComponent",
    "RegimeSwitchComponent",
    "alibaba_like_trace",
    "alibaba_workload_model",
    "load_machine_usage_csv",
    "google_like_trace",
    "google_workload_model",
    "load_task_usage_csv",
    "inject_level_shift",
    "inject_flash_crowd",
    "inject_outage_dip",
    "inject_noise_burst",
]
