"""Composable synthetic workload generators.

The paper evaluates on the public Alibaba and Google cluster traces,
aggregated to 10-minute intervals.  Those traces are not shippable here,
so this module provides seeded generators whose components reproduce the
statistical structure that drives the paper's results:

* strong diurnal and weekly seasonality (cloud database CPU usage),
* slow drift/trend,
* heavy-tailed bursts and short spikes (the outliers that break point
  forecasts and motivate quantile forecasting),
* regime switches (the Google trace's erratic task mix), and
* heteroscedastic noise (uncertainty that varies over time — what the
  adaptive strategy of Section III-C2 exploits).

Every component is a pure function of a time index plus a seeded
generator, so any trace regenerates exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SeasonalComponent",
    "TrendComponent",
    "NoiseComponent",
    "BurstComponent",
    "SpikeComponent",
    "RegimeSwitchComponent",
    "SyntheticWorkload",
    "STEPS_PER_DAY",
    "STEPS_PER_WEEK",
]

# The paper aggregates traces at 10-minute intervals.
STEPS_PER_DAY = 144
STEPS_PER_WEEK = 7 * STEPS_PER_DAY


@dataclass(frozen=True)
class SeasonalComponent:
    """Sum of sinusoidal harmonics with a given period.

    ``harmonics`` maps harmonic order -> amplitude; a second harmonic adds
    the familiar two-peak business-day shape.
    """

    period: int
    harmonics: dict[int, float]
    phase: float = 0.0

    def generate(self, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = np.zeros_like(t, dtype=np.float64)
        for order, amplitude in self.harmonics.items():
            out += amplitude * np.sin(2.0 * np.pi * order * t / self.period + self.phase)
        return out


@dataclass(frozen=True)
class TrendComponent:
    """Linear drift plus a slow random walk (integrated noise)."""

    slope_per_step: float = 0.0
    walk_std: float = 0.0

    def generate(self, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = self.slope_per_step * t.astype(np.float64)
        if self.walk_std > 0:
            out += np.cumsum(rng.normal(0.0, self.walk_std, size=t.shape))
        return out


@dataclass(frozen=True)
class NoiseComponent:
    """Gaussian noise whose scale itself oscillates (heteroscedastic).

    ``volatility_period`` > 0 makes uncertainty time-varying: quiet and
    noisy stretches alternate, which is exactly the structure the
    uncertainty-aware adaptive scaler detects.
    """

    std: float
    volatility_period: int = 0
    volatility_strength: float = 0.0

    def generate(self, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        scale = np.full(t.shape, self.std, dtype=np.float64)
        if self.volatility_period > 0 and self.volatility_strength > 0:
            modulation = 1.0 + self.volatility_strength * np.sin(
                2.0 * np.pi * t / self.volatility_period
            )
            scale *= np.maximum(modulation, 0.05)
        return rng.normal(0.0, 1.0, size=t.shape) * scale


@dataclass(frozen=True)
class BurstComponent:
    """Sustained load surges: Poisson arrivals with exponential decay.

    Mimics batch jobs / backfills landing on the cluster — the
    "notable variations and outliers" the paper cites as the failure mode
    of point forecasts.  Real clusters see bursts cluster in busy hours,
    so the arrival rate can be phase-modulated
    (``rate_t = rate * max(0, 1 + strength * sin(2 pi t / period))``);
    this time-locality is also what makes forecast uncertainty
    informative for the adaptive policy.
    """

    rate_per_step: float
    magnitude: float
    decay: float = 0.85
    rate_modulation_period: int = 0
    rate_modulation_strength: float = 0.0

    def _rates(self, t: np.ndarray) -> np.ndarray:
        rates = np.full(t.shape, self.rate_per_step, dtype=np.float64)
        if self.rate_modulation_period > 0 and self.rate_modulation_strength > 0:
            modulation = 1.0 + self.rate_modulation_strength * np.sin(
                2.0 * np.pi * t / self.rate_modulation_period
            )
            rates *= np.maximum(modulation, 0.0)
        return rates

    def generate(self, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        arrivals = rng.random(size=t.shape) < self._rates(t)
        sizes = rng.exponential(self.magnitude, size=t.shape) * arrivals
        out = np.zeros_like(sizes)
        level = 0.0
        for i, size in enumerate(sizes):
            level = level * self.decay + size
            out[i] = level
        return out


@dataclass(frozen=True)
class SpikeComponent:
    """Instantaneous one-step spikes (e.g. cache-miss storms).

    Supports the same busy-hour rate modulation as
    :class:`BurstComponent`.
    """

    rate_per_step: float
    magnitude: float
    rate_modulation_period: int = 0
    rate_modulation_strength: float = 0.0

    def _rates(self, t: np.ndarray) -> np.ndarray:
        rates = np.full(t.shape, self.rate_per_step, dtype=np.float64)
        if self.rate_modulation_period > 0 and self.rate_modulation_strength > 0:
            modulation = 1.0 + self.rate_modulation_strength * np.sin(
                2.0 * np.pi * t / self.rate_modulation_period
            )
            rates *= np.maximum(modulation, 0.0)
        return rates

    def generate(self, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        hits = rng.random(size=t.shape) < self._rates(t)
        return rng.exponential(self.magnitude, size=t.shape) * hits


@dataclass(frozen=True)
class RegimeSwitchComponent:
    """Piecewise-constant base-level shifts via a 2-state Markov chain.

    Captures the Google trace's task-mix changes: long stretches at one
    utilization level punctuated by moves to another.  Switches can be
    phase-modulated (task churn concentrates in busy hours) via the same
    rate-modulation scheme as :class:`BurstComponent`.
    """

    switch_probability: float
    level_high: float
    level_low: float = 0.0
    rate_modulation_period: int = 0
    rate_modulation_strength: float = 0.0

    def generate(self, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        probs = np.full(t.shape, self.switch_probability, dtype=np.float64)
        if self.rate_modulation_period > 0 and self.rate_modulation_strength > 0:
            modulation = 1.0 + self.rate_modulation_strength * np.sin(
                2.0 * np.pi * t / self.rate_modulation_period
            )
            probs *= np.maximum(modulation, 0.0)
        out = np.empty(t.shape, dtype=np.float64)
        high = False
        for i in range(len(t)):
            if rng.random() < probs[i]:
                high = not high
            out[i] = self.level_high if high else self.level_low
        return out


@dataclass
class SyntheticWorkload:
    """A workload model: base level plus additive components, floored at zero.

    Parameters
    ----------
    base_level:
        Mean utilization around which components oscillate.
    components:
        Additive generators applied in order.
    floor:
        Minimum workload (CPU usage cannot go negative).
    """

    base_level: float
    components: list[object] = field(default_factory=list)
    floor: float = 0.0

    def generate(self, num_steps: int, seed: int = 0, start: int = 0) -> np.ndarray:
        """Produce ``num_steps`` workload values starting at time ``start``.

        The same (seed, start, num_steps) always yields the same series.
        """
        if num_steps < 1:
            raise ValueError("num_steps must be >= 1")
        rng = np.random.default_rng(seed)
        t = np.arange(start, start + num_steps)
        series = np.full(num_steps, self.base_level, dtype=np.float64)
        for component in self.components:
            series += component.generate(t, rng)
        return np.maximum(series, self.floor)
