"""Trace containers: aggregation, splitting, and normalization.

A :class:`Trace` is the unit the rest of the library consumes — a named,
regularly-sampled utilization series with its sampling interval.  The
paper's pipeline is: raw cluster records -> aggregate to 10-minute bins
-> chronological train/test split -> (internally normalised) forecaster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Trace", "StandardScaler", "aggregate", "DEFAULT_INTERVAL_SECONDS"]

DEFAULT_INTERVAL_SECONDS = 600  # the paper's 10-minute aggregation


@dataclass
class Trace:
    """A regularly-sampled workload series.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"alibaba-cpu"``.
    values:
        Utilization values per interval.
    interval_seconds:
        Sampling period (600 s in the paper).
    metric:
        What the values measure (``"cpu"``, ``"memory"``, ``"disk"``).
    """

    name: str
    values: np.ndarray
    interval_seconds: int = DEFAULT_INTERVAL_SECONDS
    metric: str = "cpu"

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 1:
            raise ValueError("trace values must be 1-D")
        if len(self.values) == 0:
            raise ValueError("trace must not be empty")
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")

    def __len__(self) -> int:
        return len(self.values)

    @property
    def duration_hours(self) -> float:
        return len(self.values) * self.interval_seconds / 3600.0

    def split(self, test_fraction: float = 0.2) -> tuple["Trace", "Trace"]:
        """Chronological train/test split; test is the most recent part."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        cut = int(len(self.values) * (1.0 - test_fraction))
        if cut == 0 or cut == len(self.values):
            raise ValueError("trace too short for the requested split")
        train = Trace(f"{self.name}-train", self.values[:cut], self.interval_seconds, self.metric)
        test = Trace(f"{self.name}-test", self.values[cut:], self.interval_seconds, self.metric)
        return train, test

    def slice(self, start: int, stop: int) -> "Trace":
        """Sub-trace over [start, stop)."""
        return Trace(self.name, self.values[start:stop], self.interval_seconds, self.metric)

    def summary(self) -> dict[str, float]:
        """Descriptive statistics used in trace validation tests."""
        v = self.values
        return {
            "mean": float(v.mean()),
            "std": float(v.std()),
            "min": float(v.min()),
            "max": float(v.max()),
            "p50": float(np.quantile(v, 0.5)),
            "p95": float(np.quantile(v, 0.95)),
            "p99": float(np.quantile(v, 0.99)),
        }


def aggregate(
    timestamps: np.ndarray,
    values: np.ndarray,
    interval_seconds: int = DEFAULT_INTERVAL_SECONDS,
    reducer: str = "mean",
) -> np.ndarray:
    """Bin raw (timestamp, value) records into regular intervals.

    This is the step the paper applies to raw cluster-trace records
    ("we aggregate the data at 10-minute intervals").  Bins with no
    records are filled by carrying the previous bin forward.

    Parameters
    ----------
    timestamps:
        Record times in seconds (any origin).
    values:
        Record values, same length as ``timestamps``.
    interval_seconds:
        Bin width.
    reducer:
        ``"mean"``, ``"max"``, or ``"sum"`` within each bin.
    """
    timestamps = np.asarray(timestamps, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if timestamps.shape != values.shape:
        raise ValueError("timestamps and values must have the same shape")
    if len(timestamps) == 0:
        raise ValueError("cannot aggregate empty records")
    if reducer not in ("mean", "max", "sum"):
        raise ValueError(f"unknown reducer {reducer!r}")

    origin = timestamps.min()
    bins = ((timestamps - origin) // interval_seconds).astype(np.int64)
    num_bins = int(bins.max()) + 1
    out = np.full(num_bins, np.nan)
    order = np.argsort(bins, kind="stable")
    sorted_bins = bins[order]
    sorted_values = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_bins)) + 1
    groups = np.split(sorted_values, boundaries)
    unique_bins = sorted_bins[np.concatenate(([0], boundaries))] if len(sorted_bins) else []
    reduce_fn = {"mean": np.mean, "max": np.max, "sum": np.sum}[reducer]
    for bin_id, group in zip(unique_bins, groups):
        out[bin_id] = reduce_fn(group)

    # Forward-fill empty bins; back-fill a leading gap if any.
    for i in range(1, num_bins):
        if np.isnan(out[i]):
            out[i] = out[i - 1]
    if np.isnan(out[0]):
        first_valid = out[~np.isnan(out)]
        out[0] = first_valid[0] if len(first_valid) else 0.0
        for i in range(1, num_bins):
            if np.isnan(out[i]):
                out[i] = out[i - 1]
    return out


@dataclass
class StandardScaler:
    """Z-score normalizer fitted on training data only.

    Neural forecasters train on normalised series; forecasts are mapped
    back to utilization units before the scaling optimizer sees them.
    """

    mean_: float = 0.0
    std_: float = 1.0
    fitted: bool = field(default=False, repr=False)

    def fit(self, values: np.ndarray) -> "StandardScaler":
        values = np.asarray(values, dtype=np.float64)
        self.mean_ = float(values.mean())
        self.std_ = float(values.std())
        if self.std_ < 1e-12:
            self.std_ = 1.0  # constant series: avoid dividing by ~0
        self.fitted = True
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return (np.asarray(values, dtype=np.float64) - self.mean_) / self.std_

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.asarray(values, dtype=np.float64) * self.std_ + self.mean_

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("scaler used before fit()")
