"""Google-cluster-style workload traces.

The 2011 Google cluster trace publishes per-task usage records; the
paper samples a subset of tasks and aggregates CPU/memory usage at
10-minute intervals.  Relative to the Alibaba trace, the Google series is
markedly harder to forecast — Table I shows roughly an order of magnitude
worse wQL for every model — because task churn produces regime switches,
weaker weekly structure, and heavier bursts.  :func:`google_like_trace`
reproduces exactly those properties.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .dataset import DEFAULT_INTERVAL_SECONDS, Trace, aggregate
from .synthetic import (
    STEPS_PER_DAY,
    BurstComponent,
    NoiseComponent,
    RegimeSwitchComponent,
    SeasonalComponent,
    SpikeComponent,
    SyntheticWorkload,
    TrendComponent,
)

__all__ = ["google_like_trace", "google_workload_model", "load_task_usage_csv"]


def google_workload_model(metric: str = "cpu") -> SyntheticWorkload:
    """Component mix for a Google-like series: noisier, regime-switching.

    As with the Alibaba model, values are aggregate demand over the
    sampled task subset in percent-of-one-node units.
    """
    if metric == "cpu":
        return SyntheticWorkload(
            base_level=1750.0,
            floor=25.0,
            components=[
                SeasonalComponent(period=STEPS_PER_DAY, harmonics={1: 300.0}),
                RegimeSwitchComponent(
                    switch_probability=0.006, level_high=700.0,
                    rate_modulation_period=STEPS_PER_DAY,
                    rate_modulation_strength=0.9,
                ),
                TrendComponent(walk_std=7.5),
                BurstComponent(
                    rate_per_step=0.035, magnitude=600.0, decay=0.8,
                    rate_modulation_period=STEPS_PER_DAY,
                    rate_modulation_strength=0.9,
                ),
                SpikeComponent(
                    rate_per_step=0.014, magnitude=1100.0,
                    rate_modulation_period=STEPS_PER_DAY,
                    rate_modulation_strength=0.9,
                ),
                NoiseComponent(
                    std=175.0,
                    volatility_period=STEPS_PER_DAY,
                    volatility_strength=0.8,
                ),
            ],
        )
    if metric == "memory":
        return SyntheticWorkload(
            base_level=2500.0,
            floor=100.0,
            components=[
                SeasonalComponent(period=STEPS_PER_DAY, harmonics={1: 150.0}),
                RegimeSwitchComponent(switch_probability=0.003, level_high=400.0),
                NoiseComponent(std=100.0),
            ],
        )
    raise ValueError(f"unknown metric {metric!r}; expected cpu or memory")


def google_like_trace(
    num_steps: int = 4 * 7 * STEPS_PER_DAY,
    seed: int = 0,
    metric: str = "cpu",
) -> Trace:
    """Generate a Google-like utilization trace (see module docstring)."""
    series = google_workload_model(metric).generate(num_steps, seed=seed)
    return Trace(name=f"google-{metric}", values=series, metric=metric)


def load_task_usage_csv(
    path: str | Path,
    task_ids: set[str] | None = None,
    interval_seconds: int = DEFAULT_INTERVAL_SECONDS,
) -> Trace:
    """Load the real Google ``task_usage`` CSV format.

    Relevant columns of the 2011 trace: start_time (microseconds, col 0),
    end_time (col 1), job_id (col 2), task_index (col 3), machine_id
    (col 4), mean CPU usage rate (col 5).  Task usage is *summed* across
    the sampled tasks per bin (aggregate demand), matching the paper's
    "sampling a subset of tasks and aggregating the resource usage".
    """
    timestamps: list[float] = []
    values: list[float] = []
    with open(path, newline="") as handle:
        for row in csv.reader(handle):
            if len(row) < 6:
                continue
            start_us, job_id, task_index, cpu = row[0], row[2], row[3], row[5]
            if not cpu:
                continue
            if task_ids is not None and f"{job_id}:{task_index}" not in task_ids:
                continue
            timestamps.append(float(start_us) / 1e6)
            values.append(float(cpu))
    if not values:
        raise ValueError(f"no usable records found in {path}")
    series = aggregate(
        np.asarray(timestamps), np.asarray(values), interval_seconds, reducer="sum"
    )
    return Trace(name="google-cpu", values=series, interval_seconds=interval_seconds)
