"""Command-line interface: train, plan, and evaluate in one shot.

Examples
--------
Evaluate robust scaling at the 0.9 quantile on an Alibaba-like trace::

    repro-autoscale evaluate --trace alibaba --quantile 0.9

Compare every strategy the paper evaluates (small budget)::

    repro-autoscale compare --trace google --days 10

Show a quantile forecast::

    repro-autoscale forecast --trace alibaba --model tft

Capture telemetry from any run and summarise it afterwards::

    repro-autoscale evaluate --trace alibaba --days 5 --telemetry out.jsonl
    repro-autoscale report out.jsonl

Watch model health online (calibration windows, drift detection,
alerts, decision provenance) and stress it with an injected regime
shift::

    repro-autoscale evaluate --model naive --monitor \
        --inject-shift 90:1500 --telemetry out.jsonl
    repro-autoscale report out.jsonl   # includes the model-health section
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core import (
    FixedQuantilePolicy,
    ReactiveAvgScaler,
    ReactiveMaxScaler,
    RobustPredictiveAutoscaler,
    UncertaintyAwarePolicy,
    evaluate_strategy,
)
from .forecast import (
    ARIMAForecaster,
    DeepARForecaster,
    MLPForecaster,
    SeasonalNaiveForecaster,
    TFTForecaster,
    TrainingConfig,
)
from .traces import STEPS_PER_DAY, alibaba_like_trace, google_like_trace

TRACES = {"alibaba": alibaba_like_trace, "google": google_like_trace}


def _build_forecaster(
    name: str, context: int, horizon: int, epochs: int, seed: int,
    dtype: str | None = None,
):
    config = TrainingConfig(epochs=epochs, window_stride=2, seed=seed)
    grid = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99)
    if name == "tft":
        forecaster = TFTForecaster(context, horizon, quantile_levels=grid, config=config)
    elif name == "deepar":
        forecaster = DeepARForecaster(context, horizon, config=config)
    elif name == "mlp":
        forecaster = MLPForecaster(context, horizon, config=config)
    elif name == "arima":
        forecaster = ARIMAForecaster(horizon)
    elif name == "naive":
        forecaster = SeasonalNaiveForecaster(horizon, season=STEPS_PER_DAY)
    else:
        raise SystemExit(f"unknown model {name!r}")
    # --dtype float32 selects single-precision inference kernels on the
    # models that have them; statistical baselines ignore it.
    if dtype and dtype != "float64" and hasattr(forecaster, "set_inference_dtype"):
        forecaster.set_inference_dtype(dtype)
    return forecaster


def _load_trace(args: argparse.Namespace):
    trace = TRACES[args.trace](num_steps=args.days * STEPS_PER_DAY, seed=args.seed)
    return trace.split(test_fraction=0.25)


def _parse_shift(spec: str):
    """Parse ``--inject-shift START:MAGNITUDE`` (START is test-relative)."""
    try:
        start_text, magnitude_text = spec.split(":", 1)
        return int(start_text), float(magnitude_text)
    except ValueError:
        raise SystemExit(
            f"cannot parse --inject-shift {spec!r}; expected START:MAGNITUDE, "
            f"e.g. 90:1500"
        )


#: Per-interval Bernoulli rates for the ``chaos`` command's default
#: schedule — a little of everything, at every layer.
DEFAULT_CHAOS_RATES = {
    "nan": 0.02,
    "spike": 0.01,
    "drop": 0.01,
    "duplicate": 0.01,
    "planner_error": 0.05,
    "planner_timeout": 0.02,
    "node_crash": 0.01,
    "provision_fail": 0.01,
    "warmup_stall": 0.01,
}


def _parse_faults(args: argparse.Namespace):
    """The ``--faults`` spec as a FaultSchedule (None when absent)."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    from .faults import FaultSchedule

    try:
        return FaultSchedule.parse(spec)
    except ValueError as error:
        raise SystemExit(str(error))


def _monitoring_enabled(args: argparse.Namespace) -> bool:
    """--monitor, any --slo spec, or --adapt (SLOs need the health
    monitor feed; adaptation compares candidate vs incumbent monitors)."""
    return bool(
        getattr(args, "monitor", False)
        or getattr(args, "slo", None)
        or getattr(args, "adapt", False)
    )


def _build_monitor(args: argparse.Namespace):
    """A ModelHealthMonitor wired to default + user alert rules and SLOs."""
    from .obs import (
        AlertEngine,
        ModelHealthMonitor,
        SLOTracker,
        default_rules,
        parse_rule,
    )

    nominal = getattr(args, "quantile", 0.9)
    rules = default_rules(nominal_level=nominal)
    for spec in getattr(args, "alert", None) or []:
        try:
            rules.append(parse_rule(spec))
        except ValueError as error:
            raise SystemExit(str(error))
    engine = AlertEngine(rules)
    slos = None
    if getattr(args, "slo", None):
        # The tracker shares the alert engine, so SLO burn-rate alerts
        # flow through the same firing path (and trigger plan-on-alert
        # in the service daemon) as model-health alerts.
        try:
            slos = SLOTracker(args.slo, engine=engine)
        except ValueError as error:
            raise SystemExit(str(error))
    return ModelHealthMonitor(
        window=args.monitor_window, alerts=engine, slos=slos
    )


def _print_model_health(monitor, provenance: list[dict]) -> None:
    from .obs import ModelHealthSummary, format_model_health

    health = ModelHealthSummary(
        windows=monitor.window_records(),
        drifts=monitor.drift_records(),
        alerts=monitor.alerts.alert_records() if monitor.alerts else [],
        provenance=provenance,
    )
    print()
    print(format_model_health(health))


def cmd_forecast(args: argparse.Namespace) -> int:
    train, test = _load_trace(args)
    forecaster = _build_forecaster(args.model, args.context, args.horizon, args.epochs, args.seed,
                                   dtype=getattr(args, "dtype", None))
    forecaster.fit(train.values)
    context = test.values[: args.context]
    fc = forecaster.predict(context, start_index=len(train.values))
    actual = test.values[args.context : args.context + args.horizon]
    print(f"# {args.model} forecast on {args.trace} (horizon {args.horizon})")
    print(f"{'step':>4} {'q0.5':>10} {'q0.9':>10} {'actual':>10}")
    for t in range(args.horizon):
        print(f"{t:>4} {fc.at(0.5)[t]:>10.1f} {fc.at(0.9)[t]:>10.1f} {actual[t]:>10.1f}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Closed-loop evaluation of one robust scaling strategy.

    The planner is driven by an :class:`AutoscalingRuntime` over the test
    split (reactive fallback until a full context exists, then committed
    predictive plans), and the resulting allocation series is replayed on
    the simulated cluster so QoS violations include warm-up effects.
    With ``--telemetry`` the whole run streams spans and counters to a
    JSONL file that ``repro-autoscale report`` can summarise.
    """
    from .core import AutoscalingRuntime
    from .core.plan import ScalingPlan, evaluate_plan
    from .simulator import replay_plan

    train, test = _load_trace(args)
    forecaster = _build_forecaster(args.model, args.context, args.horizon, args.epochs, args.seed,
                                   dtype=getattr(args, "dtype", None))
    forecaster.fit(train.values)
    if args.inject_shift:
        from .traces.anomalies import inject_level_shift

        shift_start, shift_magnitude = _parse_shift(args.inject_shift)
        test = inject_level_shift(test, shift_start, shift_magnitude)
    if args.adaptive:
        policy = UncertaintyAwarePolicy(
            args.quantile_low, args.quantile, uncertainty_threshold=args.uncertainty_threshold
        )
    else:
        policy = FixedQuantilePolicy(args.quantile)
    scaler = RobustPredictiveAutoscaler(forecaster, args.threshold, policy)
    faults = _parse_faults(args)
    observed = test.values
    planner = scaler
    telemetry_faults: dict[str, int] = {}
    if faults:
        from .faults import FlakyPlanner, corrupt_series

        # Fault times in the spec are test-relative; the planner sees
        # absolute indices, so shift its schedule lookups by len(train).
        observed, telemetry_faults = corrupt_series(test.values, faults)
        planner = FlakyPlanner(scaler, faults, time_offset=len(train.values))
    runtime = AutoscalingRuntime(
        planner=planner,
        context_length=args.context,
        horizon=args.horizon,
        threshold=args.threshold,
        start_tick=len(train.values),
        invalid_policy="impute" if faults else "raise",
    )
    monitor = None
    if _monitoring_enabled(args):
        monitor = _build_monitor(args)
        runtime.monitor = monitor
        runtime.record_provenance = True
    allocations = runtime.run(observed)
    committed = ScalingPlan(
        nodes=allocations, threshold=args.threshold, strategy=scaler.name
    )
    # QoS is always judged against the *true* workload — corrupted
    # telemetry changes what the loop believed, not what it had to serve.
    report = evaluate_plan(committed, test.values)
    replay = replay_plan(committed, test.values, faults=faults)
    fallback_intervals = min(args.context, len(test.values))
    violations = sum(o.violated for o in replay.outcomes)
    print(f"strategy            : {scaler.name}")
    print(f"under-provisioning  : {report.under_provisioning_rate:.4f}")
    print(f"over-provisioning   : {report.over_provisioning_rate:.4f}")
    print(f"total node-steps    : {report.total_nodes}")
    print(f"minimum node-steps  : {report.minimum_nodes}")
    predictive_plans = sum(
        d.source != "reactive-fallback" for d in runtime.decisions
    )
    print(f"planning decisions  : {predictive_plans}")
    print(f"fallback intervals  : {fallback_intervals}")
    print(f"QoS violations      : {violations} "
          f"({replay.violation_rate:.1%}, {replay.warmup_limited_violations} warm-up limited)")
    print(f"node-hours consumed : {replay.total_node_seconds / 3600:.0f}")
    if faults:
        injected = ", ".join(
            f"{kind}={count}" for kind, count in sorted(telemetry_faults.items())
        )
        print(f"faults injected     : {len(faults)} scheduled "
              f"(telemetry: {injected or 'none'})")
        print(f"invalid observations: {runtime.invalid_observations} "
              f"(imputed)")
        print(f"planner errors      : {runtime.planner_errors} "
              f"({runtime.degraded_intervals} degraded intervals)")
        print(f"actuation failures  : {replay.node_failures} crashes, "
              f"{replay.provision_failures} provision, "
              f"{replay.warmup_failures} warm-up")
    if monitor is not None:
        _print_model_health(monitor, runtime.provenance)
    return 0


def cmd_backtest(args: argparse.Namespace) -> int:
    """Rolling-origin forecast evaluation over the test split.

    With ``--jobs N`` the decision windows are fanned out across N
    worker processes; the per-window sampler reseeding makes the result
    bit-identical to ``--jobs 1`` (see :func:`repro.evaluation.backtest`).
    """
    from .evaluation.backtest import backtest
    from .evaluation.report import format_table

    train, test = _load_trace(args)
    forecaster = _build_forecaster(args.model, args.context, args.horizon, args.epochs, args.seed,
                                   dtype=getattr(args, "dtype", None))
    forecaster.fit(train.values)
    levels = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
    monitor = _build_monitor(args) if _monitoring_enabled(args) else None
    result = backtest(
        forecaster,
        test.values,
        args.context,
        args.horizon,
        levels,
        series_start_index=len(train.values),
        n_jobs=args.jobs,
        monitor=monitor,
    )
    print(f"windows evaluated   : {result.num_windows}")
    print(f"steps scored        : {len(result.merged_actual)}")
    print(format_table([result.report(args.model, args.trace)]))
    if monitor is not None:
        _print_model_health(monitor, [])
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Summarise a telemetry file produced with ``--telemetry``."""
    from .obs import (
        format_model_health,
        format_summary,
        read_jsonl,
        summarize_model_health,
        summarize_records,
    )

    try:
        records = read_jsonl(args.path)
    except OSError as error:
        print(f"cannot read telemetry file: {error}", file=sys.stderr)
        return 2
    except UnicodeDecodeError:
        print(
            f"cannot read telemetry file: {args.path} is not a text file "
            f"(expected JSON lines written by --telemetry)",
            file=sys.stderr,
        )
        return 2
    if not records:
        print(
            f"no telemetry records in {args.path} — the file is empty, "
            f"contains no valid JSON lines, or the run that wrote it was "
            f"interrupted before any event was flushed",
            file=sys.stderr,
        )
        return 1
    print(format_summary(summarize_records(records)))
    health = summarize_model_health(records)
    if health:
        print()
        print(format_model_health(health))
    if args.traces:
        from .obs import render_trace_timeline

        traces = [r for r in records if r.get("kind") == "trace"]
        if not traces:
            print()
            print("no trace records in this telemetry file "
                  "(traces are captured by `serve` and traced runs)")
        for record in traces[-args.traces :]:
            print()
            print(render_trace_timeline(record))
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard over a running daemon's control plane."""
    from .service import run_dashboard

    port = args.port
    if args.port_file:
        from pathlib import Path

        try:
            port = int(Path(args.port_file).read_text().strip())
        except (OSError, ValueError) as error:
            print(f"cannot read port file: {error}", file=sys.stderr)
            return 2
    if port is None:
        print("need --port or --port-file to find the daemon", file=sys.stderr)
        return 2
    return run_dashboard(
        args.host, port, interval=args.interval, once=args.once,
        width=args.width,
    )


def cmd_compare(args: argparse.Namespace) -> int:
    train, test = _load_trace(args)
    rows = []
    for scaler in (ReactiveMaxScaler(), ReactiveAvgScaler()):
        ev = evaluate_strategy(scaler, test.values, args.context, args.horizon, args.threshold)
        rows.append((scaler.name, ev.report, None))
    forecaster = _build_forecaster("tft", args.context, args.horizon, args.epochs, args.seed)
    forecaster.fit(train.values)
    for tau in (0.5, 0.8, 0.9, 0.95):
        scaler = RobustPredictiveAutoscaler(forecaster, args.threshold, FixedQuantilePolicy(tau))
        monitor = _build_monitor(args) if args.monitor else None
        on_window = _monitor_feeder(monitor) if monitor is not None else None
        ev = evaluate_strategy(
            scaler, test.values, args.context, args.horizon, args.threshold,
            series_start_index=len(train.values), on_window=on_window,
        )
        rows.append((f"TFT-{tau}", ev.report, monitor))
    header = f"{'strategy':<16} {'under':>8} {'over':>8} {'nodes':>8}"
    if args.monitor:
        header += f" {'cal.err':>8} {'drift':>6}"
    print(header)
    for name, report, monitor in rows:
        row = (
            f"{name:<16} {report.under_provisioning_rate:>8.4f} "
            f"{report.over_provisioning_rate:>8.4f} {report.total_nodes:>8}"
        )
        if args.monitor:
            if monitor is not None and monitor.windows:
                mean_cal = float(
                    np.mean([w.calibration_error for w in monitor.windows])
                )
                row += f" {mean_cal:>8.3f} {len(monitor.drift_events):>6}"
            else:
                row += f" {'-':>8} {'-':>6}"
        print(row)
    return 0


def _monitor_feeder(monitor):
    """An ``evaluate_strategy`` on_window callback feeding a health monitor."""

    def on_window(point, plan, actual_window):
        levels = plan.metadata.get("forecast_levels")
        values = plan.metadata.get("forecast_values")
        if levels is None or values is None:
            return
        for h in range(min(plan.horizon, len(actual_window))):
            monitor.observe(
                levels, values[:, h], actual_window[h], time_index=point + h
            )

    return on_window


def cmd_simulate(args: argparse.Namespace) -> int:
    """Closed-loop run: runtime + forecaster + simulated cluster."""
    from .core import AutoscalingRuntime
    from .core.plan import required_nodes
    from .simulator import DisaggregatedCluster, SharedStorage, Simulation

    train, test = _load_trace(args)
    forecaster = _build_forecaster(
        args.model, args.context, args.horizon, args.epochs, args.seed,
        dtype=getattr(args, "dtype", None),
    )
    forecaster.fit(train.values)
    planner = RobustPredictiveAutoscaler(
        forecaster, args.threshold, FixedQuantilePolicy(args.quantile)
    )
    runtime = AutoscalingRuntime(
        planner=planner,
        context_length=args.context,
        horizon=args.horizon,
        threshold=args.threshold,
        replan_every=args.replan_every,
        start_tick=len(train.values),
    )
    simulation = Simulation()
    cluster = DisaggregatedCluster(
        simulation,
        SharedStorage(checkpoint_gb=args.checkpoint_gb, seed=args.seed),
        initial_nodes=1,
    )
    interval = 600.0
    violations = 0
    for workload in test.values:
        cluster.scale_to(runtime.target_nodes())
        start = simulation.now
        simulation.run(until=start + interval)
        serving = sum(
            node.serving_seconds(start, simulation.now) for node in cluster.nodes
        )
        if workload / max(serving / interval, 1e-9) > args.threshold:
            violations += 1
        runtime.observe(workload)
    steps = len(test.values)
    ideal = int(required_nodes(test.values, args.threshold).sum())
    print(f"intervals simulated : {steps}")
    predictive_plans = sum(
        d.source != "reactive-fallback" for d in runtime.decisions
    )
    print(f"planning decisions  : {predictive_plans}")
    print(f"violations          : {violations} ({violations / steps:.1%})")
    print(f"node-hours consumed : {cluster.total_node_seconds() / 3600:.0f}")
    print(f"oracle node-hours   : {ideal * interval / 3600:.0f}")
    print(f"scale events        : {cluster.scale_out_events} out / "
          f"{cluster.scale_in_events} in")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Chaos run: the closed loop, clean vs under a fault schedule.

    Scores the graceful-degradation machinery end to end: telemetry
    corruption is imputed away, planner crashes degrade to the reactive
    fallback, actuation failures hit the simulated cluster — and the
    whole faulted run must be bit-identical when repeated.  Exits
    non-zero if the repeat diverges or the violation-rate regression
    exceeds ``--max-regression``.
    """
    from .evaluation.chaos import chaos_run, format_chaos_report
    from .faults import FaultSchedule

    train, test = _load_trace(args)
    forecaster = _build_forecaster(
        args.model, args.context, args.horizon, args.epochs, args.seed,
        dtype=getattr(args, "dtype", None),
    )
    forecaster.fit(train.values)
    scaler = RobustPredictiveAutoscaler(
        forecaster, args.threshold, FixedQuantilePolicy(args.quantile)
    )
    faults = _parse_faults(args)
    if faults is None:
        faults = FaultSchedule.random(
            length=len(test.values),
            rates=DEFAULT_CHAOS_RATES,
            seed=args.fault_seed,
        )
    report = chaos_run(
        lambda: scaler,
        test.values,
        context_length=args.context,
        horizon=args.horizon,
        threshold=args.threshold,
        faults=faults,
        replan_every=args.replan_every,
        start_index=len(train.values),
        monitor_factory=(
            (lambda: _build_monitor(args)) if _monitoring_enabled(args) else None
        ),
    )
    print(format_chaos_report(report))
    if report.deterministic is False:
        print("chaos run is non-deterministic", file=sys.stderr)
        return 1
    if (
        args.max_regression is not None
        and report.violation_regression > args.max_regression
    ):
        print(
            f"violation regression {report.violation_regression:.3f} exceeds "
            f"--max-regression {args.max_regression:.3f}",
            file=sys.stderr,
        )
        return 1
    return 0


#: Args embedded into every checkpoint so ``serve --restore`` rebuilds
#: the planner, monitor, and default source identically.
_SERVE_CONFIG_KEYS = (
    "trace", "days", "seed", "context", "horizon", "epochs", "threshold",
    "model", "quantile", "replan_every", "monitor", "monitor_window",
    "alert", "slo", "faults", "source", "follow", "dtype",
    "adapt", "shadow_window", "promote_policy", "refit_epochs",
    "adapt_cooldown",
)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the closed loop as an always-on daemon.

    Telemetry ticks stream in (from a file, or an in-process replay of
    the synthetic trace's test split), every tick drives one
    :meth:`~repro.core.runtime.AutoscalingRuntime.step`, and a
    stdlib HTTP control plane serves live state.  ``--restore`` resumes
    from a checkpoint: the planner is rebuilt from the checkpoint's
    embedded config (so CLI trace/model flags are ignored), dynamic
    state is loaded, and the source is fast-forwarded — subsequent
    decisions are bit-identical to an uninterrupted run.
    """
    import asyncio
    from pathlib import Path

    from .core import AutoscalingRuntime
    from .obs import TraceCollector
    from .service import (
        FileTailSource,
        GeneratorSource,
        ServiceRuntime,
        load_checkpoint,
        restore_from_checkpoint,
    )

    state = None
    if args.restore:
        try:
            state = load_checkpoint(args.restore)
        except (FileNotFoundError, ValueError) as error:
            print(str(error), file=sys.stderr)
            return 2
        # The checkpoint's config is authoritative for everything that
        # shapes the planner/monitor/source — mixing a restored loop
        # with different flags would silently break bit-identity.
        for key, value in state.get("config", {}).items():
            setattr(args, key, value)

    config = {key: getattr(args, key, None) for key in _SERVE_CONFIG_KEYS}

    train, test = _load_trace(args)
    forecaster = _build_forecaster(
        args.model, args.context, args.horizon, args.epochs, args.seed,
        dtype=getattr(args, "dtype", None),
    )
    # With checkpointed weights the (expensive) fit is skipped; models
    # without weight persistence refit deterministically from the seed.
    has_weights = (
        state is not None
        and state.get("model_file")
        and hasattr(forecaster, "load")
    )
    if not has_weights:
        forecaster.fit(train.values)
    scaler = RobustPredictiveAutoscaler(
        forecaster, args.threshold, FixedQuantilePolicy(args.quantile)
    )
    faults = _parse_faults(args)
    planner = scaler
    observed = test.values
    if faults:
        from .faults import FlakyPlanner, corrupt_series

        observed, _ = corrupt_series(test.values, faults)
        planner = FlakyPlanner(scaler, faults, time_offset=len(train.values))
    runtime = AutoscalingRuntime(
        planner=planner,
        context_length=args.context,
        horizon=args.horizon,
        threshold=args.threshold,
        replan_every=args.replan_every,
        start_tick=len(train.values),
        invalid_policy="impute" if faults else "raise",
    )
    if _monitoring_enabled(args):
        runtime.monitor = _build_monitor(args)
        runtime.record_provenance = True

    adaptation = None
    if getattr(args, "adapt", False):
        from .adaptation import AdaptationManager

        try:
            adaptation = AdaptationManager(
                runtime,
                policy=getattr(args, "promote_policy", None),
                shadow_window=getattr(args, "shadow_window", 96),
                refit_epochs=getattr(args, "refit_epochs", None),
                cooldown=getattr(args, "adapt_cooldown", 48),
            )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        # Seed the refit history with the training tail so an early
        # drift alert has material to retrain on (a restore overwrites
        # this with the checkpointed history).
        for value in train.values[-adaptation.history.maxlen :]:
            adaptation.history.append(float(value))

    if args.source:
        source = FileTailSource(args.source, follow=args.follow)
    else:
        source = GeneratorSource(observed)

    if state is not None:
        try:
            position = restore_from_checkpoint(
                args.restore,
                runtime=runtime,
                planner=planner,
                adaptation=adaptation,
            )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        source.seek(position)
        print(f"restored from {args.restore} at tick {runtime.tick} "
              f"(source position {position})", file=sys.stderr)

    service = ServiceRuntime(
        runtime,
        source,
        port=args.port,
        tick_interval=args.tick_interval,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        checkpoint_at=args.checkpoint_at,
        max_ticks=args.max_ticks,
        config=config,
        decision_log=args.decisions_out,
        adaptation=adaptation,
        tracer=TraceCollector(max_traces=64),
        linger=args.linger,
    )

    async def _serve() -> None:
        task = asyncio.ensure_future(service.run())
        while service.port is None and not task.done():
            await asyncio.sleep(0.01)
        if service.port is not None:
            print(f"serving on http://127.0.0.1:{service.port}", flush=True)
            if args.port_file:
                Path(args.port_file).write_text(str(service.port))
        await task

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    print(f"processed {service.ticks_processed} ticks "
          f"({len(runtime.decisions)} decisions, "
          f"{service.checkpoints_written} checkpoints, "
          f"{service.alert_replans} alert replans)", file=sys.stderr)
    if adaptation is not None:
        print(f"adaptation: {adaptation.refits} refits, "
              f"{adaptation.promotions} promotions, "
              f"{adaptation.rollbacks} rollbacks, "
              f"{adaptation.rejections} rejections "
              f"(state: {adaptation.state})", file=sys.stderr)
    return 0


_MODELS = ["tft", "deepar", "mlp", "arima", "naive"]


def _common_parent() -> argparse.ArgumentParser:
    """Trace/model-shape/telemetry flags shared by every loop command.

    Parent parsers (``add_help=False``) keep the flag surface identical
    across ``evaluate``/``backtest``/``chaos``/``serve`` — one
    definition, one help text, one default.
    """
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--trace", choices=sorted(TRACES), default="alibaba")
    p.add_argument("--days", type=int, default=14, help="trace length in days")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--context", type=int, default=72, help="context steps (10 min each)")
    p.add_argument("--horizon", type=int, default=72, help="forecast steps")
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--threshold", type=float, default=60.0, help="per-node workload threshold")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="stream telemetry events (spans, counters, gauges, "
                        "histograms) to PATH as JSON lines")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for commands that fan out "
                        "(backtest); results are bit-identical to a "
                        "serial run and worker telemetry is merged")
    p.add_argument("--dtype", choices=("float64", "float32"), default="float64",
                   help="inference kernel precision: float64 (default) is "
                        "bitwise-reproducible; float32 is faster with a "
                        "small, gate-checked accuracy delta (docs/nn.md)")
    return p


def _monitoring_parent() -> argparse.ArgumentParser:
    """Model-health monitoring flags (evaluate/backtest/compare/chaos/serve)."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--monitor", action="store_true",
                   help="track model health online: windowed quantile "
                        "calibration, rolling wQL/MAPE, drift detection, "
                        "alerts, and per-decision provenance")
    p.add_argument("--monitor-window", type=int, default=24,
                   help="steps per calibration window (default 24)")
    p.add_argument("--alert", action="append", metavar="RULE",
                   help="extra alert rule, e.g. 'coverage@0.9 < 0.8 for 12' "
                        "or 'drift_score > 25' (repeatable)")
    p.add_argument("--slo", action="append", metavar="SPEC",
                   help="service-level objective with error-budget burn-rate "
                        "alerting, e.g. 'qos_violation_rate < 0.05 over 288', "
                        "'coverage@0.9 >= 0.85 over 144', or "
                        "'plan_latency_p99 < 0.5s' (repeatable; implies "
                        "--monitor)")
    return p


def _faults_parent() -> argparse.ArgumentParser:
    """Fault-injection flag (evaluate/chaos/serve)."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="fault schedule, e.g. 'nan@12,spike@30:8,"
                        "planner_error@90,node_crash@50' (times are "
                        "test-relative intervals; see repro.faults)")
    return p


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-autoscale",
        description="Robust predictive auto-scaling for cloud databases (ICDE 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = _common_parent()
    monitoring = _monitoring_parent()
    faults = _faults_parent()

    p_forecast = sub.add_parser(
        "forecast", help="print a quantile forecast vs actuals",
        parents=[common],
    )
    p_forecast.add_argument("--model", default="tft", choices=_MODELS)
    p_forecast.set_defaults(func=cmd_forecast)

    p_eval = sub.add_parser(
        "evaluate", help="evaluate one robust scaling strategy",
        parents=[common, monitoring, faults],
    )
    p_eval.add_argument("--model", default="tft", choices=_MODELS)
    p_eval.add_argument("--quantile", type=float, default=0.9)
    p_eval.add_argument("--adaptive", action="store_true",
                        help="use the uncertainty-aware adaptive policy")
    p_eval.add_argument("--quantile-low", type=float, default=0.7,
                        help="optimistic level for --adaptive")
    p_eval.add_argument("--uncertainty-threshold", type=float, default=100.0)
    p_eval.add_argument("--inject-shift", metavar="START:MAGNITUDE", default=None,
                        help="inject a permanent level shift into the test "
                            "split at test-relative step START (stress the "
                            "monitors with a regime change)")
    p_eval.set_defaults(func=cmd_evaluate)

    p_bt = sub.add_parser(
        "backtest", help="rolling-origin forecast evaluation (Table I metrics)",
        parents=[common, monitoring],
    )
    p_bt.add_argument("--model", default="deepar", choices=_MODELS)
    p_bt.set_defaults(func=cmd_backtest)

    p_cmp = sub.add_parser(
        "compare", help="compare reactive and robust strategies",
        parents=[common, monitoring],
    )
    p_cmp.set_defaults(func=cmd_compare)

    p_sim = sub.add_parser(
        "simulate", help="closed-loop run on the simulated cluster",
        parents=[common],
    )
    p_sim.add_argument("--model", default="naive", choices=_MODELS)
    p_sim.add_argument("--quantile", type=float, default=0.9)
    p_sim.add_argument("--replan-every", type=int, default=None,
                       help="re-plan cadence in intervals (default: horizon)")
    p_sim.add_argument("--checkpoint-gb", type=float, default=4.0,
                       help="in-memory state rebuilt on scale-out")
    p_sim.set_defaults(func=cmd_simulate)

    p_chaos = sub.add_parser(
        "chaos", help="closed-loop run under an injected fault schedule",
        parents=[common, monitoring, faults],
    )
    p_chaos.add_argument("--model", default="naive", choices=_MODELS)
    p_chaos.add_argument("--quantile", type=float, default=0.9)
    p_chaos.add_argument("--replan-every", type=int, default=None,
                         help="re-plan cadence in intervals (default: horizon)")
    p_chaos.add_argument("--fault-seed", type=int, default=0,
                         help="seed for the default random fault schedule "
                              "(used when --faults is not given)")
    p_chaos.add_argument("--max-regression", type=float, default=None,
                         metavar="RATE",
                         help="fail (exit 1) if the faulted violation rate "
                              "exceeds the clean one by more than RATE")
    p_chaos.set_defaults(func=cmd_chaos)

    p_serve = sub.add_parser(
        "serve", help="run the closed loop as a daemon with an HTTP control plane",
        parents=[common, monitoring, faults],
    )
    p_serve.add_argument("--model", default="naive", choices=_MODELS)
    p_serve.add_argument("--quantile", type=float, default=0.9)
    p_serve.add_argument("--replan-every", type=int, default=None,
                         help="re-plan cadence in intervals (default: horizon)")
    p_serve.add_argument("--source", metavar="PATH", default=None,
                         help="telemetry tick file (bare numbers or "
                              "{\"value\": ...} JSONL); default: replay the "
                              "synthetic trace's test split in-process")
    p_serve.add_argument("--follow", action="store_true",
                         help="with --source, keep tailing the file for "
                              "appended ticks instead of stopping at EOF")
    p_serve.add_argument("--port", type=int, default=0,
                         help="control-plane port (default 0: ephemeral)")
    p_serve.add_argument("--port-file", metavar="PATH", default=None,
                         help="write the bound port to PATH once serving "
                              "(lets scripts find an ephemeral port)")
    p_serve.add_argument("--tick-interval", type=float, default=0.0,
                         help="seconds between steps (0: replay at full speed)")
    p_serve.add_argument("--max-ticks", type=int, default=None,
                         help="stop after processing N ticks this session")
    p_serve.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                         help="where POST /checkpoint and automatic "
                              "checkpoints write")
    p_serve.add_argument("--checkpoint-every", type=int, default=None,
                         metavar="N", help="checkpoint every N ticks")
    p_serve.add_argument("--checkpoint-at", type=int, default=None,
                         metavar="N",
                         help="checkpoint once after the Nth tick of this "
                              "session (deterministic restore-test hook)")
    p_serve.add_argument("--restore", metavar="CKPT", default=None,
                         help="resume from a checkpoint directory; planner "
                              "config is taken from the checkpoint and "
                              "subsequent decisions are bit-identical to an "
                              "uninterrupted run")
    p_serve.add_argument("--decisions-out", metavar="PATH", default=None,
                         help="append every committed decision to PATH as "
                              "crash-safe JSON lines")
    p_serve.add_argument("--linger", type=float, default=0.0,
                         help="keep the control plane up N seconds after "
                              "the tick stream ends")
    p_serve.add_argument("--adapt", action="store_true",
                         help="close the drift→adaptation loop: health "
                              "alerts trigger a warm-started refit, the "
                              "candidate shadows the live model, and a "
                              "canary policy promotes or rolls it back "
                              "(implies --monitor)")
    p_serve.add_argument("--shadow-window", type=int, default=96,
                         metavar="N",
                         help="max ticks a candidate may shadow without "
                              "earning promotion before it is rejected "
                              "(default 96)")
    p_serve.add_argument("--promote-policy", metavar="SPEC", default=None,
                         help="canary promotion policy, e.g. "
                              "'wql<=0.95 cal<=0.1 soak=2 guard=4' "
                              "(see docs/adaptation.md)")
    p_serve.add_argument("--refit-epochs", type=int, default=None,
                         metavar="N",
                         help="epoch budget for warm refits (default: the "
                              "model's configured epochs with early "
                              "stopping)")
    p_serve.add_argument("--adapt-cooldown", type=int, default=48,
                         metavar="N",
                         help="ticks after a rejection/rollback before "
                              "alert-driven refits resume (default 48)")
    p_serve.set_defaults(func=cmd_serve)

    p_report = sub.add_parser(
        "report", help="summarise a telemetry file written with --telemetry"
    )
    p_report.add_argument("path", help="JSON-lines telemetry file")
    p_report.add_argument("--traces", type=int, default=0, metavar="N",
                          help="also render timelines for the last N step "
                               "traces in the file")
    p_report.set_defaults(func=cmd_report)

    p_top = sub.add_parser(
        "top", help="live terminal dashboard over a running daemon"
    )
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=None,
                       help="control-plane port of the daemon")
    p_top.add_argument("--port-file", metavar="PATH", default=None,
                       help="read the port from a file written by "
                            "`serve --port-file`")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between refreshes (default 2)")
    p_top.add_argument("--once", action="store_true",
                       help="print a single frame and exit (no ANSI "
                            "clearing; for scripts and smoke tests)")
    p_top.add_argument("--width", type=int, default=80,
                       help="frame width in columns (default 80)")
    p_top.set_defaults(func=cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    telemetry = getattr(args, "telemetry", None)
    if telemetry is None:
        return args.func(args)

    from .obs import JsonlSink, MetricsRegistry, using_registry

    registry = MetricsRegistry()
    try:
        sink = JsonlSink(telemetry)
    except OSError as error:
        print(f"cannot open telemetry file: {error}", file=sys.stderr)
        return 2
    registry.add_sink(sink)
    try:
        with using_registry(registry):
            return args.func(args)
    finally:
        sink.close()
        print(f"telemetry: {sink.records_written} events -> {telemetry}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
