"""First-order optimizers and learning-rate schedules.

The paper trains every neural forecaster with a learning rate of 1e-3
(Section IV-A); Adam with that default is the workhorse here.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "StepLR", "CosineLR"]


class Optimizer:
    """Base optimizer holding a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            param.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm; useful for logging training stability.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total


class StepLR:
    """Multiply the optimizer's lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch += 1
        self.optimizer.lr = self._base_lr * self.gamma ** (self._epoch // self.step_size)


class CosineLR:
    """Cosine annealing from the base lr down to ``min_lr`` over ``total`` epochs."""

    def __init__(self, optimizer: Optimizer, total: int, min_lr: float = 1e-5) -> None:
        self.optimizer = optimizer
        self.total = max(total, 1)
        self.min_lr = min_lr
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.total)
        cos = 0.5 * (1.0 + np.cos(np.pi * self._epoch / self.total))
        self.optimizer.lr = self.min_lr + (self._base_lr - self.min_lr) * cos
