"""Tape-free inference kernels: raw-numpy forwards for the hot layers.

Training needs the autograd tape; inference does not.  Even under
:class:`~repro.nn.tensor.no_grad` the Tensor ops still pay per-op object
construction, closure definition, and broadcasting bookkeeping — on the
small models used for workload forecasting that overhead dominates the
actual arithmetic.  This module provides raw ``ndarray -> ndarray``
kernels that compute *exactly* the same float64 operations in the same
order as the Tensor path, so outputs are numerically identical, without
building any Tensor objects.

Dispatch is automatic: :class:`~repro.nn.layers.Linear`,
:class:`~repro.nn.layers.LayerNorm`, :class:`~repro.nn.layers.GatedLinearUnit`,
:class:`~repro.nn.layers.GatedResidualNetwork`,
:class:`~repro.nn.attention.InterpretableMultiHeadAttention`,
:class:`~repro.nn.rnn.LSTMCell`, and :class:`~repro.nn.rnn.LSTM` check
:func:`should_use_fast_path` at the top of ``forward`` and route through
these kernels whenever gradients are disabled.  The result is wrapped
back into a constant Tensor so callers never see the difference.  Code
that wants to stay on raw arrays end to end (DeepAR's ancestral
sampling) calls the modules' ``fast_forward`` / ``fast_step`` methods
directly and skips Tensor wrapping entirely.

``use_fast_path(False)`` forces the tape path even under ``no_grad`` —
used by the parity tests and the perf benchmarks to compare both
implementations.
"""

from __future__ import annotations

import numpy as np

from .tensor import is_grad_enabled

__all__ = [
    "use_fast_path",
    "fast_path_enabled",
    "should_use_fast_path",
    "sigmoid",
    "tanh",
    "relu",
    "softplus",
    "softmax",
    "linear_forward",
    "layer_norm",
    "glu_forward",
    "grn_forward",
    "prepare_attention_params",
    "interpretable_attention",
    "lstm_cell_forward",
    "lstm_cell_permuted",
    "prepare_lstm_params",
    "lstm_forward",
    "lstm_step",
]

_FAST_PATH_ENABLED = True


class use_fast_path:
    """Context manager to force the fast path on or off.

    The default is on; disabling is only useful for parity testing and
    for benchmarking the tape path.
    """

    def __init__(self, enabled: bool) -> None:
        self._enabled = bool(enabled)

    def __enter__(self) -> "use_fast_path":
        global _FAST_PATH_ENABLED
        self._prev = _FAST_PATH_ENABLED
        _FAST_PATH_ENABLED = self._enabled
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _FAST_PATH_ENABLED
        _FAST_PATH_ENABLED = self._prev


def fast_path_enabled() -> bool:
    """Whether the fast path is globally enabled (default True)."""
    return _FAST_PATH_ENABLED


def should_use_fast_path() -> bool:
    """True when a layer forward should dispatch to the raw kernels.

    The fast path is only valid when no gradient tape is being recorded;
    the global switch exists so tests and benchmarks can pin the tape
    path.
    """
    return _FAST_PATH_ENABLED and not is_grad_enabled()


# ---------------------------------------------------------------------------
# Elementwise kernels — bitwise-identical to the Tensor implementations.
# ---------------------------------------------------------------------------
def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic; bitwise-identical to ``Tensor.sigmoid``.

    The Tensor path evaluates both ``np.where`` branches in full (three
    clips, three exps, and an expensive element select).  Here a single
    ``t = exp(-|clip(x)|)`` feeds both branches: for ``x >= 0`` it
    equals ``exp(-clip(x))`` so the positive branch is ``1 / (1 + t)``,
    and for ``x < 0`` it equals ``exp(clip(x))`` so the negative branch
    is ``t / (1 + t)``.  The branch select collapses into a single
    ``maximum``: ``u = max(t, [x >= 0])`` is 1 on the positive branch
    (``t <= 1`` always) and ``t`` on the negative branch (``t >= 0``
    always), so ``u / (1 + t)`` reproduces ``np.where``'s result exactly
    with one exp, one divide, and no select pass.
    """
    t = np.exp(-np.abs(np.clip(x, -500, 500)))
    # The branch mask is built in t's dtype: for float64 the values are
    # identical to the old `(x >= 0) * 1.0`, and float32 inputs stay
    # float32 instead of being promoted by the python-float multiply.
    u = np.maximum(t, (x >= 0).astype(t.dtype))
    return u / (1.0 + t)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def relu(x: np.ndarray) -> np.ndarray:
    return x * (x > 0)


def softplus(x: np.ndarray) -> np.ndarray:
    """log(1 + exp(x)), stable; mirrors ``Tensor.softplus`` exactly."""
    return np.logaddexp(0.0, x)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax; bitwise-identical to ``Tensor.softmax``.

    Same max-subtraction composition as the tape op (``exp(x - max)``
    normalised by its sum), so every element matches bit for bit.
    """
    exp = np.exp(x - x.max(axis=axis, keepdims=True))
    return exp / exp.sum(axis=axis, keepdims=True)


# ---------------------------------------------------------------------------
# Layer kernels
# ---------------------------------------------------------------------------
def _cast(array: np.ndarray | None, dtype: np.dtype | type | None) -> np.ndarray | None:
    """Cast an array for the float32 inference mode; ``None`` is a no-op."""
    if array is None or dtype is None:
        return array
    return array.astype(dtype, copy=False)


def linear_forward(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None) -> np.ndarray:
    """``x @ W (+ b)`` on raw arrays; same op order as ``Linear.forward``."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float,
    dtype: np.dtype | type | None = None,
) -> np.ndarray:
    """LayerNorm over the last axis; mirrors ``LayerNorm.forward`` exactly.

    The mean is computed as ``sum * (1/n)`` — the tape's ``Tensor.mean``
    composition — not ``np.mean``, so float64 results are bitwise
    identical.  ``dtype=np.float32`` casts the input and affine
    parameters once for the single-precision inference mode.
    """
    x = _cast(x, dtype)
    gamma = _cast(gamma, dtype)
    beta = _cast(beta, dtype)
    n = x.shape[-1]
    mu = x.sum(axis=-1, keepdims=True) * (1.0 / n)
    centered = x - mu
    var = (centered * centered).sum(axis=-1, keepdims=True) * (1.0 / n)
    normed = centered / np.sqrt(var + eps)
    return normed * gamma + beta


def glu_forward(
    x: np.ndarray,
    w_gate: np.ndarray,
    b_gate: np.ndarray,
    w_value: np.ndarray,
    b_value: np.ndarray,
    dtype: np.dtype | type | None = None,
) -> np.ndarray:
    """GLU(x) = sigmoid(x W1 + b1) * (x W2 + b2) on raw arrays.

    Same gemm/sigmoid/multiply order as ``GatedLinearUnit.forward``.
    """
    x = _cast(x, dtype)
    gate = sigmoid(linear_forward(x, _cast(w_gate, dtype), _cast(b_gate, dtype)))
    return gate * linear_forward(x, _cast(w_value, dtype), _cast(b_value, dtype))


def grn_forward(
    x: np.ndarray,
    w_fc1: np.ndarray,
    b_fc1: np.ndarray,
    w_fc2: np.ndarray,
    b_fc2: np.ndarray,
    w_gate: np.ndarray,
    b_gate: np.ndarray,
    w_value: np.ndarray,
    b_value: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float,
    w_skip: np.ndarray | None = None,
    dtype: np.dtype | type | None = None,
) -> np.ndarray:
    """Gated Residual Network forward (eval mode — dropout is identity).

    Mirrors ``GatedResidualNetwork.forward``: fc1 -> tanh -> fc2 ->
    GLU -> (projected) residual -> LayerNorm.  ``w_skip`` is the
    bias-free residual projection when in/out widths differ.
    """
    x = _cast(x, dtype)
    hidden = linear_forward(
        np.tanh(linear_forward(x, _cast(w_fc1, dtype), _cast(b_fc1, dtype))),
        _cast(w_fc2, dtype),
        _cast(b_fc2, dtype),
    )
    gated = glu_forward(hidden, w_gate, b_gate, w_value, b_value, dtype=dtype)
    residual = x if w_skip is None else x @ _cast(w_skip, dtype)
    return layer_norm(residual + gated, gamma, beta, eps, dtype=dtype)


def prepare_attention_params(
    head_params: list[tuple[np.ndarray, np.ndarray]],
    dtype: np.dtype | type | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-head ``(weight, bias)`` pairs along the output axis.

    Each gemm output column is an independent dot product, so running
    all heads' query (or key) projections as one ``(d_model, H*d_head)``
    matmul produces bitwise-identical columns to H separate per-head
    gemms — the same argument as the LSTM gate permutation.  Prepared
    per call, not cached: optimizers update the arrays in place.
    """
    w_cat = np.concatenate([w for w, _ in head_params], axis=1)
    b_cat = np.concatenate([b for _, b in head_params])
    if dtype is not None:
        w_cat = w_cat.astype(dtype, copy=False)
        b_cat = b_cat.astype(dtype, copy=False)
    return w_cat, b_cat


def interpretable_attention(
    query: np.ndarray,
    key: np.ndarray,
    value: np.ndarray,
    w_q: np.ndarray,
    b_q: np.ndarray,
    w_k: np.ndarray,
    b_k: np.ndarray,
    w_v: np.ndarray,
    b_v: np.ndarray,
    w_out: np.ndarray,
    b_out: np.ndarray,
    num_heads: int,
    mask: np.ndarray | None = None,
    dtype: np.dtype | type | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Interpretable multi-head attention on raw arrays.

    ``w_q``/``w_k`` are the concatenated per-head projections from
    :func:`prepare_attention_params`; the value projection ``w_v`` is
    shared across heads (TFT Sec. 4.4).  Returns
    ``(output (B, Tq, d_model), mean attention (B, Tq, Tk))``.

    Heads are stacked on a leading axis so the score and context matmuls
    run as single H*B-batched gemms instead of a Python loop over heads;
    each 2-D slice is the same gemm the tape's per-head loop issues, and
    the head average is ``sum * (1/H)`` exactly like ``Tensor.stack(...)
    .mean(axis=0)`` — so float64 outputs (and the attention pattern) are
    bitwise-identical to ``InterpretableMultiHeadAttention.forward``.
    """
    query = _cast(query, dtype)
    key = _cast(key, dtype)
    value = _cast(value, dtype)
    batch, t_query, _ = query.shape
    t_key = key.shape[1]
    d_head = w_v.shape[1]
    q_all = linear_forward(query, w_q, b_q)  # (B, Tq, H*dh)
    k_all = linear_forward(key, w_k, b_k)  # (B, Tk, H*dh)
    v = linear_forward(value, _cast(w_v, dtype), _cast(b_v, dtype))  # (B, Tk, dh)
    # Heads-first contiguous stacking: each (h, b) slice is then the
    # exact 2-D gemm the per-head tape loop performs.
    q_heads = np.ascontiguousarray(
        np.moveaxis(q_all.reshape(batch, t_query, num_heads, d_head), 2, 0)
    )
    k_heads = np.ascontiguousarray(
        np.moveaxis(k_all.reshape(batch, t_key, num_heads, d_head), 2, 0)
    )
    # float(): a strong-typed np.float64 scalar would promote float32
    # scores back to float64 under NEP 50.
    scores = (q_heads @ np.swapaxes(k_heads, -1, -2)) * (1.0 / float(np.sqrt(d_head)))
    if mask is not None:
        scores = scores + _cast(mask, dtype)
    weights = softmax(scores, axis=-1)  # (H, B, Tq, Tk)
    heads = weights @ v  # value broadcast across the head axis
    mean_heads = heads.sum(axis=0) * (1.0 / num_heads)
    mean_weights = weights.sum(axis=0) * (1.0 / num_heads)
    out = linear_forward(mean_heads, _cast(w_out, dtype), _cast(b_out, dtype))
    return out, mean_weights


def lstm_cell_forward(
    x: np.ndarray,
    h_prev: np.ndarray,
    c_prev: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
    hidden_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """One fused LSTM step on raw arrays.

    Computes the gates with the same association order as the Tensor
    path (``(x @ w_ih + h @ w_hh) + bias``) so results match bit for
    bit.  Gate layout along the output axis is [input, forget, cell,
    output]; the two sigmoid blocks are evaluated on column slices,
    which is elementwise and therefore order-independent.
    """
    gates = x @ w_ih + h_prev @ w_hh + bias
    hs = hidden_size
    # input and forget gates are adjacent columns -> one sigmoid call;
    # elementwise, so the result per column is unchanged.
    i_f = sigmoid(gates[:, : 2 * hs])
    i_gate = i_f[:, :hs]
    f_gate = i_f[:, hs:]
    g_gate = tanh(gates[:, 2 * hs : 3 * hs])
    o_gate = sigmoid(gates[:, 3 * hs :])
    c_new = f_gate * c_prev + i_gate * g_gate
    h_new = o_gate * tanh(c_new)
    return h_new, c_new


def prepare_lstm_params(
    layer_params: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    hidden_size: int,
    dtype: np.dtype | type | None = None,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Reorder fused gate weights from [i, f, g, o] to [i, f, o, g].

    With the three sigmoid gates adjacent, a cell step needs a single
    sigmoid call over ``3 * hidden`` columns instead of two (the call
    overhead is a large fraction of the cost at these sizes).  Each gemm
    output column is an independent dot product, so permuting weight
    *columns* permutes output columns without changing any value —
    results stay bitwise-identical to the standard layout.

    ``dtype`` optionally casts the prepared weights (float32 inference
    mode); ``None`` keeps the parameters' own dtype — the bitwise-exact
    float64 default.

    Prepared per inference call, not cached: optimizers update parameter
    arrays in place, so a cache keyed on array identity would go stale.
    """
    hs = hidden_size
    prepared = []
    for w_ih, w_hh, bias in layer_params:
        perm = np.concatenate(
            [np.arange(0, 2 * hs), np.arange(3 * hs, 4 * hs), np.arange(2 * hs, 3 * hs)]
        )
        prepared.append(
            (
                np.ascontiguousarray(w_ih[:, perm], dtype=dtype),
                np.ascontiguousarray(w_hh[:, perm], dtype=dtype),
                np.ascontiguousarray(bias[perm], dtype=dtype),
            )
        )
    return prepared


def lstm_cell_permuted(
    x: np.ndarray,
    h_prev: np.ndarray,
    c_prev: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
    hidden_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """LSTM step with [i, f, o, g] gate layout (see :func:`prepare_lstm_params`).

    One sigmoid over the three adjacent sigmoid gates, one tanh over the
    cell gate; all elementwise, so every output element is bitwise equal
    to :func:`lstm_cell_forward` on the standard layout.
    """
    gates = x @ w_ih + h_prev @ w_hh + bias
    hs = hidden_size
    ifo = sigmoid(gates[:, : 3 * hs])
    g_gate = tanh(gates[:, 3 * hs :])
    c_new = ifo[:, hs : 2 * hs] * c_prev + ifo[:, :hs] * g_gate
    h_new = ifo[:, 2 * hs :] * tanh(c_new)
    return h_new, c_new


def lstm_forward(
    x: np.ndarray,
    layer_params: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    hidden_size: int,
    state: list[tuple[np.ndarray, np.ndarray]] | None = None,
    dtype: np.dtype | type | None = None,
) -> tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
    """Fused multi-layer LSTM over a full sequence on raw arrays.

    Parameters
    ----------
    x:
        Input of shape (batch, time, features).
    layer_params:
        Per-layer ``(w_ih, w_hh, bias)`` arrays in standard gate layout.
    state:
        Optional per-layer ``(h, c)`` arrays of shape (batch, hidden).
    dtype:
        ``None`` (default) computes in float64 exactly as before;
        ``np.float32`` casts inputs, weights, and state once and runs
        the whole scan in single precision (see docs/nn.md for the
        measured accuracy/speed trade).

    Keeps ``(h, c)`` as plain ndarrays throughout and writes each step's
    hidden state straight into a preallocated output buffer — no
    per-timestep Python list construction.
    """
    work = np.float64 if dtype is None else np.dtype(dtype)
    x = x.astype(work, copy=False)
    batch, steps, _ = x.shape
    if state is None:
        zeros = np.zeros((batch, hidden_size), dtype=work)
        state = [(zeros.copy(), zeros.copy()) for _ in layer_params]
    else:
        state = [(h.astype(work, copy=False), c.astype(work, copy=False)) for h, c in state]

    layer_input = x
    prepared = prepare_lstm_params(layer_params, hidden_size, dtype=dtype)
    for layer, (w_ih, w_hh, bias) in enumerate(prepared):
        h, c = state[layer]
        outputs = np.empty((batch, steps, hidden_size), dtype=work)
        for t in range(steps):
            h, c = lstm_cell_permuted(layer_input[:, t, :], h, c, w_ih, w_hh, bias, hidden_size)
            outputs[:, t, :] = h
        state[layer] = (h, c)
        layer_input = outputs
    return layer_input, state


def lstm_step(
    x: np.ndarray,
    layer_params: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    hidden_size: int,
    state: list[tuple[np.ndarray, np.ndarray]],
    dtype: np.dtype | type | None = None,
) -> tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
    """Advance a multi-layer LSTM one timestep on raw arrays.

    ``x`` has shape (batch, features); returns the top layer's hidden
    state and the updated per-layer state.  ``layer_params`` is in the
    standard gate layout; ``dtype`` behaves as in :func:`lstm_forward`.
    Callers looping over many steps should instead run
    :func:`prepare_lstm_params` once and call :func:`lstm_cell_permuted`
    per layer (as DeepAR's ancestral sampling does) to amortise the
    permutation.
    """
    work = np.float64 if dtype is None else np.dtype(dtype)
    state = [(h.astype(work, copy=False), c.astype(work, copy=False)) for h, c in state]
    inp = x.astype(work, copy=False)
    prepared = prepare_lstm_params(layer_params, hidden_size, dtype=dtype)
    for layer, (w_ih, w_hh, bias) in enumerate(prepared):
        h, c = state[layer]
        h, c = lstm_cell_permuted(inp, h, c, w_ih, w_hh, bias, hidden_size)
        state[layer] = (h, c)
        inp = h
    return inp, state
