"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the neural-network substrate used by the
probabilistic forecasters (MLP, DeepAR, TFT).  It implements a small,
explicit tape-based autograd: every :class:`Tensor` records the operation
that produced it and closures that propagate gradients to its parents.
Calling :meth:`Tensor.backward` performs a topological sweep over that tape.

The design goals, in order, are correctness, debuggability, and enough
speed to train small forecasting models on workload traces.  All data is
kept in ``float64`` — the models here are tiny, and double precision makes
gradient checks in the test suite tight.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient recording.

    Used during inference (forecast generation, sampling) where building
    the autograd tape would waste memory and time.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def _as_array(value: object) -> np.ndarray:
    """Coerce scalars / lists / arrays into a float64 ndarray."""
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            return value.astype(np.float64)
        return value
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    When a forward op broadcast an operand of ``shape`` up to the result
    shape, the gradient flowing back must be reduced over the broadcast
    axes so it matches the operand again.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload; copied to float64 if necessary.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op")

    def __init__(
        self,
        data: object,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        op: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = tuple(_parents) if self.requires_grad else ()
        self.op = op

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: object) -> "Tensor":
        """Wrap non-tensor operands as constant tensors."""
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        """Build a result tensor, attaching the backward closure if needed."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=parents, op=op)
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones, which is only meaningful for scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar output")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        # Topological order over the tape (iterative to avoid recursion limits).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: object) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other: object) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: object) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: object) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other: object) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward, "pow")

    def __matmul__(self, other: object) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2 else grad * other.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if other.data.ndim == 2 else grad * self.data)
                else:
                    other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return self._make(out_data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return self._make(out_data, (self,), backward, "sqrt")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
            np.exp(np.clip(self.data, -500, 500)) / (1.0 + np.exp(np.clip(self.data, -500, 500))),
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward, "relu")

    def softplus(self) -> "Tensor":
        """log(1 + exp(x)), computed stably; maps reals to positives."""
        out_data = np.logaddexp(0.0, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                sig = np.where(
                    self.data >= 0,
                    1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
                    np.exp(np.clip(self.data, -500, 500))
                    / (1.0 + np.exp(np.clip(self.data, -500, 500))),
                )
                self._accumulate(grad * sig)

        return self._make(out_data, (self,), backward, "softplus")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return self._make(np.abs(self.data), (self,), backward, "abs")

    def clip(self, low: float | None = None, high: float | None = None) -> "Tensor":
        """Clamp values; gradient is passed through inside the active range."""
        out_data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward, "clip")

    def maximum(self, other: object) -> "Tensor":
        """Elementwise max; at ties the gradient goes to ``self``."""
        other = self._lift(other)
        take_self = self.data >= other.data
        out_data = np.where(take_self, self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * take_self)
            if other.requires_grad:
                other._accumulate(grad * ~take_self)

        return self._make(out_data, (self, other), backward, "maximum")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                g = np.expand_dims(g, tuple(a % self.data.ndim for a in axes))
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward, "sum")

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = self.data == expanded
            # Split gradient evenly among tied maxima.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(np.broadcast_to(g, self.data.shape) * mask / counts)

        return self._make(out_data, (self,), backward, "max")

    def var(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return self._make(out_data, (self,), backward, "reshape")

    def transpose(self, *axes: int) -> "Tensor":
        order = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(order)
        inverse = np.argsort(order)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward, "transpose")

    def swapaxes(self, a: int, b: int) -> "Tensor":
        order = list(range(self.data.ndim))
        order[a], order[b] = order[b], order[a]
        return self.transpose(*order)

    def __getitem__(self, index: object) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward, "getitem")

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer: list[object] = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        proto = tensors[0]
        return proto._make(out_data, tensors, backward, "concat")

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            pieces = np.moveaxis(grad, axis, 0)
            for tensor, piece in zip(tensors, pieces):
                if tensor.requires_grad:
                    tensor._accumulate(piece)

        proto = tensors[0]
        return proto._make(out_data, tensors, backward, "stack")

    # ------------------------------------------------------------------
    # Composite ops
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()
