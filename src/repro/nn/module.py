"""Module/Parameter containers for the neural substrate.

Mirrors the familiar torch-style API surface (``parameters()``,
``state_dict()``, ``train()``/``eval()``) so the forecasting models read
naturally, while staying a few hundred lines of plain Python.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor registered as a trainable weight of a :class:`Module`."""

    def __init__(self, data: object) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration is automatic via ``__setattr__``.  The
    ``training`` flag lets layers such as dropout switch behaviour.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all trainable parameters, depth-first."""
        for param in self._parameters.values():
            yield param
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield (dotted-name, parameter) pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all submodules, depth-first."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar weights."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout etc.)."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to inference mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={missing} unexpected={unexpected}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data[...] = value

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args: object, **kwargs: object) -> object:
        raise NotImplementedError

    def __call__(self, *args: object, **kwargs: object) -> object:
        return self.forward(*args, **kwargs)
