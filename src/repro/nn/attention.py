"""Attention primitives used by the Temporal Fusion Transformer.

Implements scaled dot-product attention and TFT's *interpretable*
multi-head variant, in which the value projection (and the attention
pattern's output head) is shared across heads so the averaged attention
weights remain interpretable (Lim et al., 2019, Sec. 4.4).
"""

from __future__ import annotations

import numpy as np

from . import fastpath
from .layers import Linear
from .module import Module
from .tensor import Tensor

__all__ = ["scaled_dot_product_attention", "causal_mask", "InterpretableMultiHeadAttention"]

_MASK_CACHE: dict[tuple[int, int], np.ndarray] = {}


def causal_mask(query_len: int, key_len: int) -> np.ndarray:
    """Additive mask forbidding attention to future positions.

    Position ``i`` of the query may attend to key positions ``j`` with
    ``j <= i + (key_len - query_len)`` — i.e. the decoder can see the whole
    encoder plus its own past.

    Built with one vectorized triu-style comparison and cached per
    ``(query_len, key_len)``: every TFT forward at a given geometry asks
    for the same mask, so repeated predict/train calls stop reallocating
    it.  The cached array is marked read-only; callers only ever add it
    to score tensors.
    """
    cached = _MASK_CACHE.get((query_len, key_len))
    if cached is None:
        offset = key_len - query_len
        future = np.arange(key_len)[None, :] > np.arange(query_len)[:, None] + offset
        cached = np.where(future, -1e9, 0.0)
        cached.setflags(write=False)
        _MASK_CACHE[(query_len, key_len)] = cached
    return cached


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: np.ndarray | None = None,
) -> tuple[Tensor, Tensor]:
    """Standard attention: softmax(QK^T / sqrt(d)) V.

    Shapes: query (B, Tq, d), key (B, Tk, d), value (B, Tk, dv).
    Returns (output, attention_weights).
    """
    d_k = query.shape[-1]
    scores = (query @ key.swapaxes(-1, -2)) * (1.0 / np.sqrt(d_k))
    if mask is not None:
        scores = scores + Tensor(mask)
    weights = scores.softmax(axis=-1)
    return weights @ value, weights


class InterpretableMultiHeadAttention(Module):
    """Multi-head attention with a value projection shared across heads.

    Each head gets its own query/key projections; all heads share one value
    projection and their outputs are averaged before the final linear map.
    This is the exact structure of TFT's temporal self-attention layer.
    """

    def __init__(self, d_model: int, num_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self._q_projs: list[Linear] = []
        self._k_projs: list[Linear] = []
        for head in range(num_heads):
            q_proj = Linear(d_model, self.d_head, rng)
            k_proj = Linear(d_model, self.d_head, rng)
            setattr(self, f"q{head}", q_proj)
            setattr(self, f"k{head}", k_proj)
            self._q_projs.append(q_proj)
            self._k_projs.append(k_proj)
        self.v_proj = Linear(d_model, self.d_head, rng)
        self.out_proj = Linear(self.d_head, d_model, rng)

    def forward(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        mask: np.ndarray | None = None,
    ) -> tuple[Tensor, Tensor]:
        """Returns (output (B, Tq, d_model), mean attention (B, Tq, Tk))."""
        if fastpath.should_use_fast_path():
            out, weights = self.fast_forward(
                query.data if isinstance(query, Tensor) else np.asarray(query),
                key.data if isinstance(key, Tensor) else np.asarray(key),
                value.data if isinstance(value, Tensor) else np.asarray(value),
                mask=mask,
            )
            return Tensor(out), Tensor(weights)
        shared_value = self.v_proj(value)
        head_outputs = []
        head_weights = []
        for q_proj, k_proj in zip(self._q_projs, self._k_projs):
            out, weights = scaled_dot_product_attention(
                q_proj(query), k_proj(key), shared_value, mask=mask
            )
            head_outputs.append(out)
            head_weights.append(weights)
        mean_output = Tensor.stack(head_outputs, axis=0).mean(axis=0)
        mean_weights = Tensor.stack(head_weights, axis=0).mean(axis=0)
        return self.out_proj(mean_output), mean_weights

    def fast_forward(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        mask: np.ndarray | None = None,
        dtype: "np.dtype | type | None" = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Tape-free forward on raw ndarrays.

        Batches the per-head Q/K projections into single concatenated
        gemms (:func:`repro.nn.fastpath.prepare_attention_params`);
        float64 outputs and attention weights are bitwise-identical to
        :meth:`forward`.
        """
        w_q, b_q = fastpath.prepare_attention_params(
            [(p.weight.data, p.bias.data) for p in self._q_projs], dtype=dtype
        )
        w_k, b_k = fastpath.prepare_attention_params(
            [(p.weight.data, p.bias.data) for p in self._k_projs], dtype=dtype
        )
        return fastpath.interpretable_attention(
            query,
            key,
            value,
            w_q,
            b_q,
            w_k,
            b_k,
            self.v_proj.weight.data,
            self.v_proj.bias.data,
            self.out_proj.weight.data,
            self.out_proj.bias.data,
            self.num_heads,
            mask=mask,
            dtype=dtype,
        )
