"""Attention primitives used by the Temporal Fusion Transformer.

Implements scaled dot-product attention and TFT's *interpretable*
multi-head variant, in which the value projection (and the attention
pattern's output head) is shared across heads so the averaged attention
weights remain interpretable (Lim et al., 2019, Sec. 4.4).
"""

from __future__ import annotations

import numpy as np

from .layers import Linear
from .module import Module
from .tensor import Tensor

__all__ = ["scaled_dot_product_attention", "causal_mask", "InterpretableMultiHeadAttention"]


def causal_mask(query_len: int, key_len: int) -> np.ndarray:
    """Additive mask forbidding attention to future positions.

    Position ``i`` of the query may attend to key positions ``j`` with
    ``j <= i + (key_len - query_len)`` — i.e. the decoder can see the whole
    encoder plus its own past.
    """
    offset = key_len - query_len
    mask = np.zeros((query_len, key_len))
    for i in range(query_len):
        mask[i, i + offset + 1 :] = -1e9
    return mask


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: np.ndarray | None = None,
) -> tuple[Tensor, Tensor]:
    """Standard attention: softmax(QK^T / sqrt(d)) V.

    Shapes: query (B, Tq, d), key (B, Tk, d), value (B, Tk, dv).
    Returns (output, attention_weights).
    """
    d_k = query.shape[-1]
    scores = (query @ key.swapaxes(-1, -2)) * (1.0 / np.sqrt(d_k))
    if mask is not None:
        scores = scores + Tensor(mask)
    weights = scores.softmax(axis=-1)
    return weights @ value, weights


class InterpretableMultiHeadAttention(Module):
    """Multi-head attention with a value projection shared across heads.

    Each head gets its own query/key projections; all heads share one value
    projection and their outputs are averaged before the final linear map.
    This is the exact structure of TFT's temporal self-attention layer.
    """

    def __init__(self, d_model: int, num_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self._q_projs: list[Linear] = []
        self._k_projs: list[Linear] = []
        for head in range(num_heads):
            q_proj = Linear(d_model, self.d_head, rng)
            k_proj = Linear(d_model, self.d_head, rng)
            setattr(self, f"q{head}", q_proj)
            setattr(self, f"k{head}", k_proj)
            self._q_projs.append(q_proj)
            self._k_projs.append(k_proj)
        self.v_proj = Linear(d_model, self.d_head, rng)
        self.out_proj = Linear(self.d_head, d_model, rng)

    def forward(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        mask: np.ndarray | None = None,
    ) -> tuple[Tensor, Tensor]:
        """Returns (output (B, Tq, d_model), mean attention (B, Tq, Tk))."""
        shared_value = self.v_proj(value)
        head_outputs = []
        head_weights = []
        for q_proj, k_proj in zip(self._q_projs, self._k_projs):
            out, weights = scaled_dot_product_attention(
                q_proj(query), k_proj(key), shared_value, mask=mask
            )
            head_outputs.append(out)
            head_weights.append(weights)
        mean_output = Tensor.stack(head_outputs, axis=0).mean(axis=0)
        mean_weights = Tensor.stack(head_weights, axis=0).mean(axis=0)
        return self.out_proj(mean_output), mean_weights
