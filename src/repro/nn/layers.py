"""Feed-forward building blocks: Linear, Dropout, LayerNorm, Embedding,
Sequential, and the Gated Residual Network used by the Temporal Fusion
Transformer.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from . import fastpath, init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "Dropout",
    "LayerNorm",
    "Embedding",
    "Sequential",
    "GatedLinearUnit",
    "GatedResidualNetwork",
]


class Linear(Module):
    """Affine map ``y = x @ W + b`` with weight shape (in, out).

    When gradients are disabled the forward dispatches to the tape-free
    kernel in :mod:`repro.nn.fastpath`, skipping Tensor-op overhead; the
    result is numerically identical.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if fastpath.should_use_fast_path():
            data = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
            return Tensor(self.fast_forward(data))
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def fast_forward(self, x: np.ndarray) -> np.ndarray:
        """Tape-free forward on a raw ndarray."""
        return fastpath.linear_forward(
            x, self.weight.data, self.bias.data if self.bias is not None else None
        )


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    The mask generator is owned by the layer so training runs are
    reproducible given the layer's seed.
    """

    def __init__(self, p: float, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = self._rng.binomial(1, keep, size=x.shape) / keep
        return x * Tensor(mask)


class LayerNorm(Module):
    """Layer normalization over the last axis.

    Under ``no_grad`` the forward dispatches to the tape-free
    :func:`repro.nn.fastpath.layer_norm` kernel; results are bitwise
    identical in float64.
    """

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(init.ones((normalized_shape,)))
        self.beta = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        if fastpath.should_use_fast_path():
            data = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
            return Tensor(self.fast_forward(data))
        mu = x.mean(axis=-1, keepdims=True)
        var = ((x - mu) * (x - mu)).mean(axis=-1, keepdims=True)
        normed = (x - mu) / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta

    def fast_forward(
        self, x: np.ndarray, dtype: "np.dtype | type | None" = None
    ) -> np.ndarray:
        """Tape-free forward on a raw ndarray."""
        return fastpath.layer_norm(
            x, self.gamma.data, self.beta.data, self.eps, dtype=dtype
        )


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, 0.1, size=(num_embeddings, embedding_dim)))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.min() < 0 or ids.max() >= self.num_embeddings:
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()} max={ids.max()}"
            )
        return self.weight[ids]


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layers: list[Module] = []
        for index, layer in enumerate(layers):
            setattr(self, f"layer{index}", layer)
            self._layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)


class GatedLinearUnit(Module):
    """GLU(x) = sigmoid(W1 x + b1) * (W2 x + b2) — TFT's gating primitive.

    Under ``no_grad`` the forward dispatches to the fused tape-free
    :func:`repro.nn.fastpath.glu_forward` kernel (bitwise-identical in
    float64).
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.gate = Linear(in_features, out_features, rng)
        self.value = Linear(in_features, out_features, rng)

    def forward(self, x: Tensor) -> Tensor:
        if fastpath.should_use_fast_path():
            data = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
            return Tensor(self.fast_forward(data))
        return self.gate(x).sigmoid() * self.value(x)

    def fast_forward(
        self, x: np.ndarray, dtype: "np.dtype | type | None" = None
    ) -> np.ndarray:
        """Tape-free forward on a raw ndarray."""
        return fastpath.glu_forward(
            x,
            self.gate.weight.data,
            self.gate.bias.data,
            self.value.weight.data,
            self.value.bias.data,
            dtype=dtype,
        )


class GatedResidualNetwork(Module):
    """TFT's Gated Residual Network (Lim et al., 2019, Eq. 2-4).

    GRN(a) = LayerNorm(a' + GLU(eta1)) where
    eta2 = ELU-ish(W2 a), eta1 = W1 eta2, and a' is a (possibly projected)
    residual of the input.  We use tanh in place of ELU; at the scale of
    workload forecasting models the difference is immaterial and tanh is
    cheap under autograd.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.fc1 = Linear(in_features, hidden_features, rng)
        self.fc2 = Linear(hidden_features, hidden_features, rng)
        self.glu = GatedLinearUnit(hidden_features, out_features, rng)
        self.norm = LayerNorm(out_features)
        self.dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**32)))
        if in_features != out_features:
            self.skip: Linear | None = Linear(in_features, out_features, rng, bias=False)
        else:
            self.skip = None

    def forward(self, x: Tensor) -> Tensor:
        # The fused kernel skips dropout, so it is only valid when
        # dropout is inactive (eval mode, or p == 0 as the TFT uses).
        if fastpath.should_use_fast_path() and (
            not self.training or self.dropout.p == 0.0
        ):
            data = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
            return Tensor(self.fast_forward(data))
        hidden = self.fc2(self.fc1(x).tanh())
        hidden = self.dropout(hidden)
        gated = self.glu(hidden)
        residual = self.skip(x) if self.skip is not None else x
        return self.norm(residual + gated)

    def fast_forward(
        self, x: np.ndarray, dtype: "np.dtype | type | None" = None
    ) -> np.ndarray:
        """Tape-free forward on a raw ndarray (dropout inactive)."""
        return fastpath.grn_forward(
            x,
            self.fc1.weight.data,
            self.fc1.bias.data,
            self.fc2.weight.data,
            self.fc2.bias.data,
            self.glu.gate.weight.data,
            self.glu.gate.bias.data,
            self.glu.value.weight.data,
            self.glu.value.bias.data,
            self.norm.gamma.data,
            self.norm.beta.data,
            self.norm.eps,
            w_skip=self.skip.weight.data if self.skip is not None else None,
            dtype=dtype,
        )
