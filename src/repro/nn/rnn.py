"""Recurrent layers: LSTM cell and multi-step LSTM.

DeepAR, QB5000's neural component, and the TFT encoder/decoder all run on
this LSTM.  The implementation fuses the four gates into a single matmul
per step, which is the dominant cost; on the small hidden sizes used for
workload forecasting this trains in seconds.
"""

from __future__ import annotations

import numpy as np

from . import fastpath, init
from .module import Module, Parameter
from .tensor import Tensor


def _as_state_arrays(
    state: "list[tuple[Tensor | np.ndarray, Tensor | np.ndarray]]",
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Unwrap a per-layer (h, c) state into raw ndarrays."""
    return [
        (
            h.data if isinstance(h, Tensor) else np.asarray(h, dtype=np.float64),
            c.data if isinstance(c, Tensor) else np.asarray(c, dtype=np.float64),
        )
        for h, c in state
    ]

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """Single LSTM step with fused gate weights.

    Gate layout along the output axis is ``[input, forget, cell, output]``.
    The forget-gate bias is initialised to 1, the standard trick to keep
    long-range gradients alive early in training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.xavier_uniform((input_size, 4 * hidden_size), rng))
        self.w_hh = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(4)], axis=1
            )
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """Advance one step.

        Parameters
        ----------
        x:
            Input of shape (batch, input_size).
        state:
            Tuple (h, c) each of shape (batch, hidden_size).
        """
        if fastpath.should_use_fast_path():
            data = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
            (h_arr, c_arr), = _as_state_arrays([state])
            h_new, c_new = self.fast_forward(data, h_arr, c_arr)
            return Tensor(h_new), Tensor(c_new)
        h_prev, c_prev = state
        gates = x @ self.w_ih + h_prev @ self.w_hh + self.bias
        hs = self.hidden_size
        i_gate = gates[:, :hs].sigmoid()
        f_gate = gates[:, hs : 2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs : 3 * hs].tanh()
        o_gate = gates[:, 3 * hs :].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def fast_forward(
        self, x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Tape-free step on raw arrays; numerically identical to forward."""
        return fastpath.lstm_cell_forward(
            x, h_prev, c_prev, self.w_ih.data, self.w_hh.data, self.bias.data,
            self.hidden_size,
        )

    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        """Zero hidden and cell states for a batch."""
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Multi-layer LSTM unrolled over a full sequence.

    Input shape is (batch, time, features); output is the top layer's
    hidden sequence of shape (batch, time, hidden_size) plus the final
    (h, c) state per layer.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        num_layers: int = 1,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self._cells: list[LSTMCell] = []
        for layer in range(num_layers):
            cell = LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            setattr(self, f"cell{layer}", cell)
            self._cells.append(cell)

    def forward(
        self,
        x: Tensor,
        state: list[tuple[Tensor, Tensor]] | None = None,
    ) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        if fastpath.should_use_fast_path():
            data = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
            arrays = _as_state_arrays(state) if state is not None else None
            sequence, new_state = self.fast_forward(data, arrays)
            return Tensor(sequence), [(Tensor(h), Tensor(c)) for h, c in new_state]
        batch, steps, _ = x.shape
        if state is None:
            state = [cell.initial_state(batch) for cell in self._cells]
        else:
            state = list(state)

        layer_input = [x[:, t, :] for t in range(steps)]
        for layer, cell in enumerate(self._cells):
            h, c = state[layer]
            outputs = []
            for step_input in layer_input:
                h, c = cell(step_input, (h, c))
                outputs.append(h)
            state[layer] = (h, c)
            layer_input = outputs

        sequence = Tensor.stack(layer_input, axis=1)
        return sequence, state

    def _layer_params(self) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-layer (w_ih, w_hh, bias) raw arrays for the fused kernels."""
        return [(c.w_ih.data, c.w_hh.data, c.bias.data) for c in self._cells]

    def fast_forward(
        self,
        x: np.ndarray,
        state: list[tuple[np.ndarray, np.ndarray]] | None = None,
        dtype: "np.dtype | type | None" = None,
    ) -> tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
        """Fused tape-free unroll on raw arrays.

        Keeps (h, c) as plain ndarrays and writes each step's hidden
        state into a preallocated buffer instead of building the
        per-timestep Tensor lists the tape path needs.  ``dtype=None``
        computes in float64; ``np.float32`` runs the whole scan in
        single precision.
        """
        return fastpath.lstm_forward(
            x, self._layer_params(), self.hidden_size, state, dtype=dtype
        )

    def fast_step(
        self,
        x: np.ndarray,
        state: list[tuple[np.ndarray, np.ndarray]],
        dtype: "np.dtype | type | None" = None,
    ) -> tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
        """Advance one timestep on raw arrays; returns (top hidden, state)."""
        return fastpath.lstm_step(
            x, self._layer_params(), self.hidden_size, state, dtype=dtype
        )

    def initial_state(self, batch_size: int) -> list[tuple[Tensor, Tensor]]:
        """Zero states for every layer."""
        return [cell.initial_state(batch_size) for cell in self._cells]
