"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so model
construction is fully reproducible — a requirement for the benchmark
harness, where paper figures must regenerate identically run to run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "orthogonal", "zeros", "ones"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform init: U(-a, a) with a = gain * sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal init: N(0, gain^2 * 2/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform init, appropriate before ReLU nonlinearities."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def orthogonal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal init (used for recurrent weights to stabilise BPTT)."""
    if len(shape) != 2:
        raise ValueError("orthogonal init requires a 2-D shape")
    rows, cols = shape
    a = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q = q * np.sign(np.diag(r))  # make the decomposition unique
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Fan-in/fan-out for a weight stored as (in_features, out_features).

    Layers in this package compute ``x @ W``, so the first axis is the
    input dimension.
    """
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = shape[0]
    fan_out = int(np.prod(shape[1:]))
    return fan_in, fan_out
