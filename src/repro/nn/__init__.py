"""Neural-network substrate: numpy autograd, layers, optimizers, data.

This package replaces the role GluonTS/mxnet play in the paper's
implementation — it is the training and inference engine underneath the
probabilistic forecasters in :mod:`repro.forecast`.
"""

from . import fastgrad, fastpath, functional, init
from .fastpath import fast_path_enabled, use_fast_path
from .attention import InterpretableMultiHeadAttention, causal_mask, scaled_dot_product_attention
from .data import DataLoader, WindowDataset, train_validation_split
from .layers import (
    Dropout,
    Embedding,
    GatedLinearUnit,
    GatedResidualNetwork,
    LayerNorm,
    Linear,
    Sequential,
)
from .module import Module, Parameter
from .optim import SGD, Adam, CosineLR, StepLR, clip_grad_norm
from .rnn import LSTM, LSTMCell
from .serialization import load_module, load_state, save_module, save_state
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "use_fast_path",
    "fast_path_enabled",
    "fastpath",
    "fastgrad",
    "Module",
    "Parameter",
    "Linear",
    "Dropout",
    "LayerNorm",
    "Embedding",
    "Sequential",
    "GatedLinearUnit",
    "GatedResidualNetwork",
    "LSTM",
    "LSTMCell",
    "InterpretableMultiHeadAttention",
    "scaled_dot_product_attention",
    "causal_mask",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
    "clip_grad_norm",
    "WindowDataset",
    "DataLoader",
    "train_validation_split",
    "save_state",
    "load_state",
    "save_module",
    "load_module",
    "functional",
    "init",
]
