"""Loss functions for training the forecasters.

Two losses carry the paper's two methodologies (Section III-B):

* negative log-likelihood under a parametric distribution (MLP's Gaussian
  head, DeepAR's Student-t head), and
* the quantile ("pinball") loss of Eq. 1-2 for models that emit a
  pre-specified grid of quantiles (TFT).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "mse_loss",
    "mae_loss",
    "gaussian_nll",
    "student_t_nll",
    "quantile_loss",
    "pinball",
]


def mse_loss(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean absolute error (equals pinball loss at tau = 0.5, times 2)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    return (prediction - target).abs().mean()


def gaussian_nll(mean: Tensor, std: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean negative log-likelihood of ``target`` under N(mean, std^2)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    var = std * std
    log_term = var.log() * 0.5
    quad = ((target - mean) * (target - mean)) / (var * 2.0)
    return (log_term + quad).mean() + 0.5 * np.log(2.0 * np.pi)


def student_t_nll(
    mean: Tensor, scale: Tensor, df: Tensor, target: np.ndarray | Tensor
) -> Tensor:
    """Mean negative log-likelihood under a location-scale Student-t.

    The density is
    ``Gamma((nu+1)/2) / (Gamma(nu/2) sqrt(nu pi) s) * (1 + z^2/nu)^-((nu+1)/2)``
    with ``z = (x - mu)/s``.  The log-Gamma terms depend only on ``df``;
    we use a differentiable Stirling-series approximation of log Gamma so
    the degrees of freedom can be learned end-to-end, as DeepAR does.
    """
    target = target if isinstance(target, Tensor) else Tensor(target)
    z = (target - mean) / scale
    half = Tensor(0.5)
    nu = df
    log_norm = (
        _log_gamma((nu + 1.0) * half)
        - _log_gamma(nu * half)
        - (nu * np.pi).log() * 0.5
        - scale.log()
    )
    log_kernel = ((z * z) / nu + 1.0).log() * ((nu + 1.0) * (-0.5))
    return -(log_norm + log_kernel).mean()


def _log_gamma(x: Tensor) -> Tensor:
    """Differentiable log Gamma via the Lanczos-free shifted Stirling series.

    Accurate to ~1e-7 for x >= 0.5 after two recurrence shifts, which covers
    the df/2 values (df >= 1) produced by a softplus head.
    """
    # Shift x up by 2 using log Gamma(x) = log Gamma(x+1) - log x.
    shifted = x + 2.0
    correction = x.log() + (x + 1.0).log()
    series = (
        (shifted - 0.5) * shifted.log()
        - shifted
        + 0.5 * np.log(2.0 * np.pi)
        + 1.0 / (shifted * 12.0)
        - 1.0 / (shifted * shifted * shifted * 360.0)
    )
    return series - correction


def pinball(prediction: Tensor, target: np.ndarray | Tensor, tau: float) -> Tensor:
    """Quantile loss of Eq. 1: rho_tau(y, yhat) = (tau - I[y < yhat])(yhat - y).

    Returns the elementwise loss (callers reduce as appropriate).
    ``prediction`` plays the role of the quantile estimate ``yhat``.
    """
    if not 0.0 < tau < 1.0:
        raise ValueError(f"quantile level must be in (0, 1), got {tau}")
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = target - prediction  # y - yhat
    return diff.maximum(Tensor(np.zeros(1))) * tau + (-diff).maximum(Tensor(np.zeros(1))) * (
        1.0 - tau
    )


def quantile_loss(
    predictions: Tensor, target: np.ndarray | Tensor, quantiles: list[float]
) -> Tensor:
    """Total pinball loss of Eq. 2, summed over a grid of quantile levels.

    ``predictions`` has a trailing axis of size ``len(quantiles)``; the
    target is broadcast against it.
    """
    target = target if isinstance(target, Tensor) else Tensor(target)
    total: Tensor | None = None
    for index, tau in enumerate(quantiles):
        loss = pinball(predictions[..., index], target, tau).mean()
        total = loss if total is None else total + loss
    assert total is not None, "quantiles must be non-empty"
    return total
