"""Saving and loading model weights.

State dicts are persisted as ``.npz`` archives; parameter names become
archive keys.  Dots are legal in npz keys, so dotted module paths survive
a round trip unchanged.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_state", "load_state", "save_module", "load_module"]


def save_state(state: dict[str, np.ndarray], path: str | Path) -> None:
    """Write a state dict to ``path`` (.npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **state)


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state`."""
    with np.load(Path(path)) as archive:
        return {key: archive[key] for key in archive.files}


def save_module(module: Module, path: str | Path) -> None:
    """Persist a module's weights."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str | Path) -> Module:
    """Restore weights in place and return the module."""
    module.load_state_dict(load_state(path))
    return module
