"""Dataset/DataLoader utilities for windowed time-series training.

Forecasters train on (context, horizon) windows sliced from a workload
trace.  :class:`WindowDataset` materialises those windows lazily and
:class:`DataLoader` shuffles and batches them with a seeded generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["WindowDataset", "DataLoader", "train_validation_split"]


@dataclass(frozen=True)
class Window:
    """One training example: ``context`` feeds the model, ``horizon`` is the target.

    ``start`` is the index of ``context[0]`` within its source series,
    used to phase-align calendar features.
    """

    context: np.ndarray
    horizon: np.ndarray
    start: int = 0


class WindowDataset:
    """Sliding (context, horizon) windows over one or more series.

    Parameters
    ----------
    series:
        1-D workload array, or a list of such arrays (multiple traces).
    context_length:
        Number of past steps fed to the model (paper: 72 = 12 hours).
    horizon:
        Number of future steps to predict.
    stride:
        Step between consecutive window starts; 1 uses every window.
    """

    def __init__(
        self,
        series: np.ndarray | list[np.ndarray],
        context_length: int,
        horizon: int,
        stride: int = 1,
        start_offsets: list[int] | None = None,
    ) -> None:
        if context_length < 1 or horizon < 1 or stride < 1:
            raise ValueError("context_length, horizon, and stride must all be >= 1")
        if isinstance(series, np.ndarray):
            series = [series]
        self.context_length = context_length
        self.horizon = horizon
        self.stride = stride
        self._index: list[tuple[int, int]] = []  # (series id, start)
        self._series = [np.asarray(s, dtype=np.float64) for s in series]
        if start_offsets is None:
            start_offsets = [0] * len(self._series)
        if len(start_offsets) != len(self._series):
            raise ValueError("start_offsets must match the number of series")
        self._offsets = list(start_offsets)
        window = context_length + horizon
        for sid, s in enumerate(self._series):
            if s.ndim != 1:
                raise ValueError("each series must be 1-D")
            for start in range(0, len(s) - window + 1, stride):
                self._index.append((sid, start))
        if not self._index:
            raise ValueError(
                f"no windows fit: need at least {window} points, "
                f"longest series has {max((len(s) for s in self._series), default=0)}"
            )
        # Zero-copy view of every window per series: row i is
        # series[i : i + window].  batch() gathers straight from these
        # views instead of slicing + stacking window-by-window.
        self._views = [
            np.lib.stride_tricks.sliding_window_view(s, window) for s in self._series
        ]
        self._sid_arr = np.array([sid for sid, _ in self._index])
        self._start_arr = np.array([start for _, start in self._index])
        self._abs_start_arr = self._start_arr + np.array(
            [self._offsets[sid] for sid, _ in self._index]
        )

    def __len__(self) -> int:
        return len(self._index)

    def batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather windows ``indices`` as ``(contexts, horizons, starts)``.

        One fancy-indexed copy from the sliding-window views replaces a
        Python loop of per-window slices and a ``np.stack`` — the same
        arrays, materialised in a single gather.
        """
        indices = np.asarray(indices)
        split = self.context_length
        if len(self._series) == 1:
            full = self._views[0][self._start_arr[indices]]
        else:
            full = np.empty(
                (len(indices), split + self.horizon), dtype=np.float64
            )
            sids = self._sid_arr[indices]
            starts = self._start_arr[indices]
            for sid in np.unique(sids):
                mask = sids == sid
                full[mask] = self._views[sid][starts[mask]]
        return (
            np.ascontiguousarray(full[:, :split]),
            np.ascontiguousarray(full[:, split:]),
            self._abs_start_arr[indices],
        )

    def __getitem__(self, item: int) -> Window:
        sid, start = self._index[item]
        s = self._series[sid]
        mid = start + self.context_length
        return Window(
            context=s[start:mid],
            horizon=s[mid : mid + self.horizon],
            start=start + self._offsets[sid],
        )


class DataLoader:
    """Batches windows into (batch, time) arrays with optional shuffling."""

    def __init__(
        self,
        dataset: WindowDataset,
        batch_size: int,
        shuffle: bool = True,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
        yield_positions: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.yield_positions = yield_positions
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            chunk = order[start : start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                return
            contexts, horizons, starts = self.dataset.batch(chunk)
            if self.yield_positions:
                yield contexts, horizons, starts
            else:
                yield contexts, horizons


def train_validation_split(
    series: np.ndarray, validation_fraction: float = 0.2
) -> tuple[np.ndarray, np.ndarray]:
    """Chronological split — validation is the most recent fraction.

    Time series must never be split randomly: that leaks future values
    into training.
    """
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in (0, 1)")
    cut = int(len(series) * (1.0 - validation_fraction))
    if cut == 0 or cut == len(series):
        raise ValueError("series too short for the requested split")
    return series[:cut], series[cut:]
