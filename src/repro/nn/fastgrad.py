"""Analytic training kernels: fused forward+backward for the hot loop.

:mod:`repro.nn.fastpath` removed the Tensor tape from *inference*; this
module removes it from *training*.  The per-op autograd tape stays as
the parity oracle, but for every loss in the repo — the teacher-forced
LSTM/MLP likelihoods *and* the TFT's attention/LayerNorm/GRN quantile
loss — the gradients are known in closed form, so the whole backward
pass collapses into a handful of fused numpy sweeps:

* **LSTM BPTT** — one cached-activations forward over the entire
  teacher-forced sequence (the input gemm ``x @ W_ih`` is hoisted out of
  the time loop and done for all timesteps at once), then a single
  reverse sweep that accumulates per-step gate deltas into a
  ``(batch, time, 4*hidden)`` buffer.  The weight gradients
  ``dW_ih / dW_hh / db`` then fall out of *one* matmul each over the
  flattened ``(batch*time)`` axis — instead of the thousands of taped
  micro-ops (slice, sigmoid-backward, outer-product accumulate, ...)
  the tape replays per timestep.
* **Head kernels** — linear/activation backwards and closed-form
  gradients of the Gaussian and Student-t negative log-likelihoods
  (the ``df`` gradient differentiates the same shifted-Stirling
  ``log Gamma`` series the tape uses, so both paths optimise the same
  approximate objective).
* **Attention / LayerNorm / GLU / GRN** — cached-activations forwards
  through :mod:`fastpath`'s batched-head attention and fused layer
  kernels, then closed-form backwards: the softmax Jacobian-vector
  product ``dx = s * (dout - sum(dout * s))``, LayerNorm's fused
  mean/variance backward, and the GLU/GRN chain with the residual and
  gate paths folded together.  Because the shared value projection and
  the head average make every head's output gradient identical, the
  attention backward needs one score-gradient batch and a handful of
  whole-sequence gemms.
* **Quantile (pinball) loss** — the subgradient is a sign test per
  quantile level, matching the tape's ``maximum`` tie rule exactly.

The forward computes the same float64 operations in the same
association order as the tape (it reuses :mod:`fastpath`'s
``[i, f, o, g]`` permuted-weight layout, which is a bitwise-neutral
column permutation), so loss values match the tape to machine rounding.
Backward values are mathematically identical but summed in a different
order, so individual gradients agree to ~1e-12 relative rather than bit
for bit; the parity suite (``tests/nn/test_fastgrad.py``) checks every
kernel against both finite differences and the tape.

Dispatch is opt-in per training run via
``TrainingConfig(train_fast_path=True)`` (the default); the tape remains
the parity oracle and is selected with ``train_fast_path=False``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import fastpath

__all__ = [
    "accumulate_grad",
    "gate_permutation",
    "permute_gate_columns",
    "linear_backward",
    "sigmoid_backward",
    "tanh_backward",
    "relu_backward",
    "softplus_backward",
    "log_gamma",
    "digamma",
    "gaussian_nll_grads",
    "student_t_nll_grads",
    "quantile_loss_grads",
    "softmax_backward",
    "LayerNormCache",
    "layer_norm_forward_train",
    "layer_norm_backward",
    "GLUCache",
    "glu_forward_train",
    "glu_backward",
    "GRNCache",
    "grn_forward_train",
    "grn_backward",
    "AttentionCache",
    "attention_forward_train",
    "attention_backward",
    "LSTMLayerCache",
    "lstm_forward_train",
    "lstm_final_state",
    "lstm_backward",
]


def accumulate_grad(param, grad: np.ndarray) -> None:
    """Add ``grad`` into a Parameter's ``.grad`` buffer, creating it if unset.

    Mirrors ``Tensor._accumulate`` for raw arrays (shapes already match,
    so no unbroadcasting is needed); the optimizer and
    ``clip_grad_norm`` then see exactly what the tape would have left.
    """
    if param.grad is None:
        param.grad = np.ascontiguousarray(grad)
    else:
        param.grad += grad


# ---------------------------------------------------------------------------
# Gate layout
# ---------------------------------------------------------------------------
def gate_permutation(hidden_size: int) -> np.ndarray:
    """Column permutation mapping [i, f, g, o] to [i, f, o, g].

    This is the layout :func:`fastpath.prepare_lstm_params` uses so the
    three sigmoid gates are adjacent.  The permutation swaps the g and o
    blocks and is therefore its own inverse — applying it to a permuted
    gradient returns it to the standard layout.
    """
    hs = hidden_size
    return np.concatenate(
        [np.arange(0, 2 * hs), np.arange(3 * hs, 4 * hs), np.arange(2 * hs, 3 * hs)]
    )


def permute_gate_columns(array: np.ndarray, hidden_size: int) -> np.ndarray:
    """Apply the (involutive) gate permutation along the last axis."""
    return np.ascontiguousarray(array[..., gate_permutation(hidden_size)])


# ---------------------------------------------------------------------------
# Elementwise / dense backward kernels
# ---------------------------------------------------------------------------
def linear_backward(
    x: np.ndarray, weight: np.ndarray, dout: np.ndarray, need_dx: bool = True
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
    """Backward of ``y = x @ W + b`` for ``x`` of shape (..., in).

    Returns ``(dx, dW, db)``; leading axes of ``x``/``dout`` are
    flattened for the weight gradient so a (batch, time, features)
    sequence costs one gemm, not time-many.
    """
    in_features = weight.shape[0]
    out_features = weight.shape[1]
    x2 = x.reshape(-1, in_features)
    d2 = dout.reshape(-1, out_features)
    dw = x2.T @ d2
    db = d2.sum(axis=0)
    dx = (d2 @ weight.T).reshape(x.shape) if need_dx else None
    return dx, dw, db


def sigmoid_backward(out: np.ndarray, dout: np.ndarray) -> np.ndarray:
    """d/dx sigmoid from the forward *output* (matches the tape's rule)."""
    return dout * out * (1.0 - out)


def tanh_backward(out: np.ndarray, dout: np.ndarray) -> np.ndarray:
    """d/dx tanh from the forward *output*."""
    return dout * (1.0 - out * out)


def relu_backward(x: np.ndarray, dout: np.ndarray) -> np.ndarray:
    """d/dx relu from the forward *input* (gradient zero at x <= 0)."""
    return dout * (x > 0)


def softplus_backward(x: np.ndarray, dout: np.ndarray) -> np.ndarray:
    """d/dx softplus = sigmoid(x), using the stable fastpath sigmoid."""
    return dout * fastpath.sigmoid(x)


def softmax_backward(out: np.ndarray, dout: np.ndarray) -> np.ndarray:
    """Softmax Jacobian-vector product from the forward *output*.

    For ``s = softmax(x)`` along the last axis,
    ``dx = s * (dout - sum(dout * s, axis=-1))`` — the full Jacobian
    ``diag(s) - s s^T`` contracted with ``dout`` without materialising
    it.  (The tape's max-subtraction shift is constant w.r.t. the input
    of each row's softmax — ``Tensor.softmax`` detaches the max — so no
    extra term appears.)  ``dout`` may broadcast against ``out``.
    """
    return out * (dout - (dout * out).sum(axis=-1, keepdims=True))


# ---------------------------------------------------------------------------
# Likelihood kernels
# ---------------------------------------------------------------------------
def log_gamma(x: np.ndarray) -> np.ndarray:
    """Raw-numpy replica of ``functional._log_gamma`` (shifted Stirling)."""
    shifted = x + 2.0
    correction = np.log(x) + np.log(x + 1.0)
    series = (
        (shifted - 0.5) * np.log(shifted)
        - shifted
        + 0.5 * np.log(2.0 * np.pi)
        + 1.0 / (shifted * 12.0)
        - 1.0 / (shifted * shifted * shifted * 360.0)
    )
    return series - correction


def digamma(x: np.ndarray) -> np.ndarray:
    """Exact derivative of :func:`log_gamma` (not of the true digamma).

    Differentiating the same approximation the tape composes means the
    fast path optimises the identical objective: for
    ``s = x + 2``,

    ``d/dx log_gamma(x) = log s - 1/(2s) - 1/(12 s^2) + 1/(120 s^4)
    - 1/x - 1/(x+1)``.
    """
    s = x + 2.0
    s2 = s * s
    return (
        np.log(s)
        - 0.5 / s
        - 1.0 / (12.0 * s2)
        + 1.0 / (120.0 * s2 * s2)
        - 1.0 / x
        - 1.0 / (x + 1.0)
    )


def gaussian_nll_grads(
    mean: np.ndarray, std: np.ndarray, target: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """Mean Gaussian NLL and its gradients w.r.t. ``mean`` and ``std``.

    Forward matches ``functional.gaussian_nll`` term for term:
    ``mean(0.5 log var + (y - mu)^2 / (2 var)) + 0.5 log 2 pi``.
    """
    var = std * std
    diff = target - mean
    loss = float(np.mean(0.5 * np.log(var) + diff * diff / (var * 2.0))) + 0.5 * np.log(
        2.0 * np.pi
    )
    n = mean.size
    dmean = -diff / var / n
    dstd = (1.0 / std - diff * diff / (var * std)) / n
    return loss, dmean, dstd


def student_t_nll_grads(
    mean: np.ndarray, scale: np.ndarray, df: np.ndarray, target: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """Mean Student-t NLL and gradients w.r.t. ``mean``, ``scale``, ``df``.

    Forward replicates ``functional.student_t_nll`` (with the same
    Stirling ``log Gamma``); the gradients are the closed forms

    * ``dL/dmu    = -(nu+1) z / (s (nu + z^2)) / N``
    * ``dL/ds     = (1 - (nu+1) z^2 / (nu + z^2)) / s / N``
    * ``dL/dnu    = [psi(nu/2) - psi((nu+1)/2)] / 2 + 1/(2 nu)
      + log(1 + z^2/nu)/2 - (nu+1) z^2 / (2 nu (nu + z^2)) / 1 / N``

    with ``z = (y - mu)/s`` and ``psi`` the derivative of the same
    approximation (:func:`digamma`).
    """
    z = (target - mean) / scale
    z2 = z * z
    nu = df
    kernel = z2 / nu + 1.0  # (nu + z^2) / nu
    log_norm = (
        log_gamma((nu + 1.0) * 0.5)
        - log_gamma(nu * 0.5)
        - np.log(nu * np.pi) * 0.5
        - np.log(scale)
    )
    log_kernel = np.log(kernel) * ((nu + 1.0) * (-0.5))
    loss = float(-np.mean(log_norm + log_kernel))

    n = mean.size
    denom = nu + z2
    dmean = -(nu + 1.0) * z / (denom * scale) / n
    dscale = (1.0 - (nu + 1.0) * z2 / denom) / scale / n
    ddf = (
        0.5 * (digamma(nu * 0.5) - digamma((nu + 1.0) * 0.5))
        + 0.5 / nu
        + 0.5 * np.log(kernel)
        - 0.5 * (nu + 1.0) * z2 / (nu * denom)
    ) / n
    return loss, dmean, dscale, ddf


def quantile_loss_grads(
    predictions: np.ndarray, target: np.ndarray, quantiles: list[float]
) -> tuple[float, np.ndarray]:
    """Total pinball loss (Eq. 2) and its gradient w.r.t. ``predictions``.

    ``predictions`` has a trailing quantile axis; ``target`` broadcasts
    against one quantile slice.  The forward replicates
    ``functional.quantile_loss`` term for term (per-level elementwise
    pinball, ``mean`` as ``sum * (1/n)``, levels accumulated in grid
    order) so float64 loss values are bitwise-identical to the tape.

    The pinball subgradient per level ``tau`` with ``diff = y - yhat``:

    ``dL/dyhat = ((diff <= 0) * (1 - tau) - (diff >= 0) * tau) / n``

    At the kink (``diff == 0``) *both* indicators fire — exactly the
    tape's ``maximum`` tie rule, where each ``maximum(·, 0)`` routes the
    gradient to its first argument on ties.
    """
    loss = 0.0
    dpred = np.empty_like(predictions)
    for index, tau in enumerate(quantiles):
        diff = target - predictions[..., index]
        pos = np.where(diff >= 0, diff, 0.0)
        neg = np.where(-diff >= 0, -diff, 0.0)
        term = float((pos * tau + neg * (1.0 - tau)).sum() * (1.0 / diff.size))
        loss = term if index == 0 else loss + term
        dpred[..., index] = (
            (diff <= 0) * (1.0 - tau) - (diff >= 0) * tau
        ) / diff.size
    return loss, dpred


# ---------------------------------------------------------------------------
# TFT building-block kernels (LayerNorm / GLU / GRN / attention)
#
# These take the layer *module* (duck-typed — no import of repro.nn.layers,
# so no circular dependency) and accumulate weight gradients straight into
# ``param.grad`` like the DeepAR composition does, returning only the input
# gradient the caller must keep chaining.
# ---------------------------------------------------------------------------
@dataclass
class LayerNormCache:
    """Forward activations of one LayerNorm call."""

    normed: np.ndarray  # (x - mu) / std — pre-affine output
    std: np.ndarray  # sqrt(var + eps), keepdims along the last axis


def layer_norm_forward_train(norm, x: np.ndarray) -> tuple[np.ndarray, LayerNormCache]:
    """Cached-activations LayerNorm forward (mirrors ``LayerNorm.forward``).

    Same ``sum * (1/n)`` mean composition as the tape, so float64
    outputs are bitwise-identical.
    """
    n = x.shape[-1]
    mu = x.sum(axis=-1, keepdims=True) * (1.0 / n)
    centered = x - mu
    var = (centered * centered).sum(axis=-1, keepdims=True) * (1.0 / n)
    std = np.sqrt(var + norm.eps)
    normed = centered / std
    return normed * norm.gamma.data + norm.beta.data, LayerNormCache(normed=normed, std=std)


def layer_norm_backward(norm, cache: LayerNormCache, dout: np.ndarray) -> np.ndarray:
    """Closed-form LayerNorm backward; accumulates ``gamma``/``beta`` grads.

    With ``y = (x - mu)/std`` and ``std = sqrt(var + eps)`` (variance
    computed against the same ``mu``), the fused input gradient is

    ``dx = (dn - mean(dn) - y * mean(dn * y)) / std``,  ``dn = dout * gamma``

    — the mean/variance chain collapsed into two row means.  The ``eps``
    inside the square root is absorbed exactly (no approximation).
    """
    normed = cache.normed
    width = normed.shape[-1]
    dn = dout * norm.gamma.data
    flat = (dout * normed).reshape(-1, width)
    accumulate_grad(norm.gamma, flat.sum(axis=0))
    accumulate_grad(norm.beta, dout.reshape(-1, width).sum(axis=0))
    dn_mean = dn.sum(axis=-1, keepdims=True) * (1.0 / width)
    proj = (dn * normed).sum(axis=-1, keepdims=True) * (1.0 / width)
    return (dn - dn_mean - normed * proj) / cache.std


@dataclass
class GLUCache:
    """Forward activations of one GatedLinearUnit call."""

    x: np.ndarray  # layer input
    gate: np.ndarray  # sigmoid(x W1 + b1)
    value: np.ndarray  # x W2 + b2


def glu_forward_train(glu, x: np.ndarray) -> tuple[np.ndarray, GLUCache]:
    """Cached-activations GLU forward (mirrors ``GatedLinearUnit.forward``)."""
    gate = fastpath.sigmoid(
        fastpath.linear_forward(x, glu.gate.weight.data, glu.gate.bias.data)
    )
    value = fastpath.linear_forward(x, glu.value.weight.data, glu.value.bias.data)
    return gate * value, GLUCache(x=x, gate=gate, value=value)


def glu_backward(
    glu, cache: GLUCache, dout: np.ndarray, need_dx: bool = True
) -> np.ndarray | None:
    """GLU backward: sigmoid and value branches fused into two gemms each."""
    dgate_pre = (dout * cache.value) * cache.gate * (1.0 - cache.gate)
    dvalue = dout * cache.gate
    dx_gate, dw_gate, db_gate = linear_backward(
        cache.x, glu.gate.weight.data, dgate_pre, need_dx=need_dx
    )
    accumulate_grad(glu.gate.weight, dw_gate)
    accumulate_grad(glu.gate.bias, db_gate)
    dx_value, dw_value, db_value = linear_backward(
        cache.x, glu.value.weight.data, dvalue, need_dx=need_dx
    )
    accumulate_grad(glu.value.weight, dw_value)
    accumulate_grad(glu.value.bias, db_value)
    if not need_dx:
        return None
    return dx_gate + dx_value


@dataclass
class GRNCache:
    """Forward activations of one GatedResidualNetwork call."""

    x: np.ndarray  # layer input
    tanh_out: np.ndarray  # tanh(fc1(x))
    drop_mask: np.ndarray | None  # inverted-dropout mask, None when inactive
    glu: GLUCache
    norm: LayerNormCache


def grn_forward_train(grn, x: np.ndarray) -> tuple[np.ndarray, GRNCache]:
    """Cached-activations GRN forward (mirrors ``GatedResidualNetwork.forward``).

    When dropout is active (training mode and ``p > 0``) the mask is
    drawn from the layer's own rng exactly as the tape path would, so
    both paths consume the same stream; the TFT's GRNs run with
    ``p == 0`` and skip the draw entirely.
    """
    tanh_out = np.tanh(
        fastpath.linear_forward(x, grn.fc1.weight.data, grn.fc1.bias.data)
    )
    hidden = fastpath.linear_forward(tanh_out, grn.fc2.weight.data, grn.fc2.bias.data)
    drop_mask = None
    if grn.dropout.training and grn.dropout.p > 0.0:
        keep = 1.0 - grn.dropout.p
        drop_mask = grn.dropout._rng.binomial(1, keep, size=hidden.shape) / keep
        hidden = hidden * drop_mask
    gated, glu_cache = glu_forward_train(grn.glu, hidden)
    residual = x if grn.skip is None else x @ grn.skip.weight.data
    out, norm_cache = layer_norm_forward_train(grn.norm, residual + gated)
    return out, GRNCache(
        x=x, tanh_out=tanh_out, drop_mask=drop_mask, glu=glu_cache, norm=norm_cache
    )


def grn_backward(grn, cache: GRNCache, dout: np.ndarray) -> np.ndarray:
    """GRN backward: LayerNorm, GLU, dropout, tanh, and the residual
    branch chained on the cached activations; returns the input grad."""
    dsum = layer_norm_backward(grn.norm, cache.norm, dout)
    dhidden = glu_backward(grn.glu, cache.glu, dsum)
    if cache.drop_mask is not None:
        dhidden = dhidden * cache.drop_mask
    dtanh, dw_fc2, db_fc2 = linear_backward(
        cache.tanh_out, grn.fc2.weight.data, dhidden
    )
    accumulate_grad(grn.fc2.weight, dw_fc2)
    accumulate_grad(grn.fc2.bias, db_fc2)
    dfc1 = dtanh * (1.0 - cache.tanh_out * cache.tanh_out)
    dx, dw_fc1, db_fc1 = linear_backward(cache.x, grn.fc1.weight.data, dfc1)
    accumulate_grad(grn.fc1.weight, dw_fc1)
    accumulate_grad(grn.fc1.bias, db_fc1)
    if grn.skip is None:
        dx = dx + dsum  # identity residual
    else:
        dx_skip, dw_skip, _ = linear_backward(cache.x, grn.skip.weight.data, dsum)
        accumulate_grad(grn.skip.weight, dw_skip)
        dx = dx + dx_skip
    return dx


@dataclass
class AttentionCache:
    """Forward activations of one InterpretableMultiHeadAttention call."""

    query: np.ndarray  # (B, Tq, d_model)
    key: np.ndarray  # (B, Tk, d_model)
    value: np.ndarray  # (B, Tk, d_model)
    w_q: np.ndarray  # concatenated per-head query weights (d_model, H*dh)
    w_k: np.ndarray
    q_heads: np.ndarray  # (H, B, Tq, dh)
    k_heads: np.ndarray  # (H, B, Tk, dh)
    v: np.ndarray  # shared value projection (B, Tk, dh)
    weights: np.ndarray  # per-head softmax (H, B, Tq, Tk)
    mean_weights: np.ndarray  # head average (B, Tq, Tk)
    mean_heads: np.ndarray  # head-averaged context (B, Tq, dh)


def attention_forward_train(
    attn, query: np.ndarray, key: np.ndarray, value: np.ndarray,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, AttentionCache]:
    """Cached-activations interpretable attention forward.

    Identical arithmetic to :func:`fastpath.interpretable_attention`
    (itself bitwise-identical to the tape's per-head loop in float64);
    returns ``(output, mean attention weights, cache)``.
    """
    w_q, b_q = fastpath.prepare_attention_params(
        [(p.weight.data, p.bias.data) for p in attn._q_projs]
    )
    w_k, b_k = fastpath.prepare_attention_params(
        [(p.weight.data, p.bias.data) for p in attn._k_projs]
    )
    num_heads = attn.num_heads
    d_head = attn.d_head
    batch, t_query, _ = query.shape
    t_key = key.shape[1]
    q_all = fastpath.linear_forward(query, w_q, b_q)
    k_all = fastpath.linear_forward(key, w_k, b_k)
    v = fastpath.linear_forward(value, attn.v_proj.weight.data, attn.v_proj.bias.data)
    q_heads = np.ascontiguousarray(
        np.moveaxis(q_all.reshape(batch, t_query, num_heads, d_head), 2, 0)
    )
    k_heads = np.ascontiguousarray(
        np.moveaxis(k_all.reshape(batch, t_key, num_heads, d_head), 2, 0)
    )
    scores = (q_heads @ np.swapaxes(k_heads, -1, -2)) * (1.0 / np.sqrt(d_head))
    if mask is not None:
        scores = scores + mask
    weights = fastpath.softmax(scores, axis=-1)
    heads = weights @ v
    mean_heads = heads.sum(axis=0) * (1.0 / num_heads)
    mean_weights = weights.sum(axis=0) * (1.0 / num_heads)
    out = fastpath.linear_forward(
        mean_heads, attn.out_proj.weight.data, attn.out_proj.bias.data
    )
    cache = AttentionCache(
        query=query, key=key, value=value, w_q=w_q, w_k=w_k,
        q_heads=q_heads, k_heads=k_heads, v=v, weights=weights,
        mean_weights=mean_weights, mean_heads=mean_heads,
    )
    return out, mean_weights, cache


def attention_backward(
    attn, cache: AttentionCache, dout: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Interpretable-attention backward on the cached forward.

    The structure collapses nicely: the head average hands every head
    the *same* output gradient ``dmean/H``, and the value projection is
    shared, so

    * ``dV = mean_weights^T @ dmean`` (one batched gemm — the per-head
      sum telescopes into the already-averaged attention pattern), and
    * the pre-softmax weight gradient is the same for every head; only
      the softmax JVP (which uses each head's own weights) splits per
      head, followed by one ``(H*B)``-batched gemm pair for dQ/dK.

    Weight gradients accumulate into the per-head Q/K projections (by
    slicing the concatenated gemm gradient), the shared value
    projection, and the output head.  Returns ``(dquery, dkey,
    dvalue)``.
    """
    num_heads = attn.num_heads
    d_head = attn.d_head
    batch, t_query, _ = cache.query.shape
    t_key = cache.key.shape[1]
    dmean, dw_out, db_out = linear_backward(
        cache.mean_heads, attn.out_proj.weight.data, dout
    )
    accumulate_grad(attn.out_proj.weight, dw_out)
    accumulate_grad(attn.out_proj.bias, db_out)
    dheads = dmean * (1.0 / num_heads)  # identical for every head
    dv = np.swapaxes(cache.mean_weights, -1, -2) @ dmean
    dweights = dheads @ np.swapaxes(cache.v, -1, -2)  # shared across heads
    dscores = softmax_backward(cache.weights, dweights)
    dscores *= 1.0 / np.sqrt(d_head)
    dq_heads = dscores @ cache.k_heads  # (H, B, Tq, dh)
    dk_heads = np.swapaxes(dscores, -1, -2) @ cache.q_heads  # (H, B, Tk, dh)
    dq_all = np.moveaxis(dq_heads, 0, 2).reshape(batch, t_query, num_heads * d_head)
    dk_all = np.moveaxis(dk_heads, 0, 2).reshape(batch, t_key, num_heads * d_head)
    dquery, dw_q, db_q = linear_backward(cache.query, cache.w_q, dq_all)
    dkey, dw_k, db_k = linear_backward(cache.key, cache.w_k, dk_all)
    for head, (q_proj, k_proj) in enumerate(zip(attn._q_projs, attn._k_projs)):
        cols = slice(head * d_head, (head + 1) * d_head)
        accumulate_grad(q_proj.weight, dw_q[:, cols])
        accumulate_grad(q_proj.bias, db_q[cols])
        accumulate_grad(k_proj.weight, dw_k[:, cols])
        accumulate_grad(k_proj.bias, db_k[cols])
    dvalue, dw_v, db_v = linear_backward(cache.value, attn.v_proj.weight.data, dv)
    accumulate_grad(attn.v_proj.weight, dw_v)
    accumulate_grad(attn.v_proj.bias, db_v)
    return dquery, dkey, dvalue


# ---------------------------------------------------------------------------
# Fused LSTM BPTT
# ---------------------------------------------------------------------------
@dataclass
class LSTMLayerCache:
    """Activations of one LSTM layer's teacher-forced forward.

    Everything the reverse sweep needs, laid out as whole-sequence
    buffers: inputs and previous hidden states feed the final weight
    gemms; gates (permuted ``[i, f, o, g]``, post-activation), cell
    states, and their tanh feed the per-step delta computation.
    """

    inputs: np.ndarray  # (B, T, F_in) — this layer's input sequence
    h_prev: np.ndarray  # (B, T, H) — hidden state *entering* each step
    gates: np.ndarray  # (B, T, 4H) — [i, f, o, g] post-activation
    c_prev: np.ndarray  # (B, T, H) — cell state entering each step
    tanh_c: np.ndarray  # (B, T, H) — tanh of the new cell state
    w_ih: np.ndarray  # permuted weights used in the forward
    w_hh: np.ndarray
    h_last: np.ndarray  # (B, H) — final hidden state (seeds a chained LSTM)
    c_last: np.ndarray  # (B, H) — final cell state


def lstm_forward_train(
    x: np.ndarray,
    layer_params: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    hidden_size: int,
    state: list[tuple[np.ndarray, np.ndarray]] | None = None,
    dtype: np.dtype | type | None = None,
) -> tuple[np.ndarray, list[LSTMLayerCache]]:
    """Teacher-forced multi-layer LSTM forward with cached activations.

    Parameters mirror :func:`fastpath.lstm_forward` (standard-layout
    ``(w_ih, w_hh, bias)`` per layer; optional per-layer ``(h, c)``
    initial ``state`` — the TFT decoder is seeded with the encoder's
    final state).  Returns the top layer's hidden sequence
    ``(batch, time, hidden)`` plus per-layer caches for
    :func:`lstm_backward`; :func:`lstm_final_state` extracts the final
    per-layer state for chaining into a second LSTM.

    The input gemm is hoisted: ``x @ W_ih`` runs once over the flattened
    ``(batch*time)`` axis per layer, so the time loop only pays the
    recurrent ``h @ W_hh`` matmul plus elementwise gate math — the same
    values, associated in the same order, as the tape's per-step
    ``(x @ W_ih + h @ W_hh) + b``.

    ``dtype=None`` (default) keeps the bitwise float64 behaviour;
    ``np.float32`` runs the whole cached forward in single precision
    (the backward then follows the caches' dtype).
    """
    work = np.float64 if dtype is None else np.dtype(dtype)
    x = x.astype(work, copy=False)
    batch, steps, _ = x.shape
    hs = hidden_size
    prepared = fastpath.prepare_lstm_params(layer_params, hs, dtype=dtype)
    if state is not None:
        state = [
            (h.astype(work, copy=False), c.astype(work, copy=False)) for h, c in state
        ]
    caches: list[LSTMLayerCache] = []
    layer_input = x
    for layer, (w_ih, w_hh, bias) in enumerate(prepared):
        in_features = layer_input.shape[-1]
        # Hoisted input gemm: one (B*T, F) @ (F, 4H) for the whole sequence.
        xg = (layer_input.reshape(-1, in_features) @ w_ih).reshape(batch, steps, 4 * hs)
        gates = np.empty((batch, steps, 4 * hs), dtype=work)
        h_prev = np.empty((batch, steps, hs), dtype=work)
        c_prev = np.empty((batch, steps, hs), dtype=work)
        tanh_c = np.empty((batch, steps, hs), dtype=work)
        outputs = np.empty((batch, steps, hs), dtype=work)
        if state is None:
            h = np.zeros((batch, hs), dtype=work)
            c = np.zeros((batch, hs), dtype=work)
        else:
            h, c = state[layer]
        for t in range(steps):
            h_prev[:, t] = h
            c_prev[:, t] = c
            z = xg[:, t] + h @ w_hh + bias
            ifo = fastpath.sigmoid(z[:, : 3 * hs])
            g = np.tanh(z[:, 3 * hs :])
            gates[:, t, : 3 * hs] = ifo
            gates[:, t, 3 * hs :] = g
            c = ifo[:, hs : 2 * hs] * c + ifo[:, :hs] * g
            tc = np.tanh(c)
            tanh_c[:, t] = tc
            h = ifo[:, 2 * hs :] * tc
            outputs[:, t] = h
        caches.append(
            LSTMLayerCache(
                inputs=layer_input,
                h_prev=h_prev,
                gates=gates,
                c_prev=c_prev,
                tanh_c=tanh_c,
                w_ih=w_ih,
                w_hh=w_hh,
                h_last=h,
                c_last=c,
            )
        )
        layer_input = outputs
    return layer_input, caches


def lstm_final_state(caches: list[LSTMLayerCache]) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-layer final ``(h, c)`` of a cached forward — ready to seed a
    chained :func:`lstm_forward_train` (the TFT encoder -> decoder hand-off)."""
    return [(cache.h_last, cache.c_last) for cache in caches]


def lstm_backward(
    dout: np.ndarray,
    caches: list[LSTMLayerCache],
    hidden_size: int,
    need_dx: bool = False,
    dstate: list[tuple[np.ndarray, np.ndarray]] | None = None,
) -> tuple[
    list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    np.ndarray | None,
    list[tuple[np.ndarray, np.ndarray]],
]:
    """Fused BPTT through every layer of :func:`lstm_forward_train`.

    ``dout`` is the loss gradient w.r.t. the top layer's hidden sequence
    ``(batch, time, hidden)``; ``dstate`` optionally adds the loss
    gradient w.r.t. each layer's *final* ``(h, c)`` — this is how the
    TFT decoder's initial-state gradient flows back into the encoder.
    Returns per-layer standard-layout ``(dW_ih, dW_hh, db)`` gradients
    (ready to drop into the tape's parameter buffers), the gradient
    w.r.t. the bottom layer's input when ``need_dx``, and the per-layer
    gradient w.r.t. the *initial* ``(h, c)`` state (the reverse sweep's
    carries after step 0 — free to return, and exactly what a chained
    :func:`lstm_backward` upstream consumes as its ``dstate``).

    The reverse time sweep only computes the per-step gate deltas and
    the two recurrences (``dh`` through ``W_hh``, ``dc`` through the
    forget gate); all weight gradients are deferred to three
    whole-sequence matmuls at the end.
    """
    hs = hidden_size
    perm = gate_permutation(hs)
    grads: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = [None] * len(caches)  # type: ignore[list-item]
    dstate0: list[tuple[np.ndarray, np.ndarray]] = [None] * len(caches)  # type: ignore[list-item]
    dh_seq = dout
    dx: np.ndarray | None = None
    for layer in range(len(caches) - 1, -1, -1):
        cache = caches[layer]
        batch, steps, _ = cache.inputs.shape
        # Follow the forward's precision: float32 caches get a float32
        # reverse sweep (for float64 this allocates exactly as before).
        work = cache.gates.dtype
        dz = np.empty((batch, steps, 4 * hs), dtype=work)
        if dstate is None:
            dh_carry = np.zeros((batch, hs), dtype=work)
            dc_carry = np.zeros((batch, hs), dtype=work)
        else:
            dh_carry = np.asarray(dstate[layer][0], dtype=work)
            dc_carry = np.asarray(dstate[layer][1], dtype=work)
        w_hh_t = cache.w_hh.T
        for t in range(steps - 1, -1, -1):
            gates_t = cache.gates[:, t]
            i = gates_t[:, :hs]
            f = gates_t[:, hs : 2 * hs]
            o = gates_t[:, 2 * hs : 3 * hs]
            g = gates_t[:, 3 * hs :]
            tc = cache.tanh_c[:, t]
            dh = dh_seq[:, t] + dh_carry
            do = dh * tc
            dc = dc_carry + dh * o * (1.0 - tc * tc)
            dz_t = dz[:, t]
            dz_t[:, :hs] = (dc * g) * i * (1.0 - i)
            dz_t[:, hs : 2 * hs] = (dc * cache.c_prev[:, t]) * f * (1.0 - f)
            dz_t[:, 2 * hs : 3 * hs] = do * o * (1.0 - o)
            dz_t[:, 3 * hs :] = (dc * i) * (1.0 - g * g)
            dh_carry = dz_t @ w_hh_t
            dc_carry = dc * f
        # After the t = 0 iteration the carries *are* d(h0)/d(c0).
        dstate0[layer] = (dh_carry, dc_carry)
        dz2 = dz.reshape(-1, 4 * hs)
        in_features = cache.inputs.shape[-1]
        dw_ih = cache.inputs.reshape(-1, in_features).T @ dz2
        dw_hh = cache.h_prev.reshape(-1, hs).T @ dz2
        db = dz2.sum(axis=0)
        # Forward used permuted columns; the involution maps back to the
        # standard [i, f, g, o] parameter layout.
        grads[layer] = (dw_ih[:, perm], dw_hh[:, perm], db[perm])
        if layer > 0 or need_dx:
            dx = (dz2 @ cache.w_ih.T).reshape(batch, steps, in_features)
            dh_seq = dx
        else:
            dx = None
    return grads, dx, dstate0
