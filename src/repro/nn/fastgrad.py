"""Analytic training kernels: fused forward+backward for the hot loop.

:mod:`repro.nn.fastpath` removed the Tensor tape from *inference*; this
module removes it from *training*.  The per-op autograd tape is the
right tool for odd architectures (the TFT's attention stack still uses
it), but for the teacher-forced LSTM/MLP losses that dominate retraining
wall-clock the gradients are known in closed form, so the whole backward
pass collapses into a handful of fused numpy sweeps:

* **LSTM BPTT** — one cached-activations forward over the entire
  teacher-forced sequence (the input gemm ``x @ W_ih`` is hoisted out of
  the time loop and done for all timesteps at once), then a single
  reverse sweep that accumulates per-step gate deltas into a
  ``(batch, time, 4*hidden)`` buffer.  The weight gradients
  ``dW_ih / dW_hh / db`` then fall out of *one* matmul each over the
  flattened ``(batch*time)`` axis — instead of the thousands of taped
  micro-ops (slice, sigmoid-backward, outer-product accumulate, ...)
  the tape replays per timestep.
* **Head kernels** — linear/activation backwards and closed-form
  gradients of the Gaussian and Student-t negative log-likelihoods
  (the ``df`` gradient differentiates the same shifted-Stirling
  ``log Gamma`` series the tape uses, so both paths optimise the same
  approximate objective).

The forward computes the same float64 operations in the same
association order as the tape (it reuses :mod:`fastpath`'s
``[i, f, o, g]`` permuted-weight layout, which is a bitwise-neutral
column permutation), so loss values match the tape to machine rounding.
Backward values are mathematically identical but summed in a different
order, so individual gradients agree to ~1e-12 relative rather than bit
for bit; the parity suite (``tests/nn/test_fastgrad.py``) checks every
kernel against both finite differences and the tape.

Dispatch is opt-in per training run via
``TrainingConfig(train_fast_path=True)`` (the default); the tape remains
the parity oracle and is selected with ``train_fast_path=False``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import fastpath

__all__ = [
    "accumulate_grad",
    "gate_permutation",
    "permute_gate_columns",
    "linear_backward",
    "sigmoid_backward",
    "tanh_backward",
    "relu_backward",
    "softplus_backward",
    "log_gamma",
    "digamma",
    "gaussian_nll_grads",
    "student_t_nll_grads",
    "LSTMLayerCache",
    "lstm_forward_train",
    "lstm_backward",
]


def accumulate_grad(param, grad: np.ndarray) -> None:
    """Add ``grad`` into a Parameter's ``.grad`` buffer, creating it if unset.

    Mirrors ``Tensor._accumulate`` for raw arrays (shapes already match,
    so no unbroadcasting is needed); the optimizer and
    ``clip_grad_norm`` then see exactly what the tape would have left.
    """
    if param.grad is None:
        param.grad = np.ascontiguousarray(grad)
    else:
        param.grad += grad


# ---------------------------------------------------------------------------
# Gate layout
# ---------------------------------------------------------------------------
def gate_permutation(hidden_size: int) -> np.ndarray:
    """Column permutation mapping [i, f, g, o] to [i, f, o, g].

    This is the layout :func:`fastpath.prepare_lstm_params` uses so the
    three sigmoid gates are adjacent.  The permutation swaps the g and o
    blocks and is therefore its own inverse — applying it to a permuted
    gradient returns it to the standard layout.
    """
    hs = hidden_size
    return np.concatenate(
        [np.arange(0, 2 * hs), np.arange(3 * hs, 4 * hs), np.arange(2 * hs, 3 * hs)]
    )


def permute_gate_columns(array: np.ndarray, hidden_size: int) -> np.ndarray:
    """Apply the (involutive) gate permutation along the last axis."""
    return np.ascontiguousarray(array[..., gate_permutation(hidden_size)])


# ---------------------------------------------------------------------------
# Elementwise / dense backward kernels
# ---------------------------------------------------------------------------
def linear_backward(
    x: np.ndarray, weight: np.ndarray, dout: np.ndarray, need_dx: bool = True
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
    """Backward of ``y = x @ W + b`` for ``x`` of shape (..., in).

    Returns ``(dx, dW, db)``; leading axes of ``x``/``dout`` are
    flattened for the weight gradient so a (batch, time, features)
    sequence costs one gemm, not time-many.
    """
    in_features = weight.shape[0]
    out_features = weight.shape[1]
    x2 = x.reshape(-1, in_features)
    d2 = dout.reshape(-1, out_features)
    dw = x2.T @ d2
    db = d2.sum(axis=0)
    dx = (d2 @ weight.T).reshape(x.shape) if need_dx else None
    return dx, dw, db


def sigmoid_backward(out: np.ndarray, dout: np.ndarray) -> np.ndarray:
    """d/dx sigmoid from the forward *output* (matches the tape's rule)."""
    return dout * out * (1.0 - out)


def tanh_backward(out: np.ndarray, dout: np.ndarray) -> np.ndarray:
    """d/dx tanh from the forward *output*."""
    return dout * (1.0 - out * out)


def relu_backward(x: np.ndarray, dout: np.ndarray) -> np.ndarray:
    """d/dx relu from the forward *input* (gradient zero at x <= 0)."""
    return dout * (x > 0)


def softplus_backward(x: np.ndarray, dout: np.ndarray) -> np.ndarray:
    """d/dx softplus = sigmoid(x), using the stable fastpath sigmoid."""
    return dout * fastpath.sigmoid(x)


# ---------------------------------------------------------------------------
# Likelihood kernels
# ---------------------------------------------------------------------------
def log_gamma(x: np.ndarray) -> np.ndarray:
    """Raw-numpy replica of ``functional._log_gamma`` (shifted Stirling)."""
    shifted = x + 2.0
    correction = np.log(x) + np.log(x + 1.0)
    series = (
        (shifted - 0.5) * np.log(shifted)
        - shifted
        + 0.5 * np.log(2.0 * np.pi)
        + 1.0 / (shifted * 12.0)
        - 1.0 / (shifted * shifted * shifted * 360.0)
    )
    return series - correction


def digamma(x: np.ndarray) -> np.ndarray:
    """Exact derivative of :func:`log_gamma` (not of the true digamma).

    Differentiating the same approximation the tape composes means the
    fast path optimises the identical objective: for
    ``s = x + 2``,

    ``d/dx log_gamma(x) = log s - 1/(2s) - 1/(12 s^2) + 1/(120 s^4)
    - 1/x - 1/(x+1)``.
    """
    s = x + 2.0
    s2 = s * s
    return (
        np.log(s)
        - 0.5 / s
        - 1.0 / (12.0 * s2)
        + 1.0 / (120.0 * s2 * s2)
        - 1.0 / x
        - 1.0 / (x + 1.0)
    )


def gaussian_nll_grads(
    mean: np.ndarray, std: np.ndarray, target: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """Mean Gaussian NLL and its gradients w.r.t. ``mean`` and ``std``.

    Forward matches ``functional.gaussian_nll`` term for term:
    ``mean(0.5 log var + (y - mu)^2 / (2 var)) + 0.5 log 2 pi``.
    """
    var = std * std
    diff = target - mean
    loss = float(np.mean(0.5 * np.log(var) + diff * diff / (var * 2.0))) + 0.5 * np.log(
        2.0 * np.pi
    )
    n = mean.size
    dmean = -diff / var / n
    dstd = (1.0 / std - diff * diff / (var * std)) / n
    return loss, dmean, dstd


def student_t_nll_grads(
    mean: np.ndarray, scale: np.ndarray, df: np.ndarray, target: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """Mean Student-t NLL and gradients w.r.t. ``mean``, ``scale``, ``df``.

    Forward replicates ``functional.student_t_nll`` (with the same
    Stirling ``log Gamma``); the gradients are the closed forms

    * ``dL/dmu    = -(nu+1) z / (s (nu + z^2)) / N``
    * ``dL/ds     = (1 - (nu+1) z^2 / (nu + z^2)) / s / N``
    * ``dL/dnu    = [psi(nu/2) - psi((nu+1)/2)] / 2 + 1/(2 nu)
      + log(1 + z^2/nu)/2 - (nu+1) z^2 / (2 nu (nu + z^2)) / 1 / N``

    with ``z = (y - mu)/s`` and ``psi`` the derivative of the same
    approximation (:func:`digamma`).
    """
    z = (target - mean) / scale
    z2 = z * z
    nu = df
    kernel = z2 / nu + 1.0  # (nu + z^2) / nu
    log_norm = (
        log_gamma((nu + 1.0) * 0.5)
        - log_gamma(nu * 0.5)
        - np.log(nu * np.pi) * 0.5
        - np.log(scale)
    )
    log_kernel = np.log(kernel) * ((nu + 1.0) * (-0.5))
    loss = float(-np.mean(log_norm + log_kernel))

    n = mean.size
    denom = nu + z2
    dmean = -(nu + 1.0) * z / (denom * scale) / n
    dscale = (1.0 - (nu + 1.0) * z2 / denom) / scale / n
    ddf = (
        0.5 * (digamma(nu * 0.5) - digamma((nu + 1.0) * 0.5))
        + 0.5 / nu
        + 0.5 * np.log(kernel)
        - 0.5 * (nu + 1.0) * z2 / (nu * denom)
    ) / n
    return loss, dmean, dscale, ddf


# ---------------------------------------------------------------------------
# Fused LSTM BPTT
# ---------------------------------------------------------------------------
@dataclass
class LSTMLayerCache:
    """Activations of one LSTM layer's teacher-forced forward.

    Everything the reverse sweep needs, laid out as whole-sequence
    buffers: inputs and previous hidden states feed the final weight
    gemms; gates (permuted ``[i, f, o, g]``, post-activation), cell
    states, and their tanh feed the per-step delta computation.
    """

    inputs: np.ndarray  # (B, T, F_in) — this layer's input sequence
    h_prev: np.ndarray  # (B, T, H) — hidden state *entering* each step
    gates: np.ndarray  # (B, T, 4H) — [i, f, o, g] post-activation
    c_prev: np.ndarray  # (B, T, H) — cell state entering each step
    tanh_c: np.ndarray  # (B, T, H) — tanh of the new cell state
    w_ih: np.ndarray  # permuted weights used in the forward
    w_hh: np.ndarray


def lstm_forward_train(
    x: np.ndarray,
    layer_params: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    hidden_size: int,
    dtype: np.dtype | type | None = None,
) -> tuple[np.ndarray, list[LSTMLayerCache]]:
    """Teacher-forced multi-layer LSTM forward with cached activations.

    Parameters mirror :func:`fastpath.lstm_forward` (standard-layout
    ``(w_ih, w_hh, bias)`` per layer; zero initial state, as training
    always uses).  Returns the top layer's hidden sequence
    ``(batch, time, hidden)`` plus per-layer caches for
    :func:`lstm_backward`.

    The input gemm is hoisted: ``x @ W_ih`` runs once over the flattened
    ``(batch*time)`` axis per layer, so the time loop only pays the
    recurrent ``h @ W_hh`` matmul plus elementwise gate math — the same
    values, associated in the same order, as the tape's per-step
    ``(x @ W_ih + h @ W_hh) + b``.

    ``dtype=None`` (default) keeps the bitwise float64 behaviour;
    ``np.float32`` runs the whole cached forward in single precision
    (the backward then follows the caches' dtype).
    """
    work = np.float64 if dtype is None else np.dtype(dtype)
    x = x.astype(work, copy=False)
    batch, steps, _ = x.shape
    hs = hidden_size
    prepared = fastpath.prepare_lstm_params(layer_params, hs, dtype=dtype)
    caches: list[LSTMLayerCache] = []
    layer_input = x
    for w_ih, w_hh, bias in prepared:
        in_features = layer_input.shape[-1]
        # Hoisted input gemm: one (B*T, F) @ (F, 4H) for the whole sequence.
        xg = (layer_input.reshape(-1, in_features) @ w_ih).reshape(batch, steps, 4 * hs)
        gates = np.empty((batch, steps, 4 * hs), dtype=work)
        h_prev = np.empty((batch, steps, hs), dtype=work)
        c_prev = np.empty((batch, steps, hs), dtype=work)
        tanh_c = np.empty((batch, steps, hs), dtype=work)
        outputs = np.empty((batch, steps, hs), dtype=work)
        h = np.zeros((batch, hs), dtype=work)
        c = np.zeros((batch, hs), dtype=work)
        for t in range(steps):
            h_prev[:, t] = h
            c_prev[:, t] = c
            z = xg[:, t] + h @ w_hh + bias
            ifo = fastpath.sigmoid(z[:, : 3 * hs])
            g = np.tanh(z[:, 3 * hs :])
            gates[:, t, : 3 * hs] = ifo
            gates[:, t, 3 * hs :] = g
            c = ifo[:, hs : 2 * hs] * c + ifo[:, :hs] * g
            tc = np.tanh(c)
            tanh_c[:, t] = tc
            h = ifo[:, 2 * hs :] * tc
            outputs[:, t] = h
        caches.append(
            LSTMLayerCache(
                inputs=layer_input,
                h_prev=h_prev,
                gates=gates,
                c_prev=c_prev,
                tanh_c=tanh_c,
                w_ih=w_ih,
                w_hh=w_hh,
            )
        )
        layer_input = outputs
    return layer_input, caches


def lstm_backward(
    dout: np.ndarray,
    caches: list[LSTMLayerCache],
    hidden_size: int,
    need_dx: bool = False,
) -> tuple[list[tuple[np.ndarray, np.ndarray, np.ndarray]], np.ndarray | None]:
    """Fused BPTT through every layer of :func:`lstm_forward_train`.

    ``dout`` is the loss gradient w.r.t. the top layer's hidden sequence
    ``(batch, time, hidden)``.  Returns per-layer standard-layout
    ``(dW_ih, dW_hh, db)`` gradients (ready to drop into the tape's
    parameter buffers) and, when ``need_dx``, the gradient w.r.t. the
    bottom layer's input.

    The reverse time sweep only computes the per-step gate deltas and
    the two recurrences (``dh`` through ``W_hh``, ``dc`` through the
    forget gate); all weight gradients are deferred to three
    whole-sequence matmuls at the end.
    """
    hs = hidden_size
    perm = gate_permutation(hs)
    grads: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = [None] * len(caches)  # type: ignore[list-item]
    dh_seq = dout
    dx: np.ndarray | None = None
    for layer in range(len(caches) - 1, -1, -1):
        cache = caches[layer]
        batch, steps, _ = cache.inputs.shape
        # Follow the forward's precision: float32 caches get a float32
        # reverse sweep (for float64 this allocates exactly as before).
        work = cache.gates.dtype
        dz = np.empty((batch, steps, 4 * hs), dtype=work)
        dh_carry = np.zeros((batch, hs), dtype=work)
        dc_carry = np.zeros((batch, hs), dtype=work)
        w_hh_t = cache.w_hh.T
        for t in range(steps - 1, -1, -1):
            gates_t = cache.gates[:, t]
            i = gates_t[:, :hs]
            f = gates_t[:, hs : 2 * hs]
            o = gates_t[:, 2 * hs : 3 * hs]
            g = gates_t[:, 3 * hs :]
            tc = cache.tanh_c[:, t]
            dh = dh_seq[:, t] + dh_carry
            do = dh * tc
            dc = dc_carry + dh * o * (1.0 - tc * tc)
            dz_t = dz[:, t]
            dz_t[:, :hs] = (dc * g) * i * (1.0 - i)
            dz_t[:, hs : 2 * hs] = (dc * cache.c_prev[:, t]) * f * (1.0 - f)
            dz_t[:, 2 * hs : 3 * hs] = do * o * (1.0 - o)
            dz_t[:, 3 * hs :] = (dc * i) * (1.0 - g * g)
            dh_carry = dz_t @ w_hh_t
            dc_carry = dc * f
        dz2 = dz.reshape(-1, 4 * hs)
        in_features = cache.inputs.shape[-1]
        dw_ih = cache.inputs.reshape(-1, in_features).T @ dz2
        dw_hh = cache.h_prev.reshape(-1, hs).T @ dz2
        db = dz2.sum(axis=0)
        # Forward used permuted columns; the involution maps back to the
        # standard [i, f, g, o] parameter layout.
        grads[layer] = (dw_ih[:, perm], dw_hh[:, perm], db[perm])
        if layer > 0 or need_dx:
            dx = (dz2 @ cache.w_ih.T).reshape(batch, steps, in_features)
            dh_seq = dx
        else:
            dx = None
    return grads, dx
