"""Solvers for the auto-scaling optimization problems (Definitions 3-6).

The unconstrained problem ``min sum c_t  s.t.  w_t / c_t <= theta_t``
is separable per step, so the exact optimum is closed form:
``c_t = ceil(w_t / theta_t)``.  The paper notes the deterministic
reformulation "can be solved using standard linear programming solvers";
:func:`solve_lp` does exactly that (scipy ``linprog`` + ceiling), and the
test suite asserts both solvers agree — the closed form is what the
library uses in production paths.

For the Section V-A discussion (thrashing control), the constrained
variant bounds how many nodes may be added/removed per step.  Because
the objective is separable and increasing, the pointwise-minimal feasible
allocation is optimal; it is computed exactly by a backward+forward
propagation of the ramp constraints — no solver needed.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from .plan import ScalingPlan, required_nodes

__all__ = ["solve_closed_form", "solve_lp", "solve_with_ramp_limits"]


def solve_closed_form(
    workload: np.ndarray, threshold: float | np.ndarray, strategy: str = "robust"
) -> ScalingPlan:
    """Exact solution of Definition 3/6: per-step ceilings.

    ``workload`` is whatever upper bound the caller chose — the point
    forecast (Definition 3), a fixed-quantile forecast (Eq. 6), or a
    per-step adaptive quantile forecast (Eq. 7).
    """
    return ScalingPlan(
        nodes=required_nodes(workload, threshold),
        threshold=threshold,
        strategy=strategy,
    )


def solve_lp(
    workload: np.ndarray, threshold: float | np.ndarray, strategy: str = "robust-lp"
) -> ScalingPlan:
    """Definition 3/6 via scipy's linear-programming solver.

    The LP relaxation ``min sum c_t  s.t.  c_t >= w_t / theta_t, c_t >= 1``
    has the obvious optimum at the bound; node counts are integral, so the
    relaxed solution is ceiled.  Provided to mirror the paper's statement
    and as a cross-check of :func:`solve_closed_form`.
    """
    workload = np.asarray(workload, dtype=np.float64)
    threshold_arr = np.broadcast_to(
        np.asarray(threshold, dtype=np.float64), workload.shape
    )
    horizon = len(workload)
    lower = np.maximum(workload / threshold_arr, 1.0)
    result = linprog(
        c=np.ones(horizon),
        bounds=list(zip(lower, [None] * horizon)),
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP solver failed: {result.message}")
    nodes = np.ceil(result.x - 1e-9).astype(np.int64)
    return ScalingPlan(nodes=np.maximum(nodes, 1), threshold=threshold, strategy=strategy)


def solve_with_ramp_limits(
    workload: np.ndarray,
    threshold: float | np.ndarray,
    max_scale_out: int | None = None,
    max_scale_in: int | None = None,
    initial_nodes: int | None = None,
    strategy: str = "robust-ramped",
) -> ScalingPlan:
    """Thrashing-controlled variant (Section V-A).

    Adds ramp constraints to Definition 6, each side independently
    optional (``None`` leaves that direction unbounded — a legitimate
    configuration, e.g. capping scale-in for thrashing control while
    letting scale-out react freely):

    * ``c_t - c_{t-1} <= max_scale_out`` (limited node additions/step),
    * ``c_{t-1} - c_t <= max_scale_in`` (limited removals/step),
    * optionally anchored at the currently running ``initial_nodes``.

    The demand floor ``d_t = ceil(w_t/theta_t)`` is first raised by a
    backward pass (a step must hold enough nodes to be able to *reach*
    the next step's floor under the scale-out limit) and a forward pass
    (a step cannot drop below the previous step's level minus the
    scale-in limit).  The result is the pointwise least feasible
    allocation, which is optimal because the objective is a sum of
    increasing per-step costs.  With both limits ``None`` the passes
    are no-ops and the result equals :func:`solve_closed_form`.

    Raises
    ------
    ValueError
        If ``initial_nodes`` makes the first step's demand unreachable
        (the workload genuinely cannot be served under the ramp limit).
    """
    for side, limit in (("max_scale_out", max_scale_out), ("max_scale_in", max_scale_in)):
        if limit is not None and limit < 1:
            raise ValueError(f"{side} must be >= 1 node per step (or None)")
    demand = required_nodes(workload, threshold).astype(np.int64)
    horizon = len(demand)
    nodes = demand.copy()

    # Backward: ensure step t can ramp up to meet step t+1's floor.
    if max_scale_out is not None:
        for t in range(horizon - 2, -1, -1):
            nodes[t] = max(nodes[t], nodes[t + 1] - max_scale_out)
    # Forward: honour the scale-in limit (can't shed more than allowed).
    if initial_nodes is not None:
        if max_scale_out is not None and nodes[0] > initial_nodes + max_scale_out:
            raise ValueError(
                f"demand of {nodes[0]} nodes at step 0 unreachable from "
                f"{initial_nodes} under max_scale_out={max_scale_out}"
            )
        if max_scale_in is not None:
            nodes[0] = max(nodes[0], initial_nodes - max_scale_in)
    if max_scale_in is not None:
        for t in range(1, horizon):
            nodes[t] = max(nodes[t], nodes[t - 1] - max_scale_in)

    plan = ScalingPlan(nodes=nodes, threshold=threshold, strategy=strategy)
    plan.metadata["max_scale_out"] = max_scale_out
    plan.metadata["max_scale_in"] = max_scale_in
    if initial_nodes is not None:
        plan.metadata["initial_nodes"] = initial_nodes
    return plan
