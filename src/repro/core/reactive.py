"""Reactive auto-scalers (the paper's non-predictive baselines).

"Reactive scalers, such as Google Autopilot and Kubernetes default HPA
... employ a moving window approach to gather resource usage statistics
over a recent period, which in turn informs the scaling of resources"
(Section IV-A2).  Two window statistics are implemented, matching the
paper's *Reactive-Max* and *Reactive-Avg* (exponentially-decaying
weights, half-life 6 intervals).

A reactive scaler's decision for time t can only see workloads up to
t-1 — the inherent lag the paper's Figure 9 exposes.
"""

from __future__ import annotations

import numpy as np

from .plan import ScalingPlan, required_nodes

__all__ = ["ReactiveScaler", "ReactiveMaxScaler", "ReactiveAvgScaler"]


class ReactiveScaler:
    """Base: replay a workload series, allocating from a trailing window.

    Besides step-by-step :meth:`replay` (the paper's protocol), reactive
    scalers also satisfy the :class:`~repro.core.plan.Planner` contract
    via :meth:`plan` when constructed with ``threshold`` (and usually
    ``horizon``), so they slot into any harness typed against planners
    — a reactive plan simply holds the trailing-window estimate flat
    for the whole horizon, which is exactly the lag Figure 9 exposes.
    """

    def __init__(
        self,
        window: int = 6,
        *,
        threshold: float | None = None,
        horizon: int = 1,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if threshold is not None and threshold <= 0:
            raise ValueError("threshold must be strictly positive")
        self.window = window
        self.threshold = threshold
        self.horizon = horizon

    def window_statistic(self, recent: np.ndarray) -> float:
        """The demand estimate extracted from the trailing window."""
        raise NotImplementedError

    def plan(self, context: np.ndarray, start_index: int = 0) -> ScalingPlan:
        """Commit a flat ``horizon``-step plan from the trailing window.

        Requires ``threshold`` to have been set at construction; the
        estimate comes from the last ``window`` values of ``context``
        (``start_index`` is accepted for protocol conformance and
        ignored — reactive scaling is calendar-blind).
        """
        if self.threshold is None:
            raise ValueError(
                f"{self.name} needs threshold= at construction to plan(); "
                "replay() takes the threshold per call instead"
            )
        context = np.asarray(context, dtype=np.float64)
        if context.size == 0:
            raise ValueError("plan() needs at least one observed workload")
        estimate = max(self.window_statistic(context[-self.window :]), 0.0)
        nodes = np.full(
            self.horizon,
            required_nodes(np.array([estimate]), self.threshold)[0],
            dtype=np.int64,
        )
        return ScalingPlan(nodes=nodes, threshold=self.threshold, strategy=self.name)

    def replay(self, workload: np.ndarray, threshold: float) -> ScalingPlan:
        """Allocate nodes for each step of ``workload`` reactively.

        Step t's allocation is computed from the window of *observed*
        workloads ``workload[max(0, t-window):t]``; the first step has no
        history and allocates a single node.
        """
        workload = np.asarray(workload, dtype=np.float64)
        nodes = np.ones(len(workload), dtype=np.int64)
        for t in range(1, len(workload)):
            recent = workload[max(0, t - self.window) : t]
            estimate = self.window_statistic(recent)
            nodes[t] = required_nodes(np.array([max(estimate, 0.0)]), threshold)[0]
        return ScalingPlan(nodes=nodes, threshold=threshold, strategy=self.name)

    @property
    def name(self) -> str:
        return type(self).__name__


class ReactiveMaxScaler(ReactiveScaler):
    """Scale to the maximum workload observed in the window."""

    def window_statistic(self, recent: np.ndarray) -> float:
        return float(recent.max())

    @property
    def name(self) -> str:
        return "Reactive-Max"


class ReactiveAvgScaler(ReactiveScaler):
    """Scale to an exponentially-decaying weighted average of the window.

    Weights halve every ``half_life`` intervals (paper: half-life 6, so
    with the default 6-step window the newest observation dominates).
    """

    def __init__(
        self,
        window: int = 6,
        half_life: float = 6.0,
        *,
        threshold: float | None = None,
        horizon: int = 1,
    ) -> None:
        super().__init__(window, threshold=threshold, horizon=horizon)
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life

    def window_statistic(self, recent: np.ndarray) -> float:
        ages = np.arange(len(recent) - 1, -1, -1, dtype=np.float64)  # newest age 0
        weights = 0.5 ** (ages / self.half_life)
        return float((recent * weights).sum() / weights.sum())

    @property
    def name(self) -> str:
        return "Reactive-Avg"
