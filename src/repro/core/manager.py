"""The Robust Auto-Scaling Manager (paper Section III-C).

Consumes a :class:`~repro.forecast.base.QuantileForecast` and a
:class:`~repro.core.policies.QuantilePolicy`, selects the per-step
workload upper bound, and solves the deterministic counterpart of the
robust optimization problem to produce a :class:`ScalingPlan`.
"""

from __future__ import annotations

import numpy as np

from ..forecast.base import QuantileForecast
from .optimizer import solve_closed_form, solve_with_ramp_limits
from .plan import ScalingPlan
from .policies import FixedQuantilePolicy, QuantilePolicy
from .uncertainty import quantile_uncertainty

__all__ = ["RobustAutoScalingManager"]


class RobustAutoScalingManager:
    """Turns quantile forecasts into robust scaling plans.

    Parameters
    ----------
    threshold:
        theta — the per-node workload threshold (e.g. percentage CPU a
        node may average).  Scalar or per-step array.
    policy:
        Quantile-selection policy; defaults to the basic robust strategy
        at the 0.9 quantile (the paper's running example).
    max_scale_out, max_scale_in:
        Optional ramp limits per step (Section V-A thrashing control).
        ``None`` disables the corresponding constraint; each side is
        independent, so e.g. capping only ``max_scale_in`` (thrashing
        control on release while scale-out stays unbounded) is valid.
    """

    def __init__(
        self,
        threshold: float | np.ndarray,
        policy: QuantilePolicy | None = None,
        max_scale_out: int | None = None,
        max_scale_in: int | None = None,
    ) -> None:
        threshold_arr = np.asarray(threshold, dtype=np.float64)
        if np.any(threshold_arr <= 0):
            raise ValueError("threshold must be strictly positive")
        self.threshold = threshold
        self.policy = policy if policy is not None else FixedQuantilePolicy(0.9)
        self.max_scale_out = max_scale_out
        self.max_scale_in = max_scale_in

    def plan(
        self, forecast: QuantileForecast, current_nodes: int | None = None
    ) -> ScalingPlan:
        """Solve Definition 6/7 for one decision horizon.

        Parameters
        ----------
        forecast:
            Quantile forecasts for the horizon.
        current_nodes:
            Currently running nodes; only used when ramp limits are set,
            to anchor the first step's transition.
        """
        levels = self.policy.select_levels(forecast)
        bound = self.policy.bound_workload(forecast)
        if np.any(bound < 0):
            # Quantile forecasts can dip below zero on normalised models;
            # workload is physically non-negative.
            bound = np.maximum(bound, 0.0)
        ramp_clipped_steps = 0
        if self.max_scale_out is not None or self.max_scale_in is not None:
            plan = solve_with_ramp_limits(
                bound,
                self.threshold,
                max_scale_out=self.max_scale_out,
                max_scale_in=self.max_scale_in,
                initial_nodes=current_nodes,
                strategy=self.policy.name,
            )
            unclipped = solve_closed_form(bound, self.threshold)
            ramp_clipped_steps = int(np.count_nonzero(plan.nodes != unclipped.nodes))
        else:
            plan = solve_closed_form(bound, self.threshold, strategy=self.policy.name)
        plan.quantile_levels = levels
        # Decision provenance: everything the runtime needs to explain
        # (and the model-health monitor to score) this plan.  Arrays are
        # stored by reference — no copies on the planning path.
        plan.metadata["bound_workload"] = bound
        plan.metadata["uncertainty"] = quantile_uncertainty(forecast)
        plan.metadata["forecast_levels"] = forecast.levels
        plan.metadata["forecast_values"] = forecast.values
        plan.metadata["ramp_clipped_steps"] = ramp_clipped_steps
        return plan
