"""Forecast-uncertainty quantification (paper Eq. 8).

For quantile-grid forecasters the paper defines a per-step uncertainty

    U = sum_i (tau_i - I[w^tau_i < w^0.5]) * (w^0.5 - w^tau_i)

— pinball-shaped, but measured against the *median forecast* rather than
the realised target, so it is computable before the future arrives.
Wide, asymmetric quantile fans score high; tight fans score low.  For
parametric models the predicted distribution's standard deviation is the
natural equivalent (Section III-C2), also provided here.

Note on signs: as printed, the paper's Eq. 1 and Eq. 8 use
``(yhat - y)`` where the standard (non-negative) pinball loss uses
``(y - yhat)``; taken literally the formulas are non-positive.  We
implement the evidently intended non-negative form
``U = sum_i (tau_i - I[w^tau_i < w^0.5]) * (w^tau_i - w^0.5)``,
which is zero exactly when all quantiles collapse onto the median and
grows with the spread of the fan.
"""

from __future__ import annotations

import numpy as np

from ..distributions import Distribution
from ..forecast.base import QuantileForecast

__all__ = [
    "quantile_uncertainty",
    "distribution_uncertainty",
    "forecast_uncertainty",
    "interquantile_range",
]


def quantile_uncertainty(forecast: QuantileForecast) -> np.ndarray:
    """Per-step uncertainty U of Eq. 8 from a quantile forecast.

    Returns an array of shape (horizon,).  Every level on the forecast's
    grid participates; the median (0.5 quantile, interpolated if not on
    the grid) is the reference.
    """
    median = forecast.at(0.5)
    total = np.zeros(forecast.horizon)
    for i, tau in enumerate(forecast.levels):
        values = forecast.values[i]
        indicator = (values < median).astype(np.float64)
        total += (tau - indicator) * (values - median)
    return total


def interquantile_range(
    forecast: QuantileForecast, low: float = 0.1, high: float = 0.9
) -> np.ndarray:
    """Per-step width of the forecast fan between two quantile levels.

    A robust scale estimate for normalising residuals (the model-health
    monitors divide ``actual - median`` by this so drift statistics are
    comparable across workload magnitudes).  Levels outside the
    forecast's grid are clamped to the outermost available levels.
    """
    if not low < high:
        raise ValueError(f"low ({low}) must be below high ({high})")
    lo = max(low, float(forecast.levels[0]))
    hi = min(high, float(forecast.levels[-1]))
    return forecast.at(hi) - forecast.at(lo)


def distribution_uncertainty(distribution: Distribution) -> np.ndarray:
    """Per-step predictive standard deviation (the parametric-model route)."""
    return distribution.std()


def forecast_uncertainty(
    forecast: QuantileForecast, normalise: bool = False
) -> np.ndarray:
    """Eq. 8 uncertainty, optionally scale-normalised by the median.

    Normalisation (divide by max(|median|, 1)) makes thresholds
    comparable across workloads of different magnitude; the paper's
    experiments use the raw metric, which is the default.
    """
    uncertainty = quantile_uncertainty(forecast)
    if normalise:
        scale = np.maximum(np.abs(forecast.at(0.5)), 1.0)
        uncertainty = uncertainty / scale
    return uncertainty
