"""Quantile-selection policies for the Robust Auto-Scaling Manager.

A policy answers one question per decision horizon: *which quantile level
should guide resource allocation at each step t?*  Three policies realise
the paper's spectrum of conservatism:

* :class:`FixedQuantilePolicy` — Eq. 6's basic robust strategy: one tau
  for the whole horizon.
* :class:`UncertaintyAwarePolicy` — Algorithm 1: pick the cautious tau2
  where per-step uncertainty U_t (Eq. 8) meets the threshold rho, the
  optimistic tau1 otherwise.
* :class:`StaircasePolicy` — the generalisation the paper sketches: a
  monotone ladder of (uncertainty cutoff, tau) rungs for finer control.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..forecast.base import QuantileForecast
from .uncertainty import quantile_uncertainty

__all__ = [
    "QuantilePolicy",
    "FixedQuantilePolicy",
    "UncertaintyAwarePolicy",
    "StaircasePolicy",
]


class QuantilePolicy(ABC):
    """Maps a quantile forecast to a per-step quantile level tau_t."""

    @abstractmethod
    def select_levels(self, forecast: QuantileForecast) -> np.ndarray:
        """Return the quantile level to use at each step, shape (H,)."""

    def bound_workload(self, forecast: QuantileForecast) -> np.ndarray:
        """The per-step workload upper bound w-hat_t^{tau_t} (Eq. 7 LHS)."""
        levels = self.select_levels(forecast)
        return np.array([forecast.at(tau)[t] for t, tau in enumerate(levels)])

    @property
    def name(self) -> str:
        return type(self).__name__


class FixedQuantilePolicy(QuantilePolicy):
    """Eq. 6: a single quantile level across the whole horizon."""

    def __init__(self, tau: float) -> None:
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {tau}")
        self.tau = tau

    def select_levels(self, forecast: QuantileForecast) -> np.ndarray:
        return np.full(forecast.horizon, self.tau)

    def bound_workload(self, forecast: QuantileForecast) -> np.ndarray:
        return forecast.at(self.tau)

    @property
    def name(self) -> str:
        return f"fixed-{self.tau}"


class UncertaintyAwarePolicy(QuantilePolicy):
    """Algorithm 1: two optional levels switched by per-step uncertainty.

    Parameters
    ----------
    tau_optimistic, tau_conservative:
        The two optional quantile levels (tau1 < tau2 in the paper).
    uncertainty_threshold:
        rho — at or above it the conservative level is used.
    """

    def __init__(
        self,
        tau_optimistic: float,
        tau_conservative: float,
        uncertainty_threshold: float,
    ) -> None:
        if not 0.0 < tau_optimistic < 1.0 or not 0.0 < tau_conservative < 1.0:
            raise ValueError("quantile levels must be in (0, 1)")
        if tau_optimistic > tau_conservative:
            raise ValueError(
                f"tau_optimistic ({tau_optimistic}) must not exceed "
                f"tau_conservative ({tau_conservative})"
            )
        if uncertainty_threshold < 0:
            raise ValueError("uncertainty threshold must be non-negative")
        self.tau_optimistic = tau_optimistic
        self.tau_conservative = tau_conservative
        self.uncertainty_threshold = uncertainty_threshold

    def select_levels(self, forecast: QuantileForecast) -> np.ndarray:
        uncertainty = quantile_uncertainty(forecast)
        return np.where(
            uncertainty >= self.uncertainty_threshold,
            self.tau_conservative,
            self.tau_optimistic,
        )

    @property
    def name(self) -> str:
        return f"adaptive-{self.tau_optimistic}/{self.tau_conservative}"


class StaircasePolicy(QuantilePolicy):
    """Multi-level extension: a ladder of (uncertainty cutoff, tau) rungs.

    ``rungs`` is a list of (cutoff, tau) sorted by cutoff; a step with
    uncertainty U_t uses the tau of the highest rung whose cutoff is
    <= U_t.  The first rung's cutoff should be 0 (the base level).
    Taus must be non-decreasing with cutoffs — higher uncertainty should
    never pick a *less* conservative level.
    """

    def __init__(self, rungs: list[tuple[float, float]]) -> None:
        if not rungs:
            raise ValueError("need at least one rung")
        cutoffs = [cutoff for cutoff, _ in rungs]
        taus = [tau for _, tau in rungs]
        if sorted(cutoffs) != cutoffs or len(set(cutoffs)) != len(cutoffs):
            raise ValueError("rung cutoffs must be strictly increasing")
        if sorted(taus) != taus:
            raise ValueError("rung taus must be non-decreasing")
        if any(not 0.0 < tau < 1.0 for tau in taus):
            raise ValueError("quantile levels must be in (0, 1)")
        if cutoffs[0] != 0.0:
            raise ValueError("first rung cutoff must be 0 (the base level)")
        self.rungs = list(rungs)

    def select_levels(self, forecast: QuantileForecast) -> np.ndarray:
        uncertainty = quantile_uncertainty(forecast)
        cutoffs = np.array([cutoff for cutoff, _ in self.rungs])
        taus = np.array([tau for _, tau in self.rungs])
        positions = np.searchsorted(cutoffs, uncertainty, side="right") - 1
        return taus[positions]

    @property
    def name(self) -> str:
        return f"staircase-{len(self.rungs)}"
