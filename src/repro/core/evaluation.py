"""Rolling evaluation of auto-scaling strategies over a test trace.

Reproduces the paper's Section IV-C experimental procedure: walk the
test series in decision windows of ``horizon`` steps; at each decision
point a predictive strategy sees only the preceding ``context_length``
actual workloads, commits a plan for the next horizon, and is scored
against what actually happened.  Reactive strategies instead replay
step by step.  All strategies are compared on the same concatenated
(allocation, actual) stream via under-/over-provisioning rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs import get_registry
from .plan import Planner, ProvisioningReport, ScalingPlan, evaluate_plan
from .reactive import ReactiveScaler

__all__ = ["PlanningStrategy", "RollingEvaluation", "evaluate_strategy", "decision_points"]

#: Backwards-compatible alias — the protocol now lives in
#: :mod:`repro.core.plan` as :class:`~repro.core.plan.Planner`.
PlanningStrategy = Planner


@dataclass
class RollingEvaluation:
    """Result of a rolling evaluation.

    ``nodes`` and ``actual`` are the concatenated per-step allocations
    and realised workloads over every evaluated window; ``report`` is
    the combined scorecard and ``window_reports`` the per-decision ones.
    """

    strategy: str
    nodes: np.ndarray
    actual: np.ndarray
    threshold: float
    report: ProvisioningReport
    window_reports: list[ProvisioningReport]


def decision_points(
    num_steps: int, context_length: int, horizon: int, stride: int | None = None
) -> list[int]:
    """Indices (into the series) where planning decisions are made.

    Decisions need ``context_length`` history before them and ``horizon``
    future after them; consecutive decisions are ``stride`` apart
    (default: back-to-back horizons, the paper's setting).
    """
    stride = stride or horizon
    if stride < 1:
        raise ValueError("stride must be >= 1")
    points = list(range(context_length, num_steps - horizon + 1, stride))
    if not points:
        raise ValueError(
            f"series of {num_steps} steps too short for context {context_length} "
            f"+ horizon {horizon}"
        )
    return points


def evaluate_strategy(
    strategy: Planner | ReactiveScaler,
    values: np.ndarray,
    context_length: int,
    horizon: int,
    threshold: float,
    stride: int | None = None,
    on_window: Callable[[int, ScalingPlan, np.ndarray], None] | None = None,
    series_start_index: int = 0,
) -> RollingEvaluation:
    """Run one strategy over a test series and score it.

    Parameters
    ----------
    strategy:
        A planning strategy (``plan(context, start_index)``) or a
        :class:`ReactiveScaler` (replayed step by step over the same
        evaluation span so rates are directly comparable).
    values:
        The test workload series (actual utilizations).
    on_window:
        Optional callback ``(decision_index, plan, actual_window)``
        invoked per decision — used by padding-enhanced strategies to
        feed back observed errors.
    series_start_index:
        Absolute index of ``values[0]`` in the original trace.  Critical
        for calendar-feature phase alignment: when ``values`` is a test
        split, pass the training length, otherwise forecasters see
        time-of-day features shifted by ``train_length mod steps_per_day``.
    """
    values = np.asarray(values, dtype=np.float64)
    points = decision_points(len(values), context_length, horizon, stride)
    metrics = get_registry()

    if isinstance(strategy, ReactiveScaler):
        with metrics.span("evaluate", strategy=strategy.name):
            span_start, span_end = points[0], points[-1] + horizon
            replay_plan = strategy.replay(values[: span_end], threshold)
            nodes = replay_plan.nodes[span_start:span_end]
            actual = values[span_start:span_end]
            combined = ScalingPlan(nodes=nodes, threshold=threshold, strategy=strategy.name)
            window_reports = [
                evaluate_plan(
                    ScalingPlan(
                        nodes=nodes[p - span_start : p - span_start + horizon],
                        threshold=threshold,
                        strategy=strategy.name,
                    ),
                    values[p : p + horizon],
                )
                for p in points
            ]
            result = RollingEvaluation(
                strategy=strategy.name,
                nodes=nodes,
                actual=actual,
                threshold=threshold,
                report=evaluate_plan(combined, actual),
                window_reports=window_reports,
            )
        _count_evaluation(metrics, result, len(points))
        return result

    all_nodes: list[np.ndarray] = []
    all_actual: list[np.ndarray] = []
    window_reports = []
    with metrics.span("evaluate", strategy=strategy.name):
        for point in points:
            context = values[point - context_length : point]
            actual_window = values[point : point + horizon]
            with metrics.span("plan"):
                plan = strategy.plan(
                    context, start_index=series_start_index + point - context_length
                )
            if plan.horizon != horizon:
                raise ValueError(
                    f"strategy {strategy.name} planned {plan.horizon} steps, "
                    f"expected {horizon}"
                )
            if on_window is not None:
                on_window(point, plan, actual_window)
            all_nodes.append(plan.nodes)
            all_actual.append(actual_window)
            window_reports.append(evaluate_plan(plan, actual_window))

        nodes = np.concatenate(all_nodes)
        actual = np.concatenate(all_actual)
        combined = ScalingPlan(nodes=nodes, threshold=threshold, strategy=strategy.name)
        result = RollingEvaluation(
            strategy=strategy.name,
            nodes=nodes,
            actual=actual,
            threshold=threshold,
            report=evaluate_plan(combined, actual),
            window_reports=window_reports,
        )
    _count_evaluation(metrics, result, len(points))
    return result


def _count_evaluation(metrics, result: RollingEvaluation, windows: int) -> None:
    """Per-strategy cost/violation counters for a finished evaluation."""
    labels = {"strategy": result.strategy}
    metrics.counter("evaluation.windows", **labels).inc(windows)
    metrics.counter("evaluation.steps", **labels).inc(len(result.nodes))
    metrics.counter("evaluation.violation_steps", **labels).inc(
        result.report.violation_steps
    )
    metrics.counter("evaluation.node_steps", **labels).inc(result.report.total_nodes)
