"""Scaling plans and their provisioning-quality evaluation.

A :class:`ScalingPlan` is the output of every auto-scaling strategy: a
number of compute nodes per future time step, together with the workload
thresholds the plan was built against.  :func:`evaluate_plan` scores a
plan against what actually happened, producing the paper's two headline
metrics (Section IV-C):

* **under-provisioning rate** — fraction of steps where the allocated
  nodes cannot keep average per-node workload below the threshold;
* **over-provisioning rate** — fraction of steps where more nodes than
  the minimum necessary were allocated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "Planner",
    "ScalingPlan",
    "ProvisioningReport",
    "required_nodes",
    "evaluate_plan",
]


def required_nodes(workload: np.ndarray, threshold: float | np.ndarray) -> np.ndarray:
    """Minimum node count keeping ``workload / nodes <= threshold``.

    This is the exact solution of the per-step constraint of
    Definition 3: ``c_t = ceil(w_t / theta_t)``, with at least one node
    always provisioned (a database cannot run on zero nodes).
    """
    workload = np.asarray(workload, dtype=np.float64)
    threshold = np.asarray(threshold, dtype=np.float64)
    if np.any(threshold <= 0):
        raise ValueError("thresholds must be strictly positive")
    if np.any(workload < 0):
        raise ValueError("workloads must be non-negative")
    counts = np.ceil(workload / threshold - 1e-12).astype(np.int64)
    return np.maximum(counts, 1)


@dataclass
class ScalingPlan:
    """Node allocations for a decision horizon.

    Attributes
    ----------
    nodes:
        Integer node counts per step, shape (H,).
    threshold:
        The workload threshold(s) theta_t used to build the plan.
    strategy:
        Human-readable strategy label (e.g. ``"TFT-0.9"``).
    quantile_levels:
        Per-step quantile level used (for adaptive strategies this
        records Algorithm 1's choices).
    """

    nodes: np.ndarray
    threshold: float | np.ndarray
    strategy: str = ""
    quantile_levels: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.nodes = np.asarray(self.nodes, dtype=np.int64)
        if self.nodes.ndim != 1:
            raise ValueError("nodes must be 1-D")
        if np.any(self.nodes < 1):
            raise ValueError("every step must allocate at least one node")

    @property
    def horizon(self) -> int:
        return len(self.nodes)

    @property
    def total_nodes(self) -> int:
        """The objective of Definition 3/4: total node-steps allocated."""
        return int(self.nodes.sum())

    def to_state(self) -> dict:
        """JSON-safe snapshot of the plan, losslessly reversible.

        Numpy arrays (including arrays inside :attr:`metadata`, such as
        the ``forecast_values`` grid the health monitor feeds from) are
        tagged so :meth:`from_state` restores them with their dtype —
        the checkpoint/restore path depends on the round trip being
        exact.
        """
        return {
            "nodes": self.nodes.tolist(),
            "threshold": _encode_value(self.threshold),
            "strategy": self.strategy,
            "quantile_levels": (
                np.asarray(self.quantile_levels, dtype=np.float64).tolist()
                if self.quantile_levels is not None
                else None
            ),
            "metadata": {k: _encode_value(v) for k, v in self.metadata.items()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "ScalingPlan":
        """Rebuild a plan written by :meth:`to_state`."""
        levels = state["quantile_levels"]
        return cls(
            nodes=np.asarray(state["nodes"], dtype=np.int64),
            threshold=_decode_value(state["threshold"]),
            strategy=state["strategy"],
            quantile_levels=(
                np.asarray(levels, dtype=np.float64) if levels is not None else None
            ),
            metadata={
                k: _decode_value(v) for k, v in state["metadata"].items()
            },
        )


def _encode_value(value):
    """JSON-safe encoding for plan fields: tag ndarrays, unwrap scalars."""
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.generic):
        return value.item()
    return value


def _decode_value(value):
    if isinstance(value, dict) and "__ndarray__" in value:
        return np.asarray(value["__ndarray__"], dtype=np.dtype(value["dtype"]))
    return value


@runtime_checkable
class Planner(Protocol):
    """The planning contract every auto-scaling strategy satisfies.

    A planner maps a context window of observed workloads to a
    :class:`ScalingPlan` for the steps that follow it.  The contract is
    structural (:class:`typing.Protocol`): conforming classes —
    :class:`~repro.core.autoscaler.RobustPredictiveAutoscaler`,
    :class:`~repro.core.predictive.PointForecastScaler`, the reactive
    scalers, ensembles — need not inherit from anything.

    ``start_index`` is the absolute index of ``context[0]`` in the
    original trace; planners whose forecasters use calendar features
    need it for phase alignment and all others must accept (and may
    ignore) it.
    """

    @property
    def name(self) -> str:
        """Human-readable strategy label (stamped onto plans/reports)."""
        ...

    def plan(self, context: np.ndarray, start_index: int = 0) -> ScalingPlan:
        """Commit node allocations for the horizon following ``context``."""
        ...


@dataclass(frozen=True)
class ProvisioningReport:
    """Plan-vs-reality scorecard."""

    under_provisioning_rate: float
    over_provisioning_rate: float
    total_nodes: int
    minimum_nodes: int
    violation_steps: int
    mean_violation_magnitude: float
    mean_excess_nodes: float

    @property
    def exact_rate(self) -> float:
        """Fraction of steps allocated exactly the minimum."""
        return 1.0 - self.under_provisioning_rate - self.over_provisioning_rate


def evaluate_plan(plan: ScalingPlan, actual_workload: np.ndarray) -> ProvisioningReport:
    """Score ``plan`` against the workload that actually materialised.

    A step is *under-provisioned* when the plan's nodes push average
    per-node workload above the threshold (equivalently: fewer nodes than
    :func:`required_nodes`), and *over-provisioned* when it allocates
    strictly more than the minimum.

    ``mean_violation_magnitude`` averages, over violating steps, how far
    per-node workload exceeded the threshold (in workload units);
    ``mean_excess_nodes`` averages surplus nodes over all steps.
    """
    actual_workload = np.asarray(actual_workload, dtype=np.float64)
    if actual_workload.shape != plan.nodes.shape:
        raise ValueError(
            f"actual workload shape {actual_workload.shape} does not match "
            f"plan horizon {plan.nodes.shape}"
        )
    needed = required_nodes(actual_workload, plan.threshold)
    under = plan.nodes < needed
    over = plan.nodes > needed
    threshold = np.broadcast_to(
        np.asarray(plan.threshold, dtype=np.float64), actual_workload.shape
    )
    per_node = actual_workload / plan.nodes
    violation = np.where(under, per_node - threshold, 0.0)
    return ProvisioningReport(
        under_provisioning_rate=float(under.mean()),
        over_provisioning_rate=float(over.mean()),
        total_nodes=plan.total_nodes,
        minimum_nodes=int(needed.sum()),
        violation_steps=int(under.sum()),
        mean_violation_magnitude=float(violation[under].mean()) if under.any() else 0.0,
        mean_excess_nodes=float((plan.nodes - needed).clip(min=0).mean()),
    )
