"""The paper's core contribution: robust predictive auto-scaling.

Layout mirrors Section III-C:

* :mod:`plan` / :mod:`optimizer` — Definitions 3-6 and their solvers;
* :mod:`uncertainty` — the Eq. 8 uncertainty metric;
* :mod:`policies` — fixed-quantile, uncertainty-aware (Algorithm 1),
  and staircase quantile-selection policies;
* :mod:`manager` / :mod:`autoscaler` — the Robust Auto-Scaling Manager
  and the end-to-end pipeline;
* :mod:`reactive` / :mod:`predictive` — the compared baselines;
* :mod:`evaluation` — the rolling test-trace evaluation harness.
"""

from .autoscaler import RobustPredictiveAutoscaler
from .evaluation import RollingEvaluation, decision_points, evaluate_strategy
from .manager import RobustAutoScalingManager
from .optimizer import solve_closed_form, solve_lp, solve_with_ramp_limits
from .evaluation import PlanningStrategy
from .plan import Planner, ProvisioningReport, ScalingPlan, evaluate_plan, required_nodes
from .policies import (
    FixedQuantilePolicy,
    QuantilePolicy,
    StaircasePolicy,
    UncertaintyAwarePolicy,
)
from .predictive import PointForecastScaler
from .reactive import ReactiveAvgScaler, ReactiveMaxScaler, ReactiveScaler
from .runtime import AutoscalingRuntime, Decision, StepResult
from .uncertainty import (
    distribution_uncertainty,
    forecast_uncertainty,
    quantile_uncertainty,
)

__all__ = [
    "Planner",
    "PlanningStrategy",
    "ScalingPlan",
    "ProvisioningReport",
    "required_nodes",
    "evaluate_plan",
    "solve_closed_form",
    "solve_lp",
    "solve_with_ramp_limits",
    "quantile_uncertainty",
    "distribution_uncertainty",
    "forecast_uncertainty",
    "QuantilePolicy",
    "FixedQuantilePolicy",
    "UncertaintyAwarePolicy",
    "StaircasePolicy",
    "RobustAutoScalingManager",
    "RobustPredictiveAutoscaler",
    "PointForecastScaler",
    "ReactiveScaler",
    "ReactiveMaxScaler",
    "ReactiveAvgScaler",
    "evaluate_strategy",
    "RollingEvaluation",
    "decision_points",
    "AutoscalingRuntime",
    "Decision",
    "StepResult",
]
