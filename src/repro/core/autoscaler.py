"""End-to-end robust predictive auto-scaler (Figure 2's full workflow).

:class:`RobustPredictiveAutoscaler` wires a probabilistic workload
forecaster to a :class:`RobustAutoScalingManager`: historical trace in,
scaling plan out.  This is the class a downstream user instantiates.
"""

from __future__ import annotations

import numpy as np

from ..forecast.base import Forecaster, QuantileForecast
from ..obs import get_registry
from .manager import RobustAutoScalingManager
from .plan import ScalingPlan
from .policies import QuantilePolicy

__all__ = ["RobustPredictiveAutoscaler"]


class RobustPredictiveAutoscaler:
    """Probabilistic forecaster + robust manager, as one object.

    Parameters
    ----------
    forecaster:
        Any :class:`~repro.forecast.base.Forecaster`; must be fitted
        (or fit via :meth:`fit`).
    threshold:
        Per-node workload threshold theta.
    policy:
        Quantile-selection policy (fixed / uncertainty-aware adaptive /
        staircase); defaults to fixed 0.9.
    quantile_levels:
        Grid requested from the forecaster at planning time; ``None``
        (the default) requests the forecaster's own
        :attr:`~repro.forecast.base.Forecaster.default_levels`.  Must
        cover every level the policy can select.
    max_scale_out, max_scale_in:
        Optional per-step ramp limits (thrashing control).  Each side
        is independent — set either, both, or neither.
    """

    def __init__(
        self,
        forecaster: Forecaster,
        threshold: float,
        policy: QuantilePolicy | None = None,
        quantile_levels: tuple[float, ...] | None = None,
        max_scale_out: int | None = None,
        max_scale_in: int | None = None,
    ) -> None:
        self.forecaster = forecaster
        self.manager = RobustAutoScalingManager(
            threshold=threshold,
            policy=policy,
            max_scale_out=max_scale_out,
            max_scale_in=max_scale_in,
        )
        self.quantile_levels = quantile_levels

    @property
    def threshold(self) -> float:
        return self.manager.threshold

    @property
    def name(self) -> str:
        return f"{type(self.forecaster).__name__}/{self.manager.policy.name}"

    def fit(self, series: np.ndarray) -> "RobustPredictiveAutoscaler":
        """Train the forecaster on a historical workload series."""
        self.forecaster.fit(series)
        return self

    def forecast(self, context: np.ndarray, start_index: int = 0) -> QuantileForecast:
        """The quantile forecast underlying the next plan.

        ``levels=None`` is part of the uniform forecaster contract: the
        model serves its own default grid, so no branching is needed.
        """
        return self.forecaster.predict(
            context, levels=self.quantile_levels, start_index=start_index
        )

    def plan(
        self,
        context: np.ndarray,
        start_index: int = 0,
        current_nodes: int | None = None,
    ) -> ScalingPlan:
        """One decision cycle: forecast the horizon, solve for nodes."""
        metrics = get_registry()
        with metrics.span("forecast", model=type(self.forecaster).__name__):
            forecast = self.forecast(context, start_index)
        with metrics.span("solve", policy=self.manager.policy.name):
            plan = self.manager.plan(forecast, current_nodes=current_nodes)
        plan.metadata["model"] = type(self.forecaster).__name__
        plan.metadata["policy"] = self.manager.policy.name
        return plan
