"""Predictive scalers built on point forecasts (the paper's baselines).

These realise Definition 3 — allocate against a single-valued forecast —
with optionally the CloudScale padding enhancement already wrapped into
the forecaster (:class:`~repro.forecast.point.PaddedPointForecaster`).
Compared in Figure 9 as QB5000, TFT-point, and their ``-padding``
variants.
"""

from __future__ import annotations

import numpy as np

from ..forecast.base import PointForecaster
from .optimizer import solve_closed_form
from .plan import ScalingPlan

__all__ = ["PointForecastScaler"]


class PointForecastScaler:
    """Definition 3: nodes sized to a point forecast of the workload."""

    def __init__(
        self, forecaster: PointForecaster, threshold: float, name: str = ""
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be strictly positive")
        self.forecaster = forecaster
        self.threshold = threshold
        self._name = name or type(forecaster).__name__

    def plan(self, context: np.ndarray, start_index: int = 0) -> ScalingPlan:
        """Forecast the horizon and allocate the per-step minimum."""
        forecast = self.forecaster.predict_point(context, start_index)
        plan = solve_closed_form(
            np.maximum(forecast, 0.0), self.threshold, strategy=self._name
        )
        plan.metadata["point_forecast"] = forecast
        return plan

    @property
    def name(self) -> str:
        return self._name
