"""Continuous auto-scaling runtime — Figure 2's workflow as a live loop.

The evaluation harness in :mod:`repro.core.evaluation` scores committed
plans offline.  :class:`AutoscalingRuntime` is the production-shaped
counterpart: it ingests workload observations one interval at a time,
re-plans every ``replan_every`` intervals from the trailing context, and
exposes the node target for the *next* interval — the object one would
wire to a real cluster's scaling API.

It also supports an optional reactive fallback for the cold-start phase
(before enough history exists to form a context window) and records
every decision for audit.  The loop is instrumented through
:mod:`repro.obs`: planning latency (span ``runtime/plan``), decision and
fallback counters, and a ``runtime.nodes_requested`` gauge all flow to
the ambient metrics registry.

Two opt-in observability extensions ride on the loop:

* **decision provenance** — every planning step (predictive plan or
  fallback activation) emits one structured ``provenance`` record
  capturing the quantile bound used, the uncertainty estimate, ramp
  clipping, and the final allocation.  Records flow through the ambient
  registry to any attached sink; set :attr:`record_provenance` to also
  keep them on the runtime (:attr:`provenance`).
* **model health** — attach a
  :class:`~repro.obs.monitor.ModelHealthMonitor` and every observed
  interval feeds the monitor its ``(forecast quantiles, realized
  value)`` pair, driving windowed calibration tracking and drift
  detection online.

Both are zero-cost when unused: with no monitor attached and no sinks
on the ambient registry, the hot path builds no records and allocates
nothing beyond the pre-existing counter/gauge updates.

The loop also survives the failure modes a production control loop
must (see :mod:`repro.faults` for the matching injectors):

* **bad telemetry** — :meth:`~AutoscalingRuntime.observe` validates
  every observation with ``np.isfinite``; the ``invalid_policy``
  setting decides whether a NaN/inf/negative value raises (``"raise"``,
  the default), is imputed from the last valid observation
  (``"impute"``), or is rejected while the clock still advances
  (``"reject"``).  Invalid values never reach the context deque or the
  planner.
* **crashing planners** — ``planner.plan()`` runs inside a bounded
  retry loop; when every attempt raises, the runtime *degrades* instead
  of crashing: it commits a reactive-fallback plan for the next
  ``replan_every`` intervals, records a :class:`Decision` with
  ``source="degraded"`` (plus a provenance record naming the error),
  and re-attempts predictive planning at the next boundary.  Set
  ``on_planner_error="raise"`` to restore fail-fast behaviour.

Degradation is visible in telemetry: ``runtime.invalid_observations``,
``runtime.planner_errors``, ``runtime.planner_retries``, and
``runtime.degraded_intervals`` counters all flow to the ambient
registry (and therefore to the ``report`` subcommand).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..obs import get_registry
from .plan import Planner, ScalingPlan, required_nodes
from .reactive import ReactiveScaler

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.monitor import ModelHealthMonitor

__all__ = ["Decision", "AutoscalingRuntime"]


@dataclass(frozen=True)
class Decision:
    """One planning event in the runtime's audit log."""

    time_index: int
    plan: ScalingPlan
    source: str  # "predictive", "reactive-fallback", or "degraded"


def _decision_record(
    time_index: int, plan: ScalingPlan, source: str
) -> dict:
    """Build the provenance record for one predictive planning step.

    Only called when someone is listening (a sink or
    ``record_provenance``) — this is the allocation the zero-cost
    guarantee avoids.
    """
    meta = plan.metadata
    record: dict = {
        "time_index": int(time_index),
        "source": source,
        "strategy": plan.strategy,
        "horizon": int(plan.horizon),
        "nodes": plan.nodes.tolist(),
        "nodes_first": int(plan.nodes[0]),
        "ramp_clipped_steps": int(meta.get("ramp_clipped_steps", 0)),
    }
    if plan.quantile_levels is not None:
        levels = np.asarray(plan.quantile_levels, dtype=np.float64)
        record["tau_min"] = float(levels.min())
        record["tau_max"] = float(levels.max())
    bound = meta.get("bound_workload")
    if bound is not None:
        bound = np.asarray(bound, dtype=np.float64)
        record["bound_max"] = float(bound.max())
        record["bound_total"] = float(bound.sum())
    uncertainty = meta.get("uncertainty")
    if uncertainty is not None:
        uncertainty = np.asarray(uncertainty, dtype=np.float64)
        record["uncertainty_mean"] = float(uncertainty.mean())
        record["uncertainty_max"] = float(uncertainty.max())
    if "model" in meta:
        record["model"] = meta["model"]
    if "policy" in meta:
        record["policy"] = meta["policy"]
    return record


def _fallback_record(
    time_index: int, target: int, window_statistic: float, fallback_name: str
) -> dict:
    """Provenance record for one reactive-fallback activation."""
    return {
        "time_index": int(time_index),
        "source": "reactive-fallback",
        "strategy": fallback_name,
        "horizon": 1,
        "nodes": [int(target)],
        "nodes_first": int(target),
        "window_statistic": float(window_statistic),
        "ramp_clipped_steps": 0,
    }


def _degraded_record(
    time_index: int, plan: ScalingPlan, window_statistic: float, error: BaseException
) -> dict:
    """Provenance record for one degraded (planner-failure) decision."""
    return {
        "time_index": int(time_index),
        "source": "degraded",
        "strategy": plan.strategy,
        "horizon": int(plan.horizon),
        "nodes": plan.nodes.tolist(),
        "nodes_first": int(plan.nodes[0]),
        "window_statistic": float(window_statistic),
        "error": type(error).__name__,
        "ramp_clipped_steps": 0,
    }


@dataclass
class AutoscalingRuntime:
    """Closed-loop driver around a planning strategy.

    Parameters
    ----------
    planner:
        Any :class:`~repro.core.plan.Planner`
        (e.g. :class:`~repro.core.autoscaler.RobustPredictiveAutoscaler`,
        a :class:`~repro.core.predictive.PointForecastScaler`, or a
        reactive scaler constructed with ``threshold``/``horizon``).
    context_length:
        History needed before predictive planning can start.
    horizon:
        Steps each plan covers.
    replan_every:
        Re-plan cadence in intervals; defaults to ``horizon``
        (back-to-back plans, the paper's evaluation protocol).  Smaller
        values give receding-horizon control.
    fallback:
        Reactive scaler used before enough history exists (default
        Reactive-Max over a 6-interval window) — a real deployment
        cannot refuse to scale during warm-up.
    threshold:
        Per-node workload threshold for the fallback's allocations.
    monitor:
        Optional :class:`~repro.obs.monitor.ModelHealthMonitor`; when
        attached, every observed interval covered by a predictive plan
        feeds the monitor its forecast quantiles and realized value
        (degraded intervals feed its degraded-step counter instead).
    record_provenance:
        Keep provenance records on :attr:`provenance` (they are always
        *emitted* when the ambient registry has sinks).
    invalid_policy:
        What :meth:`observe` does with a non-finite or negative
        workload: ``"raise"`` (default) raises :class:`ValueError`,
        ``"impute"`` substitutes the last valid observation (0.0 before
        any exists), ``"reject"`` drops the sample but still advances
        the interval clock.  Invalid values never enter the context.
    on_planner_error:
        ``"degrade"`` (default) turns an exhausted planning failure into
        a reactive-fallback plan recorded with ``source="degraded"``;
        ``"raise"`` re-raises the planner's exception.
    max_plan_retries:
        Immediate re-attempts of ``planner.plan()`` after an exception
        before degrading (or raising).
    """

    planner: Planner
    context_length: int
    horizon: int
    threshold: float
    replan_every: int | None = None
    fallback: ReactiveScaler | None = None
    start_index: int = 0
    monitor: "ModelHealthMonitor | None" = None
    record_provenance: bool = False
    invalid_policy: str = "raise"
    on_planner_error: str = "degrade"
    max_plan_retries: int = 1

    planner_errors: int = field(default=0, repr=False)
    degraded_intervals: int = field(default=0, repr=False)
    invalid_observations: int = field(default=0, repr=False)
    _history: deque = field(default_factory=deque, repr=False)
    decisions: list[Decision] = field(default_factory=list, repr=False)
    provenance: list[dict] = field(default_factory=list, repr=False)
    _current_plan: ScalingPlan | None = field(default=None, repr=False)
    _plan_position: int = field(default=0, repr=False)
    _time: int = field(default=0, repr=False)
    _last_target: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.context_length < 1 or self.horizon < 1:
            raise ValueError("context_length and horizon must be >= 1")
        if self.replan_every is None:
            self.replan_every = self.horizon
        if not 1 <= self.replan_every <= self.horizon:
            raise ValueError("replan_every must be in [1, horizon]")
        if self.invalid_policy not in ("raise", "impute", "reject"):
            raise ValueError(
                "invalid_policy must be 'raise', 'impute', or 'reject'"
            )
        if self.on_planner_error not in ("degrade", "raise"):
            raise ValueError("on_planner_error must be 'degrade' or 'raise'")
        if self.max_plan_retries < 0:
            raise ValueError("max_plan_retries must be >= 0")
        if self.fallback is None:
            self.fallback = _default_fallback()
        self._history = deque(maxlen=self.context_length)
        self._time = self.start_index

    # ------------------------------------------------------------------
    @property
    def time_index(self) -> int:
        """Absolute index of the next interval to be provisioned."""
        return self._time

    def observe(self, workload: float) -> None:
        """Record the workload that materialised in the current interval.

        The value is validated (``NaN < 0`` is False, so a plain sign
        check would let non-finite values silently poison the context);
        what happens to an invalid one is governed by
        :attr:`invalid_policy`.  A rejected sample still advances the
        interval clock — the interval happened, its measurement didn't.
        """
        value = float(workload)
        if not (np.isfinite(value) and value >= 0):
            value = self._handle_invalid(value)
        if value is not None:
            if self.monitor is not None:
                self._feed_monitor(value)
            self._history.append(value)
        self._time += 1
        self._plan_position += 1
        get_registry().counter("runtime.observations").inc()

    def _handle_invalid(self, value: float) -> float | None:
        """Apply :attr:`invalid_policy` to one invalid observation."""
        if np.isnan(value):
            reason = "nan"
        elif np.isinf(value):
            reason = "inf"
        else:
            reason = "negative"
        self.invalid_observations += 1
        get_registry().counter("runtime.invalid_observations", reason=reason).inc()
        if self.invalid_policy == "raise":
            raise ValueError(
                f"workload must be a finite non-negative number, got {value!r}"
            )
        if self.invalid_policy == "impute":
            return self._history[-1] if self._history else 0.0
        return None  # reject: interval elapses, sample is discarded

    def _feed_monitor(self, workload: float) -> None:
        """Hand the interval's (forecast quantiles, realized value) pair over."""
        plan = self._current_plan
        if plan is None:
            return
        if plan.metadata.get("degraded"):
            self.monitor.observe_degraded(self._time)
            return
        levels = plan.metadata.get("forecast_levels")
        values = plan.metadata.get("forecast_values")
        if levels is None or values is None:
            return
        position = min(self._plan_position, plan.horizon - 1)
        self.monitor.observe(
            levels,
            values[:, position],
            workload,
            time_index=self._time,
            nodes=self._last_target,
            threshold=self.threshold,
        )

    def target_nodes(self) -> int:
        """Node target for the upcoming interval (plans lazily)."""
        if self._needs_replan():
            self._replan()
        if self._current_plan is not None:
            position = min(self._plan_position, self._current_plan.horizon - 1)
            target = int(self._current_plan.nodes[position])
            if self._current_plan.metadata.get("degraded"):
                self.degraded_intervals += 1
                get_registry().counter("runtime.degraded_intervals").inc()
        else:
            metrics = get_registry()
            metrics.counter("runtime.fallback_activations").inc()
            target = self._fallback_target()
        get_registry().gauge("runtime.nodes_requested").set(target)
        self._last_target = target
        return target

    def _needs_replan(self) -> bool:
        if len(self._history) < self.context_length:
            return False
        if self._current_plan is None:
            return True
        return (
            self._plan_position >= self.replan_every
            or self._plan_position >= self._current_plan.horizon
        )

    def _replan(self) -> None:
        context = np.asarray(self._history, dtype=np.float64)
        metrics = get_registry()
        plan: ScalingPlan | None = None
        error: Exception | None = None
        attempts = 1 + self.max_plan_retries
        for attempt in range(attempts):
            try:
                with metrics.span("runtime/plan"):
                    plan = self.planner.plan(
                        context, start_index=self._time - self.context_length
                    )
                break
            except Exception as exc:
                error = exc
                self.planner_errors += 1
                metrics.counter(
                    "runtime.planner_errors", error=type(exc).__name__
                ).inc()
                if attempt + 1 < attempts:
                    metrics.counter("runtime.planner_retries").inc()
        if plan is None:
            if self.on_planner_error == "raise":
                raise error
            self._degrade(error)
            return
        self._current_plan = plan
        self._plan_position = 0
        self.decisions.append(
            Decision(time_index=self._time, plan=plan, source="predictive")
        )
        metrics.counter("runtime.decisions", source="predictive").inc()
        if self.record_provenance or metrics.active:
            record = _decision_record(self._time, plan, "predictive")
            metrics.emit_event("provenance", "runtime.decision", **record)
            if self.record_provenance:
                self.provenance.append(record)

    def _degrade(self, error: Exception) -> None:
        """Commit a reactive plan after planning failed — never crash.

        The degraded plan covers exactly ``replan_every`` intervals, so
        predictive planning is re-attempted at the normal cadence; its
        metadata carries a ``degraded`` flag that the per-interval
        counter and the monitor feed key off.
        """
        estimate, target = self._fallback_estimate()
        plan = ScalingPlan(
            nodes=np.full(self.replan_every, target, dtype=np.int64),
            threshold=self.threshold,
            strategy=self.fallback.name,
            metadata={"degraded": True, "error": type(error).__name__},
        )
        self._current_plan = plan
        self._plan_position = 0
        self.decisions.append(
            Decision(time_index=self._time, plan=plan, source="degraded")
        )
        metrics = get_registry()
        metrics.counter("runtime.decisions", source="degraded").inc()
        if self.record_provenance or metrics.active:
            record = _degraded_record(self._time, plan, estimate, error)
            metrics.emit_event("provenance", "runtime.decision", **record)
            if self.record_provenance:
                self.provenance.append(record)

    def _fallback_estimate(self) -> tuple[float, int]:
        """Window statistic and node target from the reactive fallback."""
        if not self._history:
            return 0.0, 1
        recent = np.asarray(self._history, dtype=np.float64)
        window = recent[-self.fallback.window :]
        estimate = max(self.fallback.window_statistic(window), 0.0)
        return estimate, int(required_nodes(np.array([estimate]), self.threshold)[0])

    def _fallback_target(self) -> int:
        estimate, target = self._fallback_estimate()
        metrics = get_registry()
        self.decisions.append(
            Decision(
                time_index=self._time,
                plan=ScalingPlan(
                    nodes=np.array([target], dtype=np.int64),
                    threshold=self.threshold,
                    strategy=self.fallback.name,
                ),
                source="reactive-fallback",
            )
        )
        metrics.counter("runtime.decisions", source="reactive-fallback").inc()
        if self.record_provenance or metrics.active:
            record = _fallback_record(
                self._time, target, estimate, self.fallback.name
            )
            metrics.emit_event("provenance", "runtime.decision", **record)
            if self.record_provenance:
                self.provenance.append(record)
        return target

    # ------------------------------------------------------------------
    def run(self, workload: np.ndarray) -> np.ndarray:
        """Convenience: drive the loop over a whole series.

        For each interval the runtime first commits a node target (using
        only past observations), then observes the interval's actual
        workload.  Returns the allocation series.
        """
        workload = np.asarray(workload, dtype=np.float64)
        allocations = np.empty(len(workload), dtype=np.int64)
        for i, value in enumerate(workload):
            allocations[i] = self.target_nodes()
            self.observe(value)
        return allocations


def _default_fallback() -> ReactiveScaler:
    from .reactive import ReactiveMaxScaler

    return ReactiveMaxScaler(window=6)
