"""Continuous auto-scaling runtime — Figure 2's workflow as a live loop.

The evaluation harness in :mod:`repro.core.evaluation` scores committed
plans offline.  :class:`AutoscalingRuntime` is the production-shaped
counterpart: it ingests workload observations one interval at a time,
re-plans every ``replan_every`` intervals from the trailing context, and
exposes the node target for the *next* interval — the object one would
wire to a real cluster's scaling API.

The loop is decomposed into an event-driven **step API**: one interval
is exactly one :meth:`~AutoscalingRuntime.step` call, which runs the
four phases in order —

1. **maybe-plan** (:meth:`~AutoscalingRuntime.maybe_plan`) — commit a
   new plan when the cadence or an explicit
   :meth:`~AutoscalingRuntime.request_replan` demands one;
2. **actuate** (:meth:`~AutoscalingRuntime.actuate`) — read the node
   target for the current interval off the committed plan (or the
   reactive fallback during cold start);
3. **observe** (:meth:`~AutoscalingRuntime.observe`) — validate and
   ingest the workload that materialised;
4. **monitor** — feed the interval's ``(forecast quantiles, realized
   value)`` pair to the attached health monitor.

and returns a :class:`StepResult` carrying the interval's **tick** (the
single authoritative interval counter — provenance records, monitor
feeds, and decisions all stamp this same value, so they can never skew
by one step).  :meth:`~AutoscalingRuntime.run` is a thin loop over
:meth:`step`, so batch callers are unchanged; the phases are also
separately callable for drivers that interleave their own work (the
``simulate`` CLI command, :class:`repro.service.ServiceRuntime`).

The full loop state — clock, context window, committed plan, audit log,
degradation counters — round-trips through
:meth:`~AutoscalingRuntime.state_dict` /
:meth:`~AutoscalingRuntime.load_state_dict`, the foundation of the
service layer's lossless checkpoint/restore.

It also supports an optional reactive fallback for the cold-start phase
(before enough history exists to form a context window) and records
every decision for audit.  The loop is instrumented through
:mod:`repro.obs`: per-phase latency (spans ``runtime.step/plan``,
``runtime.step/actuate``, ``runtime.step/observe``, with the planner
call itself under ``runtime.step/plan/planner``), decision and fallback
counters, and a ``runtime.nodes_requested`` gauge all flow to the
ambient metrics registry.  Attach a
:class:`~repro.obs.trace.TraceCollector` to the registry and every step
additionally becomes one trace record (trace_id = tick) with the same
span tree.

Two opt-in observability extensions ride on the loop:

* **decision provenance** — every planning step (predictive plan or
  fallback activation) emits one structured ``provenance`` record
  capturing the quantile bound used, the uncertainty estimate, ramp
  clipping, and the final allocation.  Records flow through the ambient
  registry to any attached sink; set :attr:`record_provenance` to also
  keep them on the runtime (:attr:`provenance`).
* **model health** — attach a
  :class:`~repro.obs.monitor.ModelHealthMonitor` and every observed
  interval feeds the monitor its ``(forecast quantiles, realized
  value)`` pair, driving windowed calibration tracking and drift
  detection online.

Both are zero-cost when unused: with no monitor attached and no sinks
on the ambient registry, the hot path builds no records and allocates
nothing beyond the pre-existing counter/gauge updates.

The loop also survives the failure modes a production control loop
must (see :mod:`repro.faults` for the matching injectors):

* **bad telemetry** — :meth:`~AutoscalingRuntime.observe` validates
  every observation with ``np.isfinite``; the ``invalid_policy``
  setting decides whether a NaN/inf/negative value raises (``"raise"``,
  the default), is imputed from the last valid observation
  (``"impute"``), or is rejected while the clock still advances
  (``"reject"``).  Invalid values never reach the context deque or the
  planner.
* **crashing planners** — ``planner.plan()`` runs inside a bounded
  retry loop; when every attempt raises, the runtime *degrades* instead
  of crashing: it commits a reactive-fallback plan for the next
  ``replan_every`` intervals, records a :class:`Decision` with
  ``source="degraded"`` (plus a provenance record naming the error),
  and re-attempts predictive planning at the next boundary.  Set
  ``on_planner_error="raise"`` to restore fail-fast behaviour.

Degradation is visible in telemetry: ``runtime.invalid_observations``,
``runtime.planner_errors``, ``runtime.planner_retries``, and
``runtime.degraded_intervals`` counters all flow to the ambient
registry (and therefore to the ``report`` subcommand).
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..obs import get_registry
from .plan import Planner, ScalingPlan, required_nodes
from .reactive import ReactiveScaler

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.monitor import ModelHealthMonitor

__all__ = ["Decision", "StepResult", "AutoscalingRuntime"]

#: Old constructor keyword -> new name; old names keep working through
#: one release with a DeprecationWarning.
_DEPRECATED_KWARGS = {"start_index": "start_tick"}


@dataclass(frozen=True)
class Decision:
    """One planning event in the runtime's audit log."""

    time_index: int
    plan: ScalingPlan
    source: str  # "predictive", "reactive-fallback", or "degraded"

    @property
    def tick(self) -> int:
        """Alias for :attr:`time_index` in the step API's vocabulary."""
        return self.time_index

    def to_state(self) -> dict:
        return {
            "time_index": int(self.time_index),
            "source": self.source,
            "plan": self.plan.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "Decision":
        return cls(
            time_index=int(state["time_index"]),
            plan=ScalingPlan.from_state(state["plan"]),
            source=state["source"],
        )


@dataclass(frozen=True)
class StepResult:
    """Everything one interval of the closed loop produced.

    Attributes
    ----------
    tick:
        Absolute index of the interval that was just served — the one
        authoritative counter.  The decision audit log, provenance
        records, and monitor feeds for this interval all carry exactly
        this value.
    target_nodes:
        The allocation committed for the interval (decided before the
        workload was observed).
    source:
        Where the allocation came from: ``"predictive"``,
        ``"reactive-fallback"``, or ``"degraded"``.
    planned:
        True when a new plan was committed at this tick (a planning
        boundary); the committed :class:`Decision` is then
        ``decision``.
    decision:
        The :class:`Decision` committed at this tick, or None when the
        interval ran off a previously committed plan.
    observed:
        The workload value actually ingested (after validation /
        imputation), or None when the sample was rejected.
    degraded:
        True when the interval was served by a degraded (planner
        failure) plan.
    phase_seconds:
        Wall-clock seconds spent in each phase of this step, keyed
        ``"plan"`` / ``"actuate"`` / ``"observe"``.  The same durations
        feed the ``runtime.step/<phase>`` span histograms.
    """

    tick: int
    target_nodes: int
    source: str
    planned: bool = False
    decision: Decision | None = None
    observed: float | None = None
    degraded: bool = False
    phase_seconds: dict[str, float] | None = None


def _decision_record(
    tick: int, plan: ScalingPlan, source: str
) -> dict:
    """Build the provenance record for one predictive planning step.

    Only called when someone is listening (a sink or
    ``record_provenance``) — this is the allocation the zero-cost
    guarantee avoids.
    """
    meta = plan.metadata
    record: dict = {
        "time_index": int(tick),
        "source": source,
        "strategy": plan.strategy,
        "horizon": int(plan.horizon),
        "nodes": plan.nodes.tolist(),
        "nodes_first": int(plan.nodes[0]),
        "ramp_clipped_steps": int(meta.get("ramp_clipped_steps", 0)),
    }
    if plan.quantile_levels is not None:
        levels = np.asarray(plan.quantile_levels, dtype=np.float64)
        record["tau_min"] = float(levels.min())
        record["tau_max"] = float(levels.max())
    bound = meta.get("bound_workload")
    if bound is not None:
        bound = np.asarray(bound, dtype=np.float64)
        record["bound_max"] = float(bound.max())
        record["bound_total"] = float(bound.sum())
    uncertainty = meta.get("uncertainty")
    if uncertainty is not None:
        uncertainty = np.asarray(uncertainty, dtype=np.float64)
        record["uncertainty_mean"] = float(uncertainty.mean())
        record["uncertainty_max"] = float(uncertainty.max())
    if "model" in meta:
        record["model"] = meta["model"]
    if "policy" in meta:
        record["policy"] = meta["policy"]
    return record


def _fallback_record(
    tick: int, target: int, window_statistic: float, fallback_name: str
) -> dict:
    """Provenance record for one reactive-fallback activation."""
    return {
        "time_index": int(tick),
        "source": "reactive-fallback",
        "strategy": fallback_name,
        "horizon": 1,
        "nodes": [int(target)],
        "nodes_first": int(target),
        "window_statistic": float(window_statistic),
        "ramp_clipped_steps": 0,
    }


def _degraded_record(
    tick: int, plan: ScalingPlan, window_statistic: float, error: BaseException
) -> dict:
    """Provenance record for one degraded (planner-failure) decision."""
    return {
        "time_index": int(tick),
        "source": "degraded",
        "strategy": plan.strategy,
        "horizon": int(plan.horizon),
        "nodes": plan.nodes.tolist(),
        "nodes_first": int(plan.nodes[0]),
        "window_statistic": float(window_statistic),
        "error": type(error).__name__,
        "ramp_clipped_steps": 0,
    }


class AutoscalingRuntime:
    """Closed-loop driver around a planning strategy.

    Parameters
    ----------
    planner:
        Any :class:`~repro.core.plan.Planner`
        (e.g. :class:`~repro.core.autoscaler.RobustPredictiveAutoscaler`,
        a :class:`~repro.core.predictive.PointForecastScaler`, or a
        reactive scaler constructed with ``threshold``/``horizon``).
    context_length:
        History needed before predictive planning can start.
    horizon:
        Steps each plan covers.
    replan_every:
        Re-plan cadence in intervals; defaults to ``horizon``
        (back-to-back plans, the paper's evaluation protocol).  Smaller
        values give receding-horizon control.
    fallback:
        Reactive scaler used before enough history exists (default
        Reactive-Max over a 6-interval window) — a real deployment
        cannot refuse to scale during warm-up.
    threshold:
        Per-node workload threshold for the fallback's allocations.
    start_tick:
        Absolute index of the first interval (e.g. ``len(train)`` when
        driving a test split); formerly ``start_index``, which is still
        accepted with a :class:`DeprecationWarning`.
    monitor:
        Optional :class:`~repro.obs.monitor.ModelHealthMonitor`; when
        attached, every observed interval covered by a predictive plan
        feeds the monitor its forecast quantiles and realized value
        (degraded intervals feed its degraded-step counter instead).
    record_provenance:
        Keep provenance records on :attr:`provenance` (they are always
        *emitted* when the ambient registry has sinks).
    invalid_policy:
        What :meth:`observe` does with a non-finite or negative
        workload: ``"raise"`` (default) raises :class:`ValueError`,
        ``"impute"`` substitutes the last valid observation (0.0 before
        any exists), ``"reject"`` drops the sample but still advances
        the interval clock.  Invalid values never enter the context.
    on_planner_error:
        ``"degrade"`` (default) turns an exhausted planning failure into
        a reactive-fallback plan recorded with ``source="degraded"``;
        ``"raise"`` re-raises the planner's exception.
    max_plan_retries:
        Immediate re-attempts of ``planner.plan()`` after an exception
        before degrading (or raising).
    """

    def __init__(
        self,
        planner: Planner,
        context_length: int,
        horizon: int,
        threshold: float,
        replan_every: int | None = None,
        fallback: ReactiveScaler | None = None,
        start_tick: int = 0,
        monitor: "ModelHealthMonitor | None" = None,
        record_provenance: bool = False,
        invalid_policy: str = "raise",
        on_planner_error: str = "degrade",
        max_plan_retries: int = 1,
        **deprecated,
    ) -> None:
        for old, new in _DEPRECATED_KWARGS.items():
            if old in deprecated:
                warnings.warn(
                    f"AutoscalingRuntime({old}=...) is deprecated; "
                    f"use {new}=...",
                    DeprecationWarning,
                    stacklevel=2,
                )
                start_tick = deprecated.pop(old)
        if deprecated:
            unknown = ", ".join(sorted(deprecated))
            raise TypeError(
                f"AutoscalingRuntime() got unexpected keyword argument(s): "
                f"{unknown}"
            )
        if context_length < 1 or horizon < 1:
            raise ValueError("context_length and horizon must be >= 1")
        if replan_every is None:
            replan_every = horizon
        if not 1 <= replan_every <= horizon:
            raise ValueError("replan_every must be in [1, horizon]")
        if invalid_policy not in ("raise", "impute", "reject"):
            raise ValueError(
                "invalid_policy must be 'raise', 'impute', or 'reject'"
            )
        if on_planner_error not in ("degrade", "raise"):
            raise ValueError("on_planner_error must be 'degrade' or 'raise'")
        if max_plan_retries < 0:
            raise ValueError("max_plan_retries must be >= 0")

        self.planner = planner
        self.context_length = context_length
        self.horizon = horizon
        self.threshold = threshold
        self.replan_every = replan_every
        self.fallback = fallback if fallback is not None else _default_fallback()
        self.start_tick = start_tick
        self.monitor = monitor
        self.record_provenance = record_provenance
        self.invalid_policy = invalid_policy
        self.on_planner_error = on_planner_error
        self.max_plan_retries = max_plan_retries

        self.planner_errors = 0
        self.degraded_intervals = 0
        self.invalid_observations = 0
        self.decisions: list[Decision] = []
        self.provenance: list[dict] = []
        self._history: deque = deque(maxlen=context_length)
        self._current_plan: ScalingPlan | None = None
        self._plan_position = 0
        self._tick = start_tick
        self._last_target: int | None = None
        self._replan_requested = False

    def __repr__(self) -> str:  # keep the old dataclass-style repr surface
        return (
            f"AutoscalingRuntime(planner={self.planner!r}, "
            f"context_length={self.context_length!r}, "
            f"horizon={self.horizon!r}, threshold={self.threshold!r}, "
            f"replan_every={self.replan_every!r}, "
            f"fallback={self.fallback!r}, start_tick={self.start_tick!r}, "
            f"monitor={self.monitor!r}, "
            f"record_provenance={self.record_provenance!r}, "
            f"invalid_policy={self.invalid_policy!r}, "
            f"on_planner_error={self.on_planner_error!r}, "
            f"max_plan_retries={self.max_plan_retries!r})"
        )

    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """Absolute index of the next interval to be provisioned."""
        return self._tick

    @property
    def time_index(self) -> int:
        """Back-compat alias for :attr:`tick`."""
        return self._tick

    @property
    def start_index(self) -> int:
        """Back-compat alias for :attr:`start_tick`."""
        return self.start_tick

    # -- phase 1: maybe-plan -------------------------------------------
    def maybe_plan(self, force: bool = False) -> Decision | None:
        """Commit a new plan if one is due; return the committed decision.

        A plan is *due* when a full context window exists and the
        current plan is exhausted (or the replan cadence has elapsed, or
        a replan was explicitly requested via :meth:`request_replan` /
        ``force=True``).  Planner failures follow the runtime's
        ``on_planner_error`` policy, so the returned decision may carry
        ``source="degraded"``.  Returns None when no planning happened.
        """
        if len(self._history) < self.context_length:
            return None
        if not (force or self._needs_replan()):
            return None
        before = len(self.decisions)
        self._replan()
        self._replan_requested = False
        return self.decisions[-1] if len(self.decisions) > before else None

    def request_replan(self) -> None:
        """Ask for a fresh plan at the next planning opportunity.

        Used by alert-driven control (the service layer re-plans when
        the health monitor's alert engine fires) and the control plane's
        ``POST /plan``.  No-op effect until a full context exists.
        """
        self._replan_requested = True

    def _needs_replan(self) -> bool:
        if self._replan_requested:
            return True
        if self._current_plan is None:
            return True
        return (
            self._plan_position >= self.replan_every
            or self._plan_position >= self._current_plan.horizon
        )

    # -- phase 2: actuate ----------------------------------------------
    def actuate(self) -> int:
        """Node target for the current interval off the committed plan.

        Does *not* plan — callers wanting the classic lazy behaviour use
        :meth:`target_nodes` (= :meth:`maybe_plan` + :meth:`actuate`).
        Falls back to the reactive scaler when no plan exists (cold
        start).
        """
        if self._current_plan is not None:
            position = min(self._plan_position, self._current_plan.horizon - 1)
            target = int(self._current_plan.nodes[position])
            if self._current_plan.metadata.get("degraded"):
                self.degraded_intervals += 1
                get_registry().counter("runtime.degraded_intervals").inc()
        else:
            metrics = get_registry()
            metrics.counter("runtime.fallback_activations").inc()
            target = self._fallback_target()
        get_registry().gauge("runtime.nodes_requested").set(target)
        self._last_target = target
        return target

    def target_nodes(self) -> int:
        """Node target for the upcoming interval (plans lazily)."""
        self.maybe_plan()
        return self.actuate()

    # -- phase 3 + 4: observe and monitor ------------------------------
    def observe(self, workload: float) -> float | None:
        """Record the workload that materialised in the current interval.

        The value is validated (``NaN < 0`` is False, so a plain sign
        check would let non-finite values silently poison the context);
        what happens to an invalid one is governed by
        :attr:`invalid_policy`.  A rejected sample still advances the
        interval clock — the interval happened, its measurement didn't.

        Returns the value actually ingested (after imputation), or None
        when the sample was rejected.  The attached health monitor is
        fed with the *same tick* the interval was actuated under, so
        monitor windows and provenance records can never skew.
        """
        tick = self._tick
        value = float(workload)
        if not (np.isfinite(value) and value >= 0):
            value = self._handle_invalid(value)
        if value is not None:
            if self.monitor is not None:
                self._feed_monitor(tick, value)
            self._history.append(value)
        self._tick += 1
        self._plan_position += 1
        get_registry().counter("runtime.observations").inc()
        return value

    def _handle_invalid(self, value: float) -> float | None:
        """Apply :attr:`invalid_policy` to one invalid observation."""
        if np.isnan(value):
            reason = "nan"
        elif np.isinf(value):
            reason = "inf"
        else:
            reason = "negative"
        self.invalid_observations += 1
        get_registry().counter("runtime.invalid_observations", reason=reason).inc()
        if self.invalid_policy == "raise":
            raise ValueError(
                f"workload must be a finite non-negative number, got {value!r}"
            )
        if self.invalid_policy == "impute":
            return self._history[-1] if self._history else 0.0
        return None  # reject: interval elapses, sample is discarded

    def _feed_monitor(self, tick: int, workload: float) -> None:
        """Hand the interval's (forecast quantiles, realized value) pair over.

        ``tick`` is the step's authoritative interval index, captured
        once in :meth:`observe` — the monitor and the decision log can
        therefore never disagree about which interval a residual
        belongs to.
        """
        plan = self._current_plan
        if plan is None:
            return
        if plan.metadata.get("degraded"):
            self.monitor.observe_degraded(tick)
            return
        levels = plan.metadata.get("forecast_levels")
        values = plan.metadata.get("forecast_values")
        if levels is None or values is None:
            return
        position = min(self._plan_position, plan.horizon - 1)
        self.monitor.observe(
            levels,
            values[:, position],
            workload,
            time_index=tick,
            nodes=self._last_target,
            threshold=self.threshold,
        )

    # -- the step API ---------------------------------------------------
    def step(self, workload: float) -> StepResult:
        """One interval of the closed loop: plan if due, actuate, observe.

        Exactly equivalent to the classic ``target_nodes()`` /
        ``observe()`` pair, but returns a :class:`StepResult` stamped
        with the interval's tick.  :meth:`run` is a thin loop over this
        method.
        """
        tick = self._tick
        metrics = get_registry()
        tracer = metrics.tracer
        if tracer is not None:
            tracer.begin(tick)
        status = "ok"
        try:
            with metrics.span("runtime.step"):
                t0 = time.perf_counter()
                with metrics.span("plan"):
                    decision = self.maybe_plan()
                t1 = time.perf_counter()
                with metrics.span("actuate"):
                    target = self.actuate()
                degraded = bool(
                    self._current_plan is not None
                    and self._current_plan.metadata.get("degraded")
                )
                if self._current_plan is not None:
                    source = "degraded" if degraded else "predictive"
                else:
                    source = "reactive-fallback"
                t2 = time.perf_counter()
                with metrics.span("observe"):
                    observed = self.observe(workload)
                t3 = time.perf_counter()
        except BaseException:
            status = "error"
            raise
        finally:
            if tracer is not None:
                trace = tracer.end(status)
                if trace is not None and metrics.active:
                    metrics.emit_event("trace", f"tick:{tick}", **trace)
        return StepResult(
            tick=tick,
            target_nodes=target,
            source=source,
            planned=decision is not None,
            decision=decision,
            observed=observed,
            degraded=degraded,
            phase_seconds={
                "plan": t1 - t0,
                "actuate": t2 - t1,
                "observe": t3 - t2,
            },
        )

    def run(self, workload: np.ndarray) -> np.ndarray:
        """Convenience: drive the loop over a whole series.

        For each interval the runtime first commits a node target (using
        only past observations), then observes the interval's actual
        workload.  Returns the allocation series.
        """
        workload = np.asarray(workload, dtype=np.float64)
        allocations = np.empty(len(workload), dtype=np.int64)
        for i, value in enumerate(workload):
            allocations[i] = self.step(value).target_nodes
        return allocations

    # -- planning internals ---------------------------------------------
    def _replan(self) -> None:
        context = np.asarray(self._history, dtype=np.float64)
        metrics = get_registry()
        plan: ScalingPlan | None = None
        error: Exception | None = None
        attempts = 1 + self.max_plan_retries
        for attempt in range(attempts):
            try:
                with metrics.span("planner"):
                    plan = self.planner.plan(
                        context, start_index=self._tick - self.context_length
                    )
                break
            except Exception as exc:
                error = exc
                self.planner_errors += 1
                metrics.counter(
                    "runtime.planner_errors", error=type(exc).__name__
                ).inc()
                if attempt + 1 < attempts:
                    metrics.counter("runtime.planner_retries").inc()
        if plan is None:
            if self.on_planner_error == "raise":
                raise error
            self._degrade(error)
            return
        self._current_plan = plan
        self._plan_position = 0
        self.decisions.append(
            Decision(time_index=self._tick, plan=plan, source="predictive")
        )
        metrics.counter("runtime.decisions", source="predictive").inc()
        if self.record_provenance or metrics.active:
            record = _decision_record(self._tick, plan, "predictive")
            metrics.emit_event("provenance", "runtime.decision", **record)
            if self.record_provenance:
                self.provenance.append(record)

    def _degrade(self, error: Exception) -> None:
        """Commit a reactive plan after planning failed — never crash.

        The degraded plan covers exactly ``replan_every`` intervals, so
        predictive planning is re-attempted at the normal cadence; its
        metadata carries a ``degraded`` flag that the per-interval
        counter and the monitor feed key off.
        """
        estimate, target = self._fallback_estimate()
        plan = ScalingPlan(
            nodes=np.full(self.replan_every, target, dtype=np.int64),
            threshold=self.threshold,
            strategy=self.fallback.name,
            metadata={"degraded": True, "error": type(error).__name__},
        )
        self._current_plan = plan
        self._plan_position = 0
        self.decisions.append(
            Decision(time_index=self._tick, plan=plan, source="degraded")
        )
        metrics = get_registry()
        metrics.counter("runtime.decisions", source="degraded").inc()
        if self.record_provenance or metrics.active:
            record = _degraded_record(self._tick, plan, estimate, error)
            metrics.emit_event("provenance", "runtime.decision", **record)
            if self.record_provenance:
                self.provenance.append(record)

    def _fallback_estimate(self) -> tuple[float, int]:
        """Window statistic and node target from the reactive fallback."""
        if not self._history:
            return 0.0, 1
        recent = np.asarray(self._history, dtype=np.float64)
        window = recent[-self.fallback.window :]
        estimate = max(self.fallback.window_statistic(window), 0.0)
        return estimate, int(required_nodes(np.array([estimate]), self.threshold)[0])

    def _fallback_target(self) -> int:
        estimate, target = self._fallback_estimate()
        metrics = get_registry()
        self.decisions.append(
            Decision(
                time_index=self._tick,
                plan=ScalingPlan(
                    nodes=np.array([target], dtype=np.int64),
                    threshold=self.threshold,
                    strategy=self.fallback.name,
                ),
                source="reactive-fallback",
            )
        )
        metrics.counter("runtime.decisions", source="reactive-fallback").inc()
        if self.record_provenance or metrics.active:
            record = _fallback_record(
                self._tick, target, estimate, self.fallback.name
            )
            metrics.emit_event("provenance", "runtime.decision", **record)
            if self.record_provenance:
                self.provenance.append(record)
        return target

    # -- checkpoint/restore ---------------------------------------------
    def state_dict(self) -> dict:
        """The complete loop state as JSON-safe plain containers.

        Captures everything :meth:`load_state_dict` needs to resume the
        loop mid-trace with bit-identical subsequent decisions: the
        tick clock, the context window, the committed plan (including
        its forecast metadata, so monitor feeds continue seamlessly),
        the audit log, and every degradation counter.  Planner/model
        weights are *not* included — the service layer persists those
        through :mod:`repro.nn.serialization`.
        """
        return {
            "tick": int(self._tick),
            "start_tick": int(self.start_tick),
            "plan_position": int(self._plan_position),
            "history": [float(v) for v in self._history],
            "last_target": (
                int(self._last_target) if self._last_target is not None else None
            ),
            "replan_requested": bool(self._replan_requested),
            "planner_errors": int(self.planner_errors),
            "degraded_intervals": int(self.degraded_intervals),
            "invalid_observations": int(self.invalid_observations),
            "current_plan": (
                self._current_plan.to_state()
                if self._current_plan is not None
                else None
            ),
            "decisions": [d.to_state() for d in self.decisions],
            "provenance": list(self.provenance),
        }

    def load_state_dict(self, state: dict) -> "AutoscalingRuntime":
        """Restore loop state captured by :meth:`state_dict` in place."""
        self._tick = int(state["tick"])
        self.start_tick = int(state["start_tick"])
        self._plan_position = int(state["plan_position"])
        self._history = deque(
            (float(v) for v in state["history"]), maxlen=self.context_length
        )
        last_target = state["last_target"]
        self._last_target = int(last_target) if last_target is not None else None
        self._replan_requested = bool(state["replan_requested"])
        self.planner_errors = int(state["planner_errors"])
        self.degraded_intervals = int(state["degraded_intervals"])
        self.invalid_observations = int(state["invalid_observations"])
        plan_state = state["current_plan"]
        self._current_plan = (
            ScalingPlan.from_state(plan_state) if plan_state is not None else None
        )
        self.decisions = [Decision.from_state(d) for d in state["decisions"]]
        self.provenance = list(state["provenance"])
        return self


def _default_fallback() -> ReactiveScaler:
    from .reactive import ReactiveMaxScaler

    return ReactiveMaxScaler(window=6)
