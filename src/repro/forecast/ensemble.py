"""Quantile-forecast ensembling.

Combining probabilistic forecasters is the standard way to hedge model
risk: the paper's two methodologies (parametric and quantile-grid) have
complementary failure modes — mis-specified parametric form vs a frozen
grid — and averaging their quantile functions ("Vincentization") keeps
whichever is better calibrated per regime from being ruined by the
other.  The ensemble also provides a clean upgrade path for the robust
scaler: it consumes :class:`QuantileForecast`, so nothing downstream
changes.
"""

from __future__ import annotations

import numpy as np

from .base import Forecaster, QuantileForecast

__all__ = ["EnsembleForecaster", "combine_quantile_forecasts"]


def combine_quantile_forecasts(
    forecasts: list[QuantileForecast],
    levels: tuple[float, ...],
    weights: list[float] | None = None,
) -> QuantileForecast:
    """Vincentize: average each quantile across forecasts.

    Averaging quantile functions (rather than CDFs) preserves location
    and spread structure and always yields monotone quantiles when the
    inputs are monotone.

    Parameters
    ----------
    forecasts:
        Member forecasts; must all cover ``levels`` and share a horizon.
    weights:
        Optional non-negative member weights (normalised internally);
        defaults to equal weighting.
    """
    if not forecasts:
        raise ValueError("need at least one forecast")
    horizon = forecasts[0].horizon
    if any(fc.horizon != horizon for fc in forecasts):
        raise ValueError("all forecasts must share the same horizon")
    if weights is None:
        weights = [1.0] * len(forecasts)
    if len(weights) != len(forecasts):
        raise ValueError("weights must match the number of forecasts")
    weights_arr = np.asarray(weights, dtype=np.float64)
    if np.any(weights_arr < 0) or weights_arr.sum() <= 0:
        raise ValueError("weights must be non-negative and sum to > 0")
    weights_arr = weights_arr / weights_arr.sum()

    levels = tuple(sorted(levels))
    values = np.zeros((len(levels), horizon))
    for weight, fc in zip(weights_arr, forecasts):
        values += weight * np.stack([fc.at(tau) for tau in levels])
    means = [fc.mean for fc in forecasts]
    mean = None
    if all(m is not None for m in means):
        mean = np.einsum("i,ij->j", weights_arr, np.stack(means))
    return QuantileForecast(levels=np.array(levels), values=values, mean=mean)


class EnsembleForecaster(Forecaster):
    """Forecaster that averages the quantiles of its members.

    Parameters
    ----------
    members:
        Forecasters to combine; each is fitted on the same series.
    weights:
        Optional fixed member weights.  With ``weights=None`` and
        ``tune_on_validation=True``, weights are chosen inversely
        proportional to each member's pinball loss on the last
        ``validation_fraction`` of the training series — a cheap,
        robust skill weighting.
    """

    def __init__(
        self,
        members: list[Forecaster],
        weights: list[float] | None = None,
        tune_on_validation: bool = False,
        validation_fraction: float = 0.15,
    ) -> None:
        if not members:
            raise ValueError("need at least one member")
        if weights is not None and len(weights) != len(members):
            raise ValueError("weights must match the number of members")
        if not 0.0 < validation_fraction < 0.5:
            raise ValueError("validation_fraction must be in (0, 0.5)")
        self.members = list(members)
        self.weights = list(weights) if weights is not None else None
        self.tune_on_validation = tune_on_validation
        self.validation_fraction = validation_fraction

    def fit(self, series: np.ndarray) -> "EnsembleForecaster":
        series = np.asarray(series, dtype=np.float64)
        for member in self.members:
            member.fit(series)
        if self.tune_on_validation and self.weights is None:
            self.weights = self._skill_weights(series)
        self._fitted = True
        return self

    @staticmethod
    def _member_predict(
        member: Forecaster,
        context: np.ndarray,
        levels: tuple[float, ...],
        start_index: int,
    ) -> QuantileForecast:
        """Call a member, trimming the context to its exact needs.

        Members declare a fixed ``context_length`` (neural models) or
        accept any sufficiently long history (statistical models); the
        ensemble passes each the most recent slice it can use, keeping
        calendar features aligned by advancing ``start_index``.
        """
        needed = getattr(member, "context_length", None)
        if needed is not None and len(context) > needed:
            offset = len(context) - needed
            return member.predict(
                context[offset:], levels=levels, start_index=start_index + offset
            )
        return member.predict(context, levels=levels, start_index=start_index)

    def _skill_weights(self, series: np.ndarray) -> list[float]:
        """Inverse-MAE weights from a held-out tail of the training series."""
        horizon = self._horizon()
        val_len = int(len(series) * self.validation_fraction)
        start = len(series) - val_len
        if start < 1 or val_len < horizon:
            return [1.0] * len(self.members)
        losses = []
        for member in self.members:
            total, count = 0.0, 0
            for point in range(start, len(series) - horizon + 1, horizon):
                fc = self._member_predict(
                    member, series[:point], levels=(0.5,), start_index=0
                )
                actual = series[point : point + horizon]
                total += float(np.abs(fc.values[0] - actual).mean())
                count += 1
            losses.append(total / max(count, 1))
        inverse = 1.0 / np.maximum(np.asarray(losses), 1e-12)
        return list(inverse / inverse.sum())

    def _horizon(self) -> int:
        horizons = {getattr(m, "horizon") for m in self.members}
        if len(horizons) != 1:
            raise ValueError(f"members disagree on horizon: {sorted(horizons)}")
        return horizons.pop()

    def predict(
        self,
        context: np.ndarray,
        levels: tuple[float, ...] | None = None,
        start_index: int = 0,
    ) -> QuantileForecast:
        """Weighted member combination on a common grid.

        ``levels=None`` serves the ensemble's :attr:`default_levels`
        (members are always queried with explicit levels so their grids
        agree).  ``start_index`` is forwarded to every member, advanced
        per-member when contexts are trimmed.
        """
        self._require_fitted()
        context = np.asarray(context, dtype=np.float64)
        levels = self._resolve_levels(levels)
        forecasts = [
            self._member_predict(member, context, levels, start_index)
            for member in self.members
        ]
        return combine_quantile_forecasts(forecasts, levels, self.weights)
