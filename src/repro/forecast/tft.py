"""Temporal Fusion Transformer (quantile-grid forecaster).

The paper's strongest model and the canonical instance of the "learn a
pre-specified grid of quantiles" methodology (Figure 3b).  This is a
compact but structurally faithful TFT (Lim et al., 2019):

* past inputs (lagged value + calendar covariates) feed an LSTM encoder;
  known future inputs (calendar covariates) feed an LSTM decoder seeded
  with the encoder state — TFT's sequence-to-sequence locality layer;
* a gated (GLU) residual connection and layer norm wrap the recurrent
  output;
* interpretable multi-head self-attention with a causal mask lets every
  decoder step attend over the whole past;
* a position-wise Gated Residual Network feeds per-quantile linear heads;
* training jointly minimises the quantile (pinball) loss summed over the
  pre-specified grid (Eq. 2).

Omitted relative to the full paper model: per-variable variable-selection
networks and static covariates (the workload task has a single target
series and no static metadata — the selection weights would be
degenerate).
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    LSTM,
    GatedLinearUnit,
    GatedResidualNetwork,
    InterpretableMultiHeadAttention,
    LayerNorm,
    Linear,
    Module,
    Tensor,
    causal_mask,
    no_grad,
)
from ..nn import functional as F
from .base import DEFAULT_QUANTILE_LEVELS, QuantileForecast
from .features import NUM_CALENDAR_FEATURES, calendar_features
from .neural import NeuralForecaster, TrainingConfig

__all__ = ["TFTForecaster"]


class _TFTNetwork(Module):
    def __init__(
        self,
        d_model: int,
        num_heads: int,
        num_quantiles: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.past_proj = Linear(1 + NUM_CALENDAR_FEATURES, d_model, rng)
        self.future_proj = Linear(NUM_CALENDAR_FEATURES, d_model, rng)
        self.encoder = LSTM(d_model, d_model, rng)
        self.decoder = LSTM(d_model, d_model, rng)
        self.lstm_gate = GatedLinearUnit(d_model, d_model, rng)
        self.lstm_norm = LayerNorm(d_model)
        self.attention = InterpretableMultiHeadAttention(d_model, num_heads, rng)
        self.attn_gate = GatedLinearUnit(d_model, d_model, rng)
        self.attn_norm = LayerNorm(d_model)
        self.feed_forward = GatedResidualNetwork(d_model, d_model, d_model, rng)
        self.quantile_head = Linear(d_model, num_quantiles, rng)
        self._last_attention: np.ndarray | None = None

    def forward(self, past: Tensor, future: Tensor) -> Tensor:
        """past: (B, T, 1+F); future: (B, H, F) -> quantiles (B, H, Q)."""
        encoded_in = self.past_proj(past)
        decoded_in = self.future_proj(future)
        encoded, state = self.encoder(encoded_in)
        decoded, _ = self.decoder(decoded_in, state)

        # Gated skip around the seq2seq layer (TFT Eq. 17).
        sequence = Tensor.concat([encoded, decoded], axis=1)
        skip = Tensor.concat([encoded_in, decoded_in], axis=1)
        sequence = self.lstm_norm(skip + self.lstm_gate(sequence))

        horizon = decoded.shape[1]
        query = sequence[:, -horizon:, :]
        mask = causal_mask(query_len=horizon, key_len=sequence.shape[1])
        attended, weights = self.attention(query, sequence, sequence, mask=mask)
        self._last_attention = weights.data
        attended = self.attn_norm(query + self.attn_gate(attended))

        return self.quantile_head(self.feed_forward(attended))


class TFTForecaster(NeuralForecaster):
    """Quantile-grid forecaster.

    Parameters
    ----------
    quantile_levels:
        The pre-specified grid A.  Changing it requires retraining —
        the structural trade-off the paper highlights for this method
        family.
    """

    def __init__(
        self,
        context_length: int,
        horizon: int,
        quantile_levels: tuple[float, ...] = DEFAULT_QUANTILE_LEVELS,
        d_model: int = 32,
        num_heads: int = 4,
        window_normalization: bool = True,
        config: TrainingConfig | None = None,
    ) -> None:
        super().__init__(context_length, horizon, config)
        levels = tuple(sorted(quantile_levels))
        if not levels or any(not 0.0 < tau < 1.0 for tau in levels):
            raise ValueError("quantile levels must lie in (0, 1)")
        if len(set(levels)) != len(levels):
            raise ValueError("duplicate quantile levels")
        self.quantile_levels = levels
        self.default_levels = levels  # predict(levels=None) -> trained grid
        self.d_model = d_model
        self.num_heads = num_heads
        # Per-window standardization (each window scaled by its own
        # context mean/std) makes forecasts follow level drift — the
        # scale-handling trick of the reference implementations.  The
        # global scaler still runs first; window stats are computed in
        # the globally-normalised space.
        self.window_normalization = window_normalization

    def _build(self, rng: np.random.Generator) -> Module:
        return _TFTNetwork(self.d_model, self.num_heads, len(self.quantile_levels), rng)

    def _network_inputs(
        self, context: np.ndarray, start_indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        batch, length = context.shape
        past_idx = start_indices[:, None] + np.arange(length)[None, :]
        future_idx = start_indices[:, None] + length + np.arange(self.horizon)[None, :]
        past = np.concatenate([context[..., None], calendar_features(past_idx)], axis=-1)
        future = calendar_features(future_idx)
        return past, future

    def _window_stats(self, context: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-window location from the context (B, T) -> (B, 1).

        Location-only centering: subtracting the window mean makes
        forecasts follow level drift, while keeping the global scale
        leaves volatility differences between windows visible to the
        network (the signal behind the Eq. 8 uncertainty metric).
        """
        mean = context.mean(axis=1, keepdims=True)
        return mean, np.ones_like(mean)

    def _loss(
        self, context: np.ndarray, horizon: np.ndarray, start_indices: np.ndarray
    ) -> Tensor:
        assert self.network is not None
        if self.window_normalization:
            mean, std = self._window_stats(context)
            context = (context - mean) / std
            horizon = (horizon - mean) / std
        past, future = self._network_inputs(context, start_indices)
        predictions = self.network(Tensor(past), Tensor(future))  # (B, H, Q)
        return F.quantile_loss(predictions, horizon, list(self.quantile_levels))

    def predict(
        self,
        context: np.ndarray,
        levels: tuple[float, ...] | None = None,
        start_index: int = 0,
    ) -> QuantileForecast:
        """Quantile forecasts on (a subset of) the trained grid.

        ``levels=None`` returns the full trained grid.  Off-grid levels
        within the grid's range are served by the container's linear
        interpolation; levels outside the range raise — retraining with a
        wider grid is the honest fix (paper Section III-B2).
        """
        self._require_fitted()
        assert self.network is not None
        context = np.asarray(context, dtype=np.float64)
        if len(context) != self.context_length:
            raise ValueError(
                f"context must have length {self.context_length}, got {len(context)}"
            )
        normalised = self.scaler.transform(context)[None, :]
        if self.window_normalization:
            mean, std = self._window_stats(normalised)
            normalised = (normalised - mean) / std
        past, future = self._network_inputs(normalised, np.array([start_index]))
        with no_grad():
            raw = self.network(Tensor(past), Tensor(future)).data[0]  # (H, Q)
        if self.window_normalization:
            raw = raw * std[0, 0] + mean[0, 0]
        grid_values = self.scaler.inverse_transform(raw.T)  # (Q, H)
        full = QuantileForecast(
            levels=np.array(self.quantile_levels), values=grid_values
        ).sorted_monotone()
        if levels is None:
            return full
        levels = tuple(sorted(levels))
        values = np.stack([full.at(tau) for tau in levels])
        return QuantileForecast(levels=np.array(levels), values=values, mean=full.point)

    def attention_weights(self) -> np.ndarray | None:
        """Mean attention pattern of the last forward pass (interpretability)."""
        network = self.network
        return None if network is None else network._last_attention
