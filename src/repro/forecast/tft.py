"""Temporal Fusion Transformer (quantile-grid forecaster).

The paper's strongest model and the canonical instance of the "learn a
pre-specified grid of quantiles" methodology (Figure 3b).  This is a
compact but structurally faithful TFT (Lim et al., 2019):

* past inputs (lagged value + calendar covariates) feed an LSTM encoder;
  known future inputs (calendar covariates) feed an LSTM decoder seeded
  with the encoder state — TFT's sequence-to-sequence locality layer;
* a gated (GLU) residual connection and layer norm wrap the recurrent
  output;
* interpretable multi-head self-attention with a causal mask lets every
  decoder step attend over the whole past;
* a position-wise Gated Residual Network feeds per-quantile linear heads;
* training jointly minimises the quantile (pinball) loss summed over the
  pre-specified grid (Eq. 2).

Omitted relative to the full paper model: per-variable variable-selection
networks and static covariates (the workload task has a single target
series and no static metadata — the selection weights would be
degenerate).
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    LSTM,
    GatedLinearUnit,
    GatedResidualNetwork,
    InterpretableMultiHeadAttention,
    LayerNorm,
    Linear,
    Module,
    Tensor,
    causal_mask,
    fastgrad,
    fastpath,
    no_grad,
)
from ..nn import functional as F
from .base import DEFAULT_QUANTILE_LEVELS, QuantileForecast
from .features import NUM_CALENDAR_FEATURES, calendar_features
from .neural import NeuralForecaster, TrainingConfig

__all__ = ["TFTForecaster"]

_accumulate = fastgrad.accumulate_grad


class _TFTNetwork(Module):
    def __init__(
        self,
        d_model: int,
        num_heads: int,
        num_quantiles: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.past_proj = Linear(1 + NUM_CALENDAR_FEATURES, d_model, rng)
        self.future_proj = Linear(NUM_CALENDAR_FEATURES, d_model, rng)
        self.encoder = LSTM(d_model, d_model, rng)
        self.decoder = LSTM(d_model, d_model, rng)
        self.lstm_gate = GatedLinearUnit(d_model, d_model, rng)
        self.lstm_norm = LayerNorm(d_model)
        self.attention = InterpretableMultiHeadAttention(d_model, num_heads, rng)
        self.attn_gate = GatedLinearUnit(d_model, d_model, rng)
        self.attn_norm = LayerNorm(d_model)
        self.feed_forward = GatedResidualNetwork(d_model, d_model, d_model, rng)
        self.quantile_head = Linear(d_model, num_quantiles, rng)
        self._last_attention: np.ndarray | None = None

    def forward(self, past: Tensor, future: Tensor) -> Tensor:
        """past: (B, T, 1+F); future: (B, H, F) -> quantiles (B, H, Q)."""
        # Whole-network raw-array dispatch under no_grad: one kernel
        # composition instead of per-layer Tensor wrapping.  (The GRN's
        # dropout is inactive in eval mode or at p == 0 — the TFT
        # default — which is what the fused kernels assume.)
        if fastpath.should_use_fast_path() and (
            not self.training or self.feed_forward.dropout.p == 0.0
        ):
            past_data = past.data if isinstance(past, Tensor) else np.asarray(past)
            future_data = future.data if isinstance(future, Tensor) else np.asarray(future)
            return Tensor(self.fast_forward(past_data, future_data))
        encoded_in = self.past_proj(past)
        decoded_in = self.future_proj(future)
        encoded, state = self.encoder(encoded_in)
        decoded, _ = self.decoder(decoded_in, state)

        # Gated skip around the seq2seq layer (TFT Eq. 17).
        sequence = Tensor.concat([encoded, decoded], axis=1)
        skip = Tensor.concat([encoded_in, decoded_in], axis=1)
        sequence = self.lstm_norm(skip + self.lstm_gate(sequence))

        horizon = decoded.shape[1]
        query = sequence[:, -horizon:, :]
        mask = causal_mask(query_len=horizon, key_len=sequence.shape[1])
        attended, weights = self.attention(query, sequence, sequence, mask=mask)
        self._last_attention = weights.data
        attended = self.attn_norm(query + self.attn_gate(attended))

        return self.quantile_head(self.feed_forward(attended))

    def fast_forward(
        self,
        past: np.ndarray,
        future: np.ndarray,
        dtype: "np.dtype | type | None" = None,
    ) -> np.ndarray:
        """Tape-free forward on raw arrays via the fused fastpath kernels.

        ``dtype=None`` computes in float64 — bitwise-identical to the
        tape forward, including the stored attention pattern;
        ``np.float32`` casts inputs and weights once and runs the whole
        stack in single precision (the inference dtype mode).
        """
        work = np.float64 if dtype is None else np.dtype(dtype)
        cast = None if work == np.dtype(np.float64) else work

        def proj(linear: Linear, x: np.ndarray) -> np.ndarray:
            weight = linear.weight.data
            bias = linear.bias.data if linear.bias is not None else None
            if cast is not None:
                weight = weight.astype(cast, copy=False)
                bias = None if bias is None else bias.astype(cast, copy=False)
            return fastpath.linear_forward(x, weight, bias)

        past = past.astype(work, copy=False)
        future = future.astype(work, copy=False)
        hidden_size = self.encoder.hidden_size
        encoded_in = proj(self.past_proj, past)
        decoded_in = proj(self.future_proj, future)
        encoded, state = fastpath.lstm_forward(
            encoded_in, self.encoder._layer_params(), hidden_size, dtype=cast
        )
        decoded, _ = fastpath.lstm_forward(
            decoded_in, self.decoder._layer_params(), hidden_size, state=state, dtype=cast
        )

        sequence = np.concatenate([encoded, decoded], axis=1)
        skip = np.concatenate([encoded_in, decoded_in], axis=1)
        sequence = self.lstm_norm.fast_forward(
            skip + self.lstm_gate.fast_forward(sequence, dtype=cast), dtype=cast
        )

        horizon = decoded.shape[1]
        query = sequence[:, -horizon:, :]
        mask = causal_mask(query_len=horizon, key_len=sequence.shape[1])
        attended, weights = self.attention.fast_forward(
            query, sequence, sequence, mask=mask, dtype=cast
        )
        self._last_attention = weights
        attended = self.attn_norm.fast_forward(
            query + self.attn_gate.fast_forward(attended, dtype=cast), dtype=cast
        )

        return proj(self.quantile_head, self.feed_forward.fast_forward(attended, dtype=cast))


class TFTForecaster(NeuralForecaster):
    """Quantile-grid forecaster.

    Parameters
    ----------
    quantile_levels:
        The pre-specified grid A.  Changing it requires retraining —
        the structural trade-off the paper highlights for this method
        family.
    """

    def __init__(
        self,
        context_length: int,
        horizon: int,
        quantile_levels: tuple[float, ...] = DEFAULT_QUANTILE_LEVELS,
        d_model: int = 32,
        num_heads: int = 4,
        window_normalization: bool = True,
        config: TrainingConfig | None = None,
    ) -> None:
        super().__init__(context_length, horizon, config)
        levels = tuple(sorted(quantile_levels))
        if not levels or any(not 0.0 < tau < 1.0 for tau in levels):
            raise ValueError("quantile levels must lie in (0, 1)")
        if len(set(levels)) != len(levels):
            raise ValueError("duplicate quantile levels")
        self.quantile_levels = levels
        self.default_levels = levels  # predict(levels=None) -> trained grid
        self.d_model = d_model
        self.num_heads = num_heads
        # Per-window standardization (each window scaled by its own
        # context mean/std) makes forecasts follow level drift — the
        # scale-handling trick of the reference implementations.  The
        # global scaler still runs first; window stats are computed in
        # the globally-normalised space.
        self.window_normalization = window_normalization

    def _build(self, rng: np.random.Generator) -> Module:
        return _TFTNetwork(self.d_model, self.num_heads, len(self.quantile_levels), rng)

    def _network_inputs(
        self, context: np.ndarray, start_indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        batch, length = context.shape
        past_idx = start_indices[:, None] + np.arange(length)[None, :]
        future_idx = start_indices[:, None] + length + np.arange(self.horizon)[None, :]
        past = np.concatenate([context[..., None], calendar_features(past_idx)], axis=-1)
        future = calendar_features(future_idx)
        return past, future

    def _window_stats(self, context: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-window location from the context (B, T) -> (B, 1).

        Location-only centering: subtracting the window mean makes
        forecasts follow level drift, while keeping the global scale
        leaves volatility differences between windows visible to the
        network (the signal behind the Eq. 8 uncertainty metric).
        """
        mean = context.mean(axis=1, keepdims=True)
        return mean, np.ones_like(mean)

    def _loss(
        self, context: np.ndarray, horizon: np.ndarray, start_indices: np.ndarray
    ) -> Tensor:
        assert self.network is not None
        if self.window_normalization:
            mean, std = self._window_stats(context)
            context = (context - mean) / std
            horizon = (horizon - mean) / std
        past, future = self._network_inputs(context, start_indices)
        predictions = self.network(Tensor(past), Tensor(future))  # (B, H, Q)
        return F.quantile_loss(predictions, horizon, list(self.quantile_levels))

    def _supports_fastgrad(self) -> bool:
        return True

    def _fastgrad_loss_backward(
        self, context: np.ndarray, horizon: np.ndarray, start_indices: np.ndarray
    ) -> float:
        """Analytic loss + gradients: ``_loss(...).backward()`` without a tape.

        One cached-activations forward through the fused kernels, then
        closed-form backwards in reverse order (quantile head -> GRN ->
        attention block -> gated LSTM skip -> decoder -> encoder ->
        input projections).  Every composition mirrors the tape op for
        op, so float64 losses and accumulated gradients are
        bitwise-identical to ``_loss``.  Gradients go straight into
        ``param.grad``; the surrounding clip/Adam/early-stopping loop is
        unchanged.
        """
        assert self.network is not None
        net = self.network
        if self.window_normalization:
            mean, std = self._window_stats(context)
            context = (context - mean) / std
            horizon = (horizon - mean) / std
        past, future = self._network_inputs(context, start_indices)

        # -- forward (cached activations) --------------------------------
        hs = net.encoder.hidden_size
        encoded_in = fastpath.linear_forward(
            past, net.past_proj.weight.data, net.past_proj.bias.data
        )
        decoded_in = fastpath.linear_forward(
            future, net.future_proj.weight.data, net.future_proj.bias.data
        )
        encoded, enc_caches = fastgrad.lstm_forward_train(
            encoded_in, net.encoder._layer_params(), hs
        )
        decoded, dec_caches = fastgrad.lstm_forward_train(
            decoded_in,
            net.decoder._layer_params(),
            hs,
            state=fastgrad.lstm_final_state(enc_caches),
        )

        seq_in = np.concatenate([encoded, decoded], axis=1)
        skip = np.concatenate([encoded_in, decoded_in], axis=1)
        gated_seq, lstm_glu_cache = fastgrad.glu_forward_train(net.lstm_gate, seq_in)
        sequence, lstm_norm_cache = fastgrad.layer_norm_forward_train(
            net.lstm_norm, skip + gated_seq
        )

        h = decoded.shape[1]
        query = sequence[:, -h:, :]
        mask = causal_mask(query_len=h, key_len=sequence.shape[1])
        attended, weights, attn_cache = fastgrad.attention_forward_train(
            net.attention, query, sequence, sequence, mask=mask
        )
        net._last_attention = weights
        gated_attn, attn_glu_cache = fastgrad.glu_forward_train(net.attn_gate, attended)
        attended_res, attn_norm_cache = fastgrad.layer_norm_forward_train(
            net.attn_norm, query + gated_attn
        )
        grn_out, grn_cache = fastgrad.grn_forward_train(net.feed_forward, attended_res)
        predictions = fastpath.linear_forward(
            grn_out, net.quantile_head.weight.data, net.quantile_head.bias.data
        )

        loss, dpred = fastgrad.quantile_loss_grads(
            predictions, horizon, list(self.quantile_levels)
        )

        # -- backward ----------------------------------------------------
        dgrn, dw_head, db_head = fastgrad.linear_backward(
            grn_out, net.quantile_head.weight.data, dpred
        )
        _accumulate(net.quantile_head.weight, dw_head)
        _accumulate(net.quantile_head.bias, db_head)

        dattended_res = fastgrad.grn_backward(net.feed_forward, grn_cache, dgrn)
        dsum = fastgrad.layer_norm_backward(net.attn_norm, attn_norm_cache, dattended_res)
        dquery = dsum.copy()  # residual branch
        dattended = fastgrad.glu_backward(net.attn_gate, attn_glu_cache, dsum)
        dq_attn, dkey, dvalue = fastgrad.attention_backward(
            net.attention, attn_cache, dattended
        )
        dquery += dq_attn
        dsequence = dkey + dvalue
        dsequence[:, -h:, :] += dquery

        dsum = fastgrad.layer_norm_backward(net.lstm_norm, lstm_norm_cache, dsequence)
        dseq_in = fastgrad.glu_backward(net.lstm_gate, lstm_glu_cache, dsum)
        steps = encoded.shape[1]
        dskip = dsum  # residual branch; split below
        denc_in = dskip[:, :steps, :].copy()
        ddec_in = dskip[:, steps:, :].copy()

        dec_grads, ddec_x, dec_dstate = fastgrad.lstm_backward(
            dseq_in[:, steps:, :], dec_caches, hs, need_dx=True
        )
        ddec_in += ddec_x
        # The decoder's initial state is the encoder's final state, so
        # d(h0)/d(c0) of the decoder flows into the encoder backward.
        enc_grads, denc_x, _ = fastgrad.lstm_backward(
            dseq_in[:, :steps, :], enc_caches, hs, need_dx=True, dstate=dec_dstate
        )
        denc_in += denc_x
        for lstm, grads in ((net.encoder, enc_grads), (net.decoder, dec_grads)):
            for cell, (dw_ih, dw_hh, db) in zip(lstm._cells, grads):
                _accumulate(cell.w_ih, dw_ih)
                _accumulate(cell.w_hh, dw_hh)
                _accumulate(cell.bias, db)

        _, dw_past, db_past = fastgrad.linear_backward(
            past, net.past_proj.weight.data, denc_in, need_dx=False
        )
        _accumulate(net.past_proj.weight, dw_past)
        _accumulate(net.past_proj.bias, db_past)
        _, dw_future, db_future = fastgrad.linear_backward(
            future, net.future_proj.weight.data, ddec_in, need_dx=False
        )
        _accumulate(net.future_proj.weight, dw_future)
        _accumulate(net.future_proj.bias, db_future)
        return loss

    def predict(
        self,
        context: np.ndarray,
        levels: tuple[float, ...] | None = None,
        start_index: int = 0,
    ) -> QuantileForecast:
        """Quantile forecasts on (a subset of) the trained grid.

        ``levels=None`` returns the full trained grid.  Off-grid levels
        within the grid's range are served by the container's linear
        interpolation; levels outside the range raise — retraining with a
        wider grid is the honest fix (paper Section III-B2).
        """
        self._require_fitted()
        assert self.network is not None
        context = np.asarray(context, dtype=np.float64)
        if len(context) != self.context_length:
            raise ValueError(
                f"context must have length {self.context_length}, got {len(context)}"
            )
        normalised = self.scaler.transform(context)[None, :]
        if self.window_normalization:
            mean, std = self._window_stats(normalised)
            normalised = (normalised - mean) / std
        past, future = self._network_inputs(normalised, np.array([start_index]))
        with no_grad():
            if self.inference_dtype != np.dtype(np.float64):
                raw = self.network.fast_forward(
                    past, future, dtype=self.inference_dtype
                )[0].astype(np.float64)  # (H, Q)
            else:
                raw = self.network(Tensor(past), Tensor(future)).data[0]  # (H, Q)
        if self.window_normalization:
            raw = raw * std[0, 0] + mean[0, 0]
        grid_values = self.scaler.inverse_transform(raw.T)  # (Q, H)
        full = QuantileForecast(
            levels=np.array(self.quantile_levels), values=grid_values
        ).sorted_monotone()
        if levels is None:
            return full
        levels = tuple(sorted(levels))
        values = np.stack([full.at(tau) for tau in levels])
        return QuantileForecast(levels=np.array(levels), values=values, mean=full.point)

    def attention_weights(self) -> np.ndarray | None:
        """Mean attention pattern of the last forward pass (interpretability)."""
        network = self.network
        return None if network is None else network._last_attention
