"""Forecaster interfaces and the quantile-forecast container.

Definitions 1 and 2 of the paper: a forecaster maps a context window
``w = {w_1..w_T}`` to future workloads; a *quantile* forecaster predicts
``{w-hat^tau_(T+1) .. w-hat^tau_(T+H)}`` for prespecified quantile levels
tau.  :class:`QuantileForecast` is the exchange format between the
Probabilistic Workload Forecaster and the Robust Auto-Scaling Manager.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

__all__ = ["QuantileForecast", "Forecaster", "PointForecaster", "DEFAULT_QUANTILE_LEVELS"]

# The grid used throughout the paper's scaling experiments (Section IV-C).
DEFAULT_QUANTILE_LEVELS = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99)


@dataclass
class QuantileForecast:
    """Quantile forecasts for one horizon.

    Attributes
    ----------
    levels:
        Sorted quantile levels, shape (L,).
    values:
        Forecasts per level, shape (L, H).
    mean:
        Optional point/mean forecast, shape (H,).  When absent,
        :attr:`point` falls back to the median.
    """

    levels: np.ndarray
    values: np.ndarray
    mean: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.levels = np.asarray(self.levels, dtype=np.float64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.levels.ndim != 1:
            raise ValueError("levels must be 1-D")
        if self.values.shape[0] != len(self.levels):
            raise ValueError(
                f"values first axis ({self.values.shape[0]}) must match "
                f"number of levels ({len(self.levels)})"
            )
        if np.any(self.levels <= 0) or np.any(self.levels >= 1):
            raise ValueError("quantile levels must lie in (0, 1)")
        if np.any(np.diff(self.levels) <= 0):
            raise ValueError("levels must be strictly increasing")
        if self.mean is not None:
            self.mean = np.asarray(self.mean, dtype=np.float64)
            if self.mean.shape != (self.horizon,):
                raise ValueError("mean must have shape (horizon,)")

    @property
    def horizon(self) -> int:
        return self.values.shape[1]

    def at(self, tau: float) -> np.ndarray:
        """Forecast series at quantile level ``tau``.

        Exact if ``tau`` is on the grid; otherwise linearly interpolated
        between neighbouring levels (only possible within the grid's
        range).  Grid models (TFT) must be queried on-grid or in-range;
        parametric models expose arbitrary levels natively and build
        a dense grid before wrapping results in this container.
        """
        exact = np.flatnonzero(np.isclose(self.levels, tau))
        if exact.size:
            return self.values[exact[0]]
        if tau < self.levels[0] or tau > self.levels[-1]:
            raise ValueError(
                f"tau={tau} outside forecast grid [{self.levels[0]}, {self.levels[-1]}]"
            )
        upper = int(np.searchsorted(self.levels, tau))
        lower = upper - 1
        weight = (tau - self.levels[lower]) / (self.levels[upper] - self.levels[lower])
        return (1.0 - weight) * self.values[lower] + weight * self.values[upper]

    @property
    def median(self) -> np.ndarray:
        """The 0.5-quantile forecast (interpolated if not on the grid)."""
        return self.at(0.5)

    @property
    def point(self) -> np.ndarray:
        """Point forecast: the model mean if available, else the median."""
        return self.mean if self.mean is not None else self.median

    def as_dict(self) -> dict[float, np.ndarray]:
        """Mapping tau -> series, the format the metrics module consumes."""
        return {float(tau): self.values[i] for i, tau in enumerate(self.levels)}

    def sorted_monotone(self) -> "QuantileForecast":
        """Return a copy with quantile crossing removed.

        Independently-trained quantile heads can cross; sorting values
        per step restores monotonicity without changing pinball loss
        (the standard rearrangement fix).
        """
        return QuantileForecast(
            levels=self.levels,
            values=np.sort(self.values, axis=0),
            mean=self.mean,
            metadata=dict(self.metadata),
        )


class Forecaster(ABC):
    """Probabilistic workload forecaster (Definition 2).

    Lifecycle: construct with hyperparameters, :meth:`fit` on a historical
    series, then :meth:`predict` quantiles for the steps following a
    context window.
    """

    #: set by fit(); guards predict()
    _fitted: bool = False

    #: grid served when ``predict(levels=None)``; parametric models keep
    #: the paper's Section IV-C grid, grid-trained models (TFT, quantile
    #: regression) override this with their trained grid.
    default_levels: tuple[float, ...] = DEFAULT_QUANTILE_LEVELS

    @abstractmethod
    def fit(self, series: np.ndarray) -> "Forecaster":
        """Train on a historical workload series (1-D array)."""

    @abstractmethod
    def predict(
        self,
        context: np.ndarray,
        levels: tuple[float, ...] | None = None,
        start_index: int = 0,
    ) -> QuantileForecast:
        """Forecast the ``horizon`` steps following ``context``.

        Parameters
        ----------
        context:
            The most recent ``context_length`` workload values.
        levels:
            Quantile levels to report; ``None`` (accepted by every
            forecaster) serves the model's :attr:`default_levels`.
            Grid-based models may require explicit levels to be inside
            their trained grid.
        start_index:
            Absolute time index of ``context[0]`` in the original trace;
            used to phase-align calendar features (time of day / week).
            Forecasters without calendar features accept and ignore it —
            their docstrings say so explicitly.
        """

    def _resolve_levels(
        self, levels: "tuple[float, ...] | None"
    ) -> tuple[float, ...]:
        """Uniform ``levels=None`` handling: sorted explicit levels or
        the model's :attr:`default_levels`."""
        if levels is None:
            return tuple(self.default_levels)
        if len(levels) == 0:
            raise ValueError("levels must be non-empty or None")
        return tuple(sorted(levels))

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} used before fit()")


class PointForecaster(ABC):
    """Single-valued forecaster (Definition 1) — the baseline paradigm."""

    _fitted: bool = False

    @abstractmethod
    def fit(self, series: np.ndarray) -> "PointForecaster":
        """Train on a historical workload series (1-D array)."""

    @abstractmethod
    def predict_point(self, context: np.ndarray, start_index: int = 0) -> np.ndarray:
        """Forecast the horizon as a single series of expected values."""

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} used before fit()")
