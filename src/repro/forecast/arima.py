"""ARIMA(p, d, q) with residual-based quantile forecasts.

The paper's statistical baseline: "Quantile forecasts can be enabled by
incorporating residuals to capture the uncertainty of the forecasts"
(Section IV-A2).  Fitting uses the Hannan–Rissanen two-stage procedure —
a long autoregression estimates the innovations, then AR and MA
coefficients are estimated jointly by least squares on lagged values and
lagged innovations.  Forecast variance grows with horizon through the
psi-weight (MA(inf)) expansion, and quantiles are Gaussian around the
point forecast.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from .base import Forecaster, QuantileForecast

__all__ = ["ARIMAForecaster"]


class ARIMAForecaster(Forecaster):
    """ARIMA via Hannan–Rissanen estimation.

    Parameters
    ----------
    order:
        (p, d, q) — AR order, differencing order, MA order.
    horizon:
        Forecast length.
    long_ar_order:
        Order of the stage-1 long autoregression; default scales with p+q.
    """

    def __init__(
        self,
        horizon: int,
        order: tuple[int, int, int] = (3, 1, 2),
        long_ar_order: int | None = None,
    ) -> None:
        p, d, q = order
        if p < 0 or d < 0 or q < 0 or (p == 0 and q == 0):
            raise ValueError(f"invalid ARIMA order {order}")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.horizon = horizon
        self.p, self.d, self.q = p, d, q
        self.long_ar_order = long_ar_order or max(10, 2 * (p + q))
        self.ar_coef = np.zeros(p)
        self.ma_coef = np.zeros(q)
        self.intercept = 0.0
        self.sigma = 1.0

    # ------------------------------------------------------------------
    def fit(self, series: np.ndarray) -> "ARIMAForecaster":
        series = np.asarray(series, dtype=np.float64)
        worked = np.diff(series, n=self.d) if self.d > 0 else series.copy()
        min_len = self.long_ar_order + max(self.p, self.q) + 10
        if len(worked) < min_len:
            raise ValueError(f"need at least {min_len} points after differencing")

        innovations = self._stage1_innovations(worked)
        self._stage2_regression(worked, innovations)
        self._estimate_sigma(worked)
        self._fitted = True
        return self

    def _stage1_innovations(self, x: np.ndarray) -> np.ndarray:
        """Long-AR fit; returns innovation estimates aligned with ``x``."""
        m = self.long_ar_order
        rows = np.column_stack([x[m - k - 1 : len(x) - k - 1] for k in range(m)])
        design = np.column_stack([np.ones(len(rows)), rows])
        target = x[m:]
        coef, *_ = np.linalg.lstsq(design, target, rcond=None)
        fitted = design @ coef
        innovations = np.zeros_like(x)
        innovations[m:] = target - fitted
        return innovations

    def _stage2_regression(self, x: np.ndarray, innovations: np.ndarray) -> None:
        """Joint LS regression of x_t on p lags of x and q lags of innovations."""
        offset = max(self.p, self.q, self.long_ar_order)
        columns = [np.ones(len(x) - offset)]
        for k in range(1, self.p + 1):
            columns.append(x[offset - k : len(x) - k])
        for k in range(1, self.q + 1):
            columns.append(innovations[offset - k : len(x) - k])
        design = np.column_stack(columns)
        target = x[offset:]
        coef, *_ = np.linalg.lstsq(design, target, rcond=None)
        self.intercept = float(coef[0])
        self.ar_coef = coef[1 : 1 + self.p]
        self.ma_coef = coef[1 + self.p :]

    def _estimate_sigma(self, x: np.ndarray) -> None:
        """One-step in-sample residual std (the innovation scale)."""
        residuals = self._one_step_residuals(x)
        self.sigma = float(residuals.std()) if len(residuals) else 1.0
        if self.sigma < 1e-12:
            self.sigma = 1e-12

    def _one_step_residuals(self, x: np.ndarray) -> np.ndarray:
        offset = max(self.p, self.q)
        eps = np.zeros(len(x))
        residuals = []
        for t in range(offset, len(x)):
            ar_part = sum(self.ar_coef[k] * x[t - k - 1] for k in range(self.p))
            ma_part = sum(self.ma_coef[k] * eps[t - k - 1] for k in range(self.q))
            prediction = self.intercept + ar_part + ma_part
            eps[t] = x[t] - prediction
            residuals.append(eps[t])
        return np.asarray(residuals)

    # ------------------------------------------------------------------
    def psi_weights(self, count: int) -> np.ndarray:
        """MA(inf) weights of the fitted ARMA: psi_0 = 1, recursive after.

        Forecast error variance at lead h is sigma^2 * sum_{j<h} psi_j^2
        (before un-differencing).
        """
        psi = np.zeros(count)
        psi[0] = 1.0
        for j in range(1, count):
            value = self.ma_coef[j - 1] if j - 1 < self.q else 0.0
            for k in range(1, min(j, self.p) + 1):
                value += self.ar_coef[k - 1] * psi[j - k]
            psi[j] = value
        return psi

    def predict(
        self,
        context: np.ndarray,
        levels: tuple[float, ...] | None = None,
        start_index: int = 0,
    ) -> QuantileForecast:
        """ARMA recursion + Gaussian psi-weight fan.

        ``levels=None`` serves :attr:`default_levels`; any level in
        (0, 1) is exact (parametric).  ``start_index`` is ignored —
        ARIMA carries no calendar features.
        """
        self._require_fitted()
        context = np.asarray(context, dtype=np.float64)
        if len(context) < self.d + max(self.p, self.q) + self.long_ar_order:
            raise ValueError("context too short for the fitted orders")

        worked = np.diff(context, n=self.d) if self.d > 0 else context.copy()
        eps_history = self._recent_innovations(worked)

        # Iterate the ARMA recursion forward; future innovations are zero.
        values = list(worked)
        eps = list(eps_history)
        forecasts = []
        for _ in range(self.horizon):
            ar_part = sum(self.ar_coef[k] * values[-k - 1] for k in range(self.p))
            ma_part = sum(
                self.ma_coef[k] * eps[-k - 1] for k in range(self.q) if len(eps) > k
            )
            step = self.intercept + ar_part + ma_part
            forecasts.append(step)
            values.append(step)
            eps.append(0.0)
        forecasts = np.asarray(forecasts)

        point, spread = self._undifference(context, forecasts)
        levels = self._resolve_levels(levels)
        quantiles = np.stack([point + stats.norm.ppf(tau) * spread for tau in levels])
        return QuantileForecast(levels=np.array(levels), values=quantiles, mean=point)

    def _recent_innovations(self, worked: np.ndarray) -> np.ndarray:
        """Innovations over the context window (needed by the MA part)."""
        if self.q == 0:
            return np.zeros(0)
        return self._one_step_residuals(worked)[-max(self.q, 1) :]

    def _undifference(
        self, context: np.ndarray, forecasts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Integrate differenced forecasts back; propagate psi-based spread."""
        psi = self.psi_weights(self.horizon)
        if self.d == 0:
            spread = self.sigma * np.sqrt(np.cumsum(psi**2))
            return forecasts, spread
        # Cumulative re-integration (applied d times).
        point = forecasts.copy()
        for _ in range(self.d):
            point = np.cumsum(point)
        anchor = context[-1]
        if self.d == 1:
            point = anchor + point
        else:
            # General d: rebuild by repeatedly integrating with the last
            # observed values of each difference order as anchors.
            point = self._integrate_general(context, forecasts)
        # psi weights of the integrated process: cumulative sums of psi.
        psi_integrated = psi.copy()
        for _ in range(self.d):
            psi_integrated = np.cumsum(psi_integrated)
        spread = self.sigma * np.sqrt(np.cumsum(psi_integrated**2))
        return point, spread

    def _integrate_general(self, context: np.ndarray, forecasts: np.ndarray) -> np.ndarray:
        """Undifference for arbitrary d by replaying the anchor chain."""
        levels = [context]
        for _ in range(self.d):
            levels.append(np.diff(levels[-1]))
        # levels[k] is the k-times differenced context
        current = forecasts
        for k in range(self.d, 0, -1):
            anchor = levels[k - 1][-1]
            current = anchor + np.cumsum(current)
        return current
