"""Point-forecast adapters and the CloudScale-style padding enhancement.

The paper compares against two point-forecast scalers:

* *TFT-point* — "we train TFT to exclusively output the 0.5 quantile,
  effectively serving as a point forecasting model" (Section IV-A2);
* *-padding* variants — the enhancement of Shen et al. (CloudScale,
  SoCC 2011): "adding a small additional value to future predictions
  based on past underestimation errors".
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .base import Forecaster, PointForecaster
from .neural import TrainingConfig
from .tft import TFTForecaster

__all__ = ["TFTPointForecaster", "MedianPointAdapter", "PaddedPointForecaster"]


class TFTPointForecaster(PointForecaster):
    """TFT restricted to the 0.5 quantile — a pure point forecaster.

    The architecture and training are identical to the quantile TFT; only
    the output grid shrinks to {0.5}, making the pinball loss equivalent
    to (half) the MAE.
    """

    def __init__(
        self,
        context_length: int,
        horizon: int,
        d_model: int = 32,
        num_heads: int = 4,
        config: TrainingConfig | None = None,
    ) -> None:
        self._tft = TFTForecaster(
            context_length,
            horizon,
            quantile_levels=(0.5,),
            d_model=d_model,
            num_heads=num_heads,
            config=config,
        )

    @property
    def context_length(self) -> int:
        return self._tft.context_length

    @property
    def horizon(self) -> int:
        return self._tft.horizon

    def fit(self, series: np.ndarray) -> "TFTPointForecaster":
        self._tft.fit(series)
        self._fitted = True
        return self

    def predict_point(self, context: np.ndarray, start_index: int = 0) -> np.ndarray:
        self._require_fitted()
        return self._tft.predict(context, levels=(0.5,), start_index=start_index).values[0]


class MedianPointAdapter(PointForecaster):
    """Use any quantile forecaster's median as a point forecast."""

    def __init__(self, forecaster: Forecaster) -> None:
        self.forecaster = forecaster

    def fit(self, series: np.ndarray) -> "MedianPointAdapter":
        self.forecaster.fit(series)
        self._fitted = True
        return self

    def predict_point(self, context: np.ndarray, start_index: int = 0) -> np.ndarray:
        self._require_fitted()
        return self.forecaster.predict(context, levels=(0.5,), start_index=start_index).values[0]


class PaddedPointForecaster(PointForecaster):
    """Point forecaster + additive padding learned from past underestimation.

    After every decision cycle the caller feeds back what actually
    happened via :meth:`observe`.  The padding added to subsequent
    forecasts is a high percentile of the recent *underestimation* errors
    ``max(0, actual - forecast)``, so sustained under-forecasting raises
    the safety margin while overestimation leaves it untouched — the
    CloudScale recipe.

    Parameters
    ----------
    window:
        Number of recent per-step errors remembered.
    percentile:
        Which percentile of remembered underestimation errors to add
        (1.0 = the maximum error, the most conservative choice).
    """

    def __init__(
        self, base: PointForecaster, window: int = 288, percentile: float = 0.95
    ) -> None:
        if not 0.0 < percentile <= 1.0:
            raise ValueError("percentile must be in (0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.base = base
        self.window = window
        self.percentile = percentile
        self._errors: deque[float] = deque(maxlen=window)

    def fit(self, series: np.ndarray) -> "PaddedPointForecaster":
        self.base.fit(series)
        self._fitted = True
        return self

    def observe(self, actual: np.ndarray, forecast: np.ndarray) -> None:
        """Record the underestimation errors of a completed horizon."""
        actual = np.asarray(actual, dtype=np.float64)
        forecast = np.asarray(forecast, dtype=np.float64)
        if actual.shape != forecast.shape:
            raise ValueError("actual and forecast must have the same shape")
        for error in np.maximum(actual - forecast, 0.0):
            self._errors.append(float(error))

    @property
    def padding(self) -> float:
        """Current additive safety margin."""
        if not self._errors:
            return 0.0
        return float(np.quantile(np.asarray(self._errors), self.percentile))

    def predict_point(self, context: np.ndarray, start_index: int = 0) -> np.ndarray:
        self._require_fitted()
        return self.base.predict_point(context, start_index) + self.padding
