"""QueryBot 5000 (QB5000) hybrid point forecaster.

The paper's learned point-forecast baseline (Section IV-A2): "A hybrid
forecaster that combines linear regression, long short-term memory
network, and kernel regression" (Ma et al., SIGMOD 2018).  Following the
original design:

* **linear regression** on the context window, solved in closed form with
  one multi-output least-squares system (fast, captures level + trend);
* **LSTM** trained with MSE through a direct multi-horizon head (captures
  nonlinear seasonal structure);
* **kernel regression** (Nadaraya–Watson over historical windows), which
  QB5000 uses to recover recurring spike patterns that the other two
  smooth away.

The ensemble averages the component forecasts.
"""

from __future__ import annotations

import numpy as np

from ..nn import LSTM, Linear, Module, Tensor, no_grad
from ..nn import functional as F
from ..traces.dataset import StandardScaler
from .base import PointForecaster
from .neural import NeuralForecaster, TrainingConfig

__all__ = ["QB5000Forecaster", "LinearRegressionForecaster", "KernelRegressionForecaster"]


class LinearRegressionForecaster(PointForecaster):
    """Direct multi-horizon linear regression on the context window."""

    def __init__(self, context_length: int, horizon: int, ridge: float = 1e-3) -> None:
        self.context_length = context_length
        self.horizon = horizon
        self.ridge = ridge
        self.weights: np.ndarray | None = None  # (context+1, horizon)

    def fit(self, series: np.ndarray) -> "LinearRegressionForecaster":
        series = np.asarray(series, dtype=np.float64)
        window = self.context_length + self.horizon
        if len(series) < window + 1:
            raise ValueError("series too short")
        rows = len(series) - window + 1
        windows = np.lib.stride_tricks.sliding_window_view(series, window)
        contexts = windows[:, : self.context_length]
        targets = windows[:, self.context_length :]
        design = np.column_stack([np.ones(rows), contexts])
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self.weights = np.linalg.solve(gram, design.T @ targets)
        self._fitted = True
        return self

    def predict_point(self, context: np.ndarray, start_index: int = 0) -> np.ndarray:
        self._require_fitted()
        context = np.asarray(context, dtype=np.float64)[-self.context_length :]
        return np.concatenate([[1.0], context]) @ self.weights


class KernelRegressionForecaster(PointForecaster):
    """Nadaraya–Watson: weight historical horizons by context similarity.

    The bandwidth is set to a low percentile (5th) of the pairwise
    context distances, keeping the kernel local so that genuinely
    similar historical windows dominate the prediction — QB5000 uses
    this component precisely to recall recurring spiky patterns that
    global models smooth away.  ``max_windows`` bounds memory on long
    traces.
    """

    def __init__(self, context_length: int, horizon: int, max_windows: int = 2000) -> None:
        self.context_length = context_length
        self.horizon = horizon
        self.max_windows = max_windows
        self._contexts: np.ndarray | None = None
        self._futures: np.ndarray | None = None
        self._bandwidth = 1.0

    def fit(self, series: np.ndarray) -> "KernelRegressionForecaster":
        series = np.asarray(series, dtype=np.float64)
        window = self.context_length + self.horizon
        if len(series) < window + 1:
            raise ValueError("series too short")
        rows = len(series) - window + 1
        stride = max(1, rows // self.max_windows)
        starts = np.arange(0, rows, stride)
        windows = np.lib.stride_tricks.sliding_window_view(series, window)
        self._contexts = windows[starts, : self.context_length]
        self._futures = windows[starts, self.context_length :]
        sample = self._contexts[:: max(1, len(self._contexts) // 200)]
        distances = np.linalg.norm(sample[:, None, :] - sample[None, :, :], axis=-1)
        positive = distances[distances > 0]
        self._bandwidth = float(np.quantile(positive, 0.05)) if positive.size else 1.0
        if self._bandwidth <= 0:
            self._bandwidth = 1.0
        self._fitted = True
        return self

    def predict_point(self, context: np.ndarray, start_index: int = 0) -> np.ndarray:
        self._require_fitted()
        context = np.asarray(context, dtype=np.float64)[-self.context_length :]
        distances = np.linalg.norm(self._contexts - context[None, :], axis=-1)
        weights = np.exp(-0.5 * (distances / self._bandwidth) ** 2)
        total = weights.sum()
        if total < 1e-300:
            # Degenerate kernel: fall back to the nearest window.
            return self._futures[np.argmin(distances)].copy()
        return (weights[:, None] * self._futures).sum(axis=0) / total


class _LSTMPointNetwork(Module):
    """LSTM encoder -> direct multi-horizon linear head."""

    def __init__(self, hidden_size: int, horizon: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.lstm = LSTM(1, hidden_size, rng)
        self.head = Linear(hidden_size, horizon, rng)

    def forward(self, context: Tensor) -> Tensor:
        hidden, _ = self.lstm(context.reshape(*context.shape, 1))
        return self.head(hidden[:, -1, :])


class _LSTMPointForecaster(NeuralForecaster):
    """MSE-trained LSTM component of QB5000."""

    def __init__(
        self,
        context_length: int,
        horizon: int,
        hidden_size: int = 32,
        config: TrainingConfig | None = None,
    ) -> None:
        super().__init__(context_length, horizon, config)
        self.hidden_size = hidden_size

    def _build(self, rng: np.random.Generator) -> Module:
        return _LSTMPointNetwork(self.hidden_size, self.horizon, rng)

    def _loss(
        self, context: np.ndarray, horizon: np.ndarray, start_indices: np.ndarray
    ) -> Tensor:
        assert self.network is not None
        return F.mse_loss(self.network(Tensor(context)), horizon)

    def predict(self, context, levels=None, start_index: int = 0):
        raise NotImplementedError("internal point model; use predict_point")

    def predict_point(self, context: np.ndarray, start_index: int = 0) -> np.ndarray:
        self._require_fitted()
        assert self.network is not None
        normalised = self.scaler.transform(np.asarray(context, dtype=np.float64))[None, :]
        with no_grad():
            out = self.network(Tensor(normalised)).data[0]
        return self.scaler.inverse_transform(out)


class QB5000Forecaster(PointForecaster):
    """The QB5000 ensemble: mean of LR, LSTM, and kernel-regression forecasts."""

    def __init__(
        self,
        context_length: int,
        horizon: int,
        hidden_size: int = 32,
        config: TrainingConfig | None = None,
    ) -> None:
        self.context_length = context_length
        self.horizon = horizon
        self.linear = LinearRegressionForecaster(context_length, horizon)
        self.lstm = _LSTMPointForecaster(context_length, horizon, hidden_size, config)
        self.kernel = KernelRegressionForecaster(context_length, horizon)

    def fit(self, series: np.ndarray) -> "QB5000Forecaster":
        series = np.asarray(series, dtype=np.float64)
        self.linear.fit(series)
        self.lstm.fit(series)
        self.kernel.fit(series)
        self._fitted = True
        return self

    def predict_point(self, context: np.ndarray, start_index: int = 0) -> np.ndarray:
        self._require_fitted()
        components = [
            self.linear.predict_point(context, start_index),
            self.lstm.predict_point(context, start_index),
            self.kernel.predict_point(context, start_index),
        ]
        return np.mean(components, axis=0)
