"""Naive baselines: persistence and seasonal-naive quantile forecasters.

Not evaluated in the paper's tables, but indispensable as sanity floors —
any learned model that loses to seasonal-naive on a seasonal trace is
broken, and the test suite uses exactly that check.
"""

from __future__ import annotations

import numpy as np

from ..traces.synthetic import STEPS_PER_DAY
from .base import Forecaster, QuantileForecast

__all__ = ["SeasonalNaiveForecaster", "PersistenceForecaster"]


class SeasonalNaiveForecaster(Forecaster):
    """Repeat the value one season ago; quantiles from seasonal residuals.

    fit() collects the distribution of seasonal differences
    ``w_t - w_{t-s}``; predict() adds the residual quantiles to the
    repeated seasonal values, giving a cheap but honestly calibrated
    probabilistic forecast.
    """

    def __init__(self, horizon: int, season: int = STEPS_PER_DAY) -> None:
        if horizon < 1 or season < 1:
            raise ValueError("horizon and season must be >= 1")
        self.horizon = horizon
        self.season = season
        self._residual_quantiles: dict[float, float] = {}
        self._residuals: np.ndarray | None = None

    def fit(self, series: np.ndarray) -> "SeasonalNaiveForecaster":
        series = np.asarray(series, dtype=np.float64)
        if len(series) <= self.season:
            raise ValueError(
                f"series of length {len(series)} shorter than season {self.season}"
            )
        self._residuals = series[self.season :] - series[: -self.season]
        self._fitted = True
        return self

    def predict(
        self,
        context: np.ndarray,
        levels: tuple[float, ...] | None = None,
        start_index: int = 0,
    ) -> QuantileForecast:
        """Seasonal repeat + residual quantiles.

        ``levels=None`` serves :attr:`default_levels` (the paper's
        grid); ``start_index`` is ignored — alignment comes from the
        context tail, not calendar features.
        """
        self._require_fitted()
        context = np.asarray(context, dtype=np.float64)
        if len(context) < self.season:
            raise ValueError(
                f"context of length {len(context)} shorter than season {self.season}"
            )
        base = np.array(
            [context[len(context) - self.season + (h % self.season)] for h in range(self.horizon)]
        )
        levels = self._resolve_levels(levels)
        offsets = np.quantile(self._residuals, levels)
        values = base[None, :] + offsets[:, None]
        return QuantileForecast(levels=np.array(levels), values=values, mean=base)


class PersistenceForecaster(Forecaster):
    """Repeat the last observed value; quantiles from one-step diffs.

    Uncertainty widens with horizon like a random walk (sqrt scaling).
    """

    def __init__(self, horizon: int) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.horizon = horizon
        self._diff_std: float = 0.0

    def fit(self, series: np.ndarray) -> "PersistenceForecaster":
        series = np.asarray(series, dtype=np.float64)
        if len(series) < 2:
            raise ValueError("need at least 2 points")
        self._diff_std = float(np.diff(series).std())
        self._fitted = True
        return self

    def predict(
        self,
        context: np.ndarray,
        levels: tuple[float, ...] | None = None,
        start_index: int = 0,
    ) -> QuantileForecast:
        """Random-walk fan around the last value.

        ``levels=None`` serves :attr:`default_levels`; any level in
        (0, 1) is exact (parametric).  ``start_index`` is ignored —
        persistence has no calendar features.
        """
        self._require_fitted()
        from scipy import stats

        last = float(np.asarray(context)[-1])
        levels = self._resolve_levels(levels)
        steps = np.arange(1, self.horizon + 1)
        spread = self._diff_std * np.sqrt(steps)
        values = np.stack([last + stats.norm.ppf(tau) * spread for tau in levels])
        return QuantileForecast(
            levels=np.array(levels), values=values, mean=np.full(self.horizon, last)
        )
