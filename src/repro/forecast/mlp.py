"""Probabilistic MLP forecaster (paper Section IV-A2, "MLP" baseline).

"A simple feedforward neural network that generates probabilistic
forecasts by outputting the parameters of a selected distribution."
The network maps the normalised context window to a Gaussian mean and a
softplus-positive sigma per horizon step and trains on the negative
log-likelihood — the textbook instance of the paper's
"learn parametric distributions" methodology (Figure 3a).
"""

from __future__ import annotations

import numpy as np

from ..distributions import Gaussian
from ..nn import Linear, Module, Tensor, fastgrad, no_grad
from ..nn import functional as F
from .base import QuantileForecast
from .neural import NeuralForecaster, TrainingConfig

__all__ = ["MLPForecaster"]

_accumulate = fastgrad.accumulate_grad


class _MLPNetwork(Module):
    """Two hidden layers -> (mu, sigma) heads over the full horizon."""

    def __init__(
        self, context_length: int, horizon: int, hidden_size: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.fc1 = Linear(context_length, hidden_size, rng)
        self.fc2 = Linear(hidden_size, hidden_size, rng)
        self.mu_head = Linear(hidden_size, horizon, rng)
        self.sigma_head = Linear(hidden_size, horizon, rng)

    def forward(self, context: Tensor) -> tuple[Tensor, Tensor]:
        hidden = self.fc2(self.fc1(context).relu()).relu()
        mu = self.mu_head(hidden)
        sigma = self.sigma_head(hidden).softplus() + 1e-4
        return mu, sigma


class MLPForecaster(NeuralForecaster):
    """Gaussian-output feed-forward forecaster.

    Quantiles come straight from the learned distribution's inverse CDF,
    so any level in (0, 1) can be queried after training — the
    flexibility advantage the paper credits to parametric methods.
    """

    def __init__(
        self,
        context_length: int,
        horizon: int,
        hidden_size: int = 64,
        config: TrainingConfig | None = None,
    ) -> None:
        super().__init__(context_length, horizon, config)
        self.hidden_size = hidden_size

    def _build(self, rng: np.random.Generator) -> Module:
        return _MLPNetwork(self.context_length, self.horizon, self.hidden_size, rng)

    def _loss(
        self, context: np.ndarray, horizon: np.ndarray, start_indices: np.ndarray
    ) -> Tensor:
        assert self.network is not None
        mu, sigma = self.network(Tensor(context))
        return F.gaussian_nll(mu, sigma, horizon)

    def _supports_fastgrad(self) -> bool:
        return True

    def _fastgrad_loss_backward(
        self, context: np.ndarray, horizon: np.ndarray, start_indices: np.ndarray
    ) -> float:
        """Analytic forward + backward through the two-layer MLP.

        The full chain (fc1 -> relu -> fc2 -> relu -> mu/sigma heads ->
        Gaussian NLL) has closed-form gradients; everything runs as a
        handful of dense matmuls on raw arrays and lands in
        ``param.grad``, bypassing the per-op tape entirely.
        """
        assert self.network is not None
        net = self.network
        x = np.ascontiguousarray(context)
        h1_pre = x @ net.fc1.weight.data + net.fc1.bias.data
        h1 = h1_pre * (h1_pre > 0)
        h2_pre = h1 @ net.fc2.weight.data + net.fc2.bias.data
        h2 = h2_pre * (h2_pre > 0)
        mu = h2 @ net.mu_head.weight.data + net.mu_head.bias.data
        sigma_pre = h2 @ net.sigma_head.weight.data + net.sigma_head.bias.data
        sigma = np.logaddexp(0.0, sigma_pre) + 1e-4

        loss, dmu, dsigma = fastgrad.gaussian_nll_grads(mu, sigma, horizon)
        dsigma_pre = fastgrad.softplus_backward(sigma_pre, dsigma)

        dh2, dw_mu, db_mu = fastgrad.linear_backward(h2, net.mu_head.weight.data, dmu)
        _accumulate(net.mu_head.weight, dw_mu)
        _accumulate(net.mu_head.bias, db_mu)
        dh2_sigma, dw_sigma, db_sigma = fastgrad.linear_backward(
            h2, net.sigma_head.weight.data, dsigma_pre
        )
        dh2 += dh2_sigma
        _accumulate(net.sigma_head.weight, dw_sigma)
        _accumulate(net.sigma_head.bias, db_sigma)

        dh2_pre = fastgrad.relu_backward(h2_pre, dh2)
        dh1, dw2, db2 = fastgrad.linear_backward(h1, net.fc2.weight.data, dh2_pre)
        _accumulate(net.fc2.weight, dw2)
        _accumulate(net.fc2.bias, db2)
        dh1_pre = fastgrad.relu_backward(h1_pre, dh1)
        _, dw1, db1 = fastgrad.linear_backward(
            x, net.fc1.weight.data, dh1_pre, need_dx=False
        )
        _accumulate(net.fc1.weight, dw1)
        _accumulate(net.fc1.bias, db1)
        return loss

    def predict(
        self,
        context: np.ndarray,
        levels: tuple[float, ...] | None = None,
        start_index: int = 0,
    ) -> QuantileForecast:
        """Gaussian-head quantiles.

        ``levels=None`` serves :attr:`default_levels`; any level in
        (0, 1) is exact (parametric).  ``start_index`` is ignored — the
        MLP consumes only the raw context window, no calendar features.
        """
        self._require_fitted()
        assert self.network is not None
        context = np.asarray(context, dtype=np.float64)
        if len(context) != self.context_length:
            raise ValueError(
                f"context must have length {self.context_length}, got {len(context)}"
            )
        normalised = self.scaler.transform(context)[None, :]
        with no_grad():
            mu, sigma = self.network(Tensor(normalised))
        # Map the Gaussian back to workload units: affine transforms of a
        # Gaussian stay Gaussian.
        mean = self.scaler.inverse_transform(mu.data[0])
        std = sigma.data[0] * self.scaler.std_
        distribution = Gaussian(mean, std)
        levels = self._resolve_levels(levels)
        values = distribution.quantiles(list(levels))
        return QuantileForecast(levels=np.array(levels), values=values, mean=mean)

    def predictive_distribution(self, context: np.ndarray) -> Gaussian:
        """The full per-step Gaussian (used for std-based uncertainty)."""
        self._require_fitted()
        assert self.network is not None
        normalised = self.scaler.transform(np.asarray(context, dtype=np.float64))[None, :]
        with no_grad():
            mu, sigma = self.network(Tensor(normalised))
        return Gaussian(
            self.scaler.inverse_transform(mu.data[0]), sigma.data[0] * self.scaler.std_
        )
