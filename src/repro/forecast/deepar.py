"""DeepAR: autoregressive RNN with a Student-t output head.

Faithful to Salinas et al. (2017) as the paper uses it (Section III-B2):

* an LSTM consumes the lagged target plus calendar covariates,
* a distribution head emits Student-t parameters (the paper's choice —
  "longer tails and a larger variance, allowing it to better handle
  outliers and noise"),
* training maximises per-step likelihood with teacher forcing over
  context + horizon,
* prediction runs ancestral sampling: many trajectories are unrolled by
  feeding sampled values back in, and quantiles are read off the sample
  cloud per step ("sampling methods", whose accuracy grows with sample
  count).

A Gaussian head is also provided for the likelihood ablation bench.
"""

from __future__ import annotations

import numpy as np

from ..distributions import Empirical
from ..nn import LSTM, Linear, Module, Tensor, no_grad
from ..nn import functional as F
from .base import QuantileForecast
from .features import NUM_CALENDAR_FEATURES, calendar_features
from .neural import NeuralForecaster, TrainingConfig

__all__ = ["DeepARForecaster"]

_MIN_DF = 2.0  # keep the Student-t variance finite
_MIN_SCALE = 1e-4


class _DeepARNetwork(Module):
    """LSTM over [lagged value, calendar features] -> distribution params."""

    def __init__(self, hidden_size: int, num_layers: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.lstm = LSTM(1 + NUM_CALENDAR_FEATURES, hidden_size, rng, num_layers=num_layers)
        self.mu_head = Linear(hidden_size, 1, rng)
        self.scale_head = Linear(hidden_size, 1, rng)
        self.df_head = Linear(hidden_size, 1, rng)

    def forward(
        self, inputs: Tensor, state: list[tuple[Tensor, Tensor]] | None = None
    ) -> tuple[Tensor, Tensor, Tensor, list[tuple[Tensor, Tensor]]]:
        hidden, state = self.lstm(inputs, state)
        mu = self.mu_head(hidden)[..., 0]
        scale = self.scale_head(hidden)[..., 0].softplus() + _MIN_SCALE
        df = self.df_head(hidden)[..., 0].softplus() + _MIN_DF
        return mu, scale, df, state


class DeepARForecaster(NeuralForecaster):
    """Probabilistic forecaster that learns a parametric distribution.

    Parameters
    ----------
    num_samples:
        Sample paths drawn at prediction time; quantile accuracy improves
        with more paths (paper Section III-B2).
    likelihood:
        ``"student_t"`` (paper default) or ``"gaussian"`` (ablation).
    """

    def __init__(
        self,
        context_length: int,
        horizon: int,
        hidden_size: int = 32,
        num_layers: int = 2,
        num_samples: int = 100,
        likelihood: str = "student_t",
        config: TrainingConfig | None = None,
    ) -> None:
        super().__init__(context_length, horizon, config)
        if likelihood not in ("student_t", "gaussian"):
            raise ValueError(f"unknown likelihood {likelihood!r}")
        if num_samples < 2:
            raise ValueError("num_samples must be >= 2")
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.num_samples = num_samples
        self.likelihood = likelihood
        self._sample_rng = np.random.default_rng((config.seed if config else 0) + 777)

    def _build(self, rng: np.random.Generator) -> Module:
        return _DeepARNetwork(self.hidden_size, self.num_layers, rng)

    def _inputs(self, lagged: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Stack lagged target with calendar features -> (B, T, 1+F)."""
        features = calendar_features(indices)
        return np.concatenate([lagged[..., None], features], axis=-1)

    def _loss(
        self, context: np.ndarray, horizon: np.ndarray, start_indices: np.ndarray
    ) -> Tensor:
        assert self.network is not None
        full = np.concatenate([context, horizon], axis=1)  # (B, T+H)
        lagged = full[:, :-1]
        targets = full[:, 1:]
        batch, steps = lagged.shape
        indices = start_indices[:, None] + 1 + np.arange(steps)[None, :]
        mu, scale, df, _ = self.network(Tensor(self._inputs(lagged, indices)))
        if self.likelihood == "student_t":
            return F.student_t_nll(mu, scale, df, targets)
        return F.gaussian_nll(mu, scale, targets)

    def predict(
        self,
        context: np.ndarray,
        levels: tuple[float, ...] | None = None,
        start_index: int = 0,
    ) -> QuantileForecast:
        """Empirical quantiles of the sampled trajectories.

        ``levels=None`` serves :attr:`default_levels`; any level in
        (0, 1) is served from the sample cloud.  ``start_index`` is
        *used*: DeepAR conditions on calendar features, so pass the
        context's absolute trace position for phase alignment.
        """
        distribution = self.sample_paths(context, start_index)
        levels = self._resolve_levels(levels)
        values = distribution.quantiles(list(levels))
        mean = distribution.mean()
        return QuantileForecast(levels=np.array(levels), values=values, mean=mean)

    def sample_paths(self, context: np.ndarray, start_index: int = 0) -> Empirical:
        """Draw ``num_samples`` trajectories; returns the per-step cloud.

        Shapes: the returned :class:`Empirical` holds samples of shape
        (num_samples, horizon) in workload units.
        """
        self._require_fitted()
        assert self.network is not None
        context = np.asarray(context, dtype=np.float64)
        if len(context) != self.context_length:
            raise ValueError(
                f"context must have length {self.context_length}, got {len(context)}"
            )
        normalised = self.scaler.transform(context)
        n = self.num_samples

        with no_grad():
            # Warm up on the context once per sample path (batched).
            lagged = np.tile(normalised[:-1], (n, 1))
            indices = start_index + 1 + np.tile(np.arange(len(context) - 1), (n, 1))
            mu, scale, df, state = self.network(Tensor(self._inputs(lagged, indices)))

            # First horizon step is conditioned on the last context value.
            last_value = np.full((n, 1), normalised[-1])
            samples = np.empty((n, self.horizon))
            for h in range(self.horizon):
                step_index = np.full((n, 1), start_index + len(context) + h)
                inputs = self._inputs(last_value, step_index)
                mu, scale, df, state = self.network(Tensor(inputs), state)
                mu_h, scale_h = mu.data[:, 0], scale.data[:, 0]
                if self.likelihood == "student_t":
                    draws = mu_h + scale_h * self._sample_rng.standard_t(df.data[:, 0])
                else:
                    draws = self._sample_rng.normal(mu_h, scale_h)
                samples[:, h] = draws
                last_value = draws[:, None]

        return Empirical(self.scaler.inverse_transform(samples))
