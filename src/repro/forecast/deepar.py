"""DeepAR: autoregressive RNN with a Student-t output head.

Faithful to Salinas et al. (2017) as the paper uses it (Section III-B2):

* an LSTM consumes the lagged target plus calendar covariates,
* a distribution head emits Student-t parameters (the paper's choice —
  "longer tails and a larger variance, allowing it to better handle
  outliers and noise"),
* training maximises per-step likelihood with teacher forcing over
  context + horizon,
* prediction runs ancestral sampling: many trajectories are unrolled by
  feeding sampled values back in, and quantiles are read off the sample
  cloud per step ("sampling methods", whose accuracy grows with sample
  count).

A Gaussian head is also provided for the likelihood ablation bench.
"""

from __future__ import annotations

import numpy as np

from ..distributions import Empirical
from ..nn import LSTM, Linear, Module, Tensor, fastgrad, fastpath, no_grad
from ..nn import functional as F
from .base import QuantileForecast
from .features import NUM_CALENDAR_FEATURES, calendar_features, calendar_window
from .neural import NeuralForecaster, TrainingConfig

__all__ = ["DeepARForecaster"]

_MIN_DF = 2.0  # keep the Student-t variance finite
_MIN_SCALE = 1e-4

_accumulate = fastgrad.accumulate_grad


class _DeepARNetwork(Module):
    """LSTM over [lagged value, calendar features] -> distribution params."""

    def __init__(self, hidden_size: int, num_layers: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.lstm = LSTM(1 + NUM_CALENDAR_FEATURES, hidden_size, rng, num_layers=num_layers)
        self.mu_head = Linear(hidden_size, 1, rng)
        self.scale_head = Linear(hidden_size, 1, rng)
        self.df_head = Linear(hidden_size, 1, rng)

    def forward(
        self, inputs: Tensor, state: list[tuple[Tensor, Tensor]] | None = None
    ) -> tuple[Tensor, Tensor, Tensor, list[tuple[Tensor, Tensor]]]:
        hidden, state = self.lstm(inputs, state)
        mu = self.mu_head(hidden)[..., 0]
        scale = self.scale_head(hidden)[..., 0].softplus() + _MIN_SCALE
        df = self.df_head(hidden)[..., 0].softplus() + _MIN_DF
        return mu, scale, df, state

    def _heads(self, hidden: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Distribution parameters from a raw hidden state (..., H)."""
        mu = self.mu_head.fast_forward(hidden)[..., 0]
        scale = fastpath.softplus(self.scale_head.fast_forward(hidden)[..., 0]) + _MIN_SCALE
        df = fastpath.softplus(self.df_head.fast_forward(hidden)[..., 0]) + _MIN_DF
        return mu, scale, df

    def fast_forward(
        self,
        inputs: np.ndarray,
        state: list[tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
        """Tape-free forward over a full sequence on raw arrays."""
        hidden, state = self.lstm.fast_forward(inputs, state)
        mu, scale, df = self._heads(hidden)
        return mu, scale, df, state

    def fast_step(
        self, x: np.ndarray, state: list[tuple[np.ndarray, np.ndarray]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
        """Advance one timestep: x is (batch, features), no sequence axis."""
        top, state = self.lstm.fast_step(x, state)
        mu, scale, df = self._heads(top)
        return mu, scale, df, state


class DeepARForecaster(NeuralForecaster):
    """Probabilistic forecaster that learns a parametric distribution.

    Parameters
    ----------
    num_samples:
        Sample paths drawn at prediction time; quantile accuracy improves
        with more paths (paper Section III-B2).
    likelihood:
        ``"student_t"`` (paper default) or ``"gaussian"`` (ablation).
    """

    def __init__(
        self,
        context_length: int,
        horizon: int,
        hidden_size: int = 32,
        num_layers: int = 2,
        num_samples: int = 100,
        likelihood: str = "student_t",
        config: TrainingConfig | None = None,
    ) -> None:
        super().__init__(context_length, horizon, config)
        if likelihood not in ("student_t", "gaussian"):
            raise ValueError(f"unknown likelihood {likelihood!r}")
        if num_samples < 2:
            raise ValueError("num_samples must be >= 2")
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.num_samples = num_samples
        self.likelihood = likelihood
        self._sample_rng = np.random.default_rng((config.seed if config else 0) + 777)

    def _build(self, rng: np.random.Generator) -> Module:
        return _DeepARNetwork(self.hidden_size, self.num_layers, rng)

    def _inputs(self, lagged: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Stack lagged target with calendar features -> (B, T, 1+F)."""
        features = calendar_features(indices)
        return np.concatenate([lagged[..., None], features], axis=-1)

    def _loss(
        self, context: np.ndarray, horizon: np.ndarray, start_indices: np.ndarray
    ) -> Tensor:
        assert self.network is not None
        full = np.concatenate([context, horizon], axis=1)  # (B, T+H)
        lagged = full[:, :-1]
        targets = full[:, 1:]
        batch, steps = lagged.shape
        indices = start_indices[:, None] + 1 + np.arange(steps)[None, :]
        mu, scale, df, _ = self.network(Tensor(self._inputs(lagged, indices)))
        if self.likelihood == "student_t":
            return F.student_t_nll(mu, scale, df, targets)
        return F.gaussian_nll(mu, scale, targets)

    def _supports_fastgrad(self) -> bool:
        return True

    def _fastgrad_loss_backward(
        self, context: np.ndarray, horizon: np.ndarray, start_indices: np.ndarray
    ) -> float:
        """Analytic teacher-forced loss + backward (no autograd tape).

        One batched scan over ``(batch, seq)``: a cached-activations
        LSTM forward, dense heads on the flattened hidden sequence, the
        closed-form NLL gradient, then fused BPTT
        (:func:`repro.nn.fastgrad.lstm_backward`).  Gradients are
        accumulated straight into ``param.grad`` so the surrounding
        clip/Adam/early-stopping loop is unchanged.
        """
        assert self.network is not None
        net = self.network
        full = np.concatenate([context, horizon], axis=1)  # (B, T+H)
        lagged = full[:, :-1]
        targets = full[:, 1:]
        batch, steps = lagged.shape
        indices = start_indices[:, None] + 1 + np.arange(steps)[None, :]
        inputs = self._inputs(lagged, indices)

        hs = self.hidden_size
        hidden, caches = fastgrad.lstm_forward_train(
            inputs, net.lstm._layer_params(), hs
        )
        flat = hidden.reshape(-1, hs)
        mu = (flat @ net.mu_head.weight.data + net.mu_head.bias.data)[:, 0]
        scale_pre = flat @ net.scale_head.weight.data + net.scale_head.bias.data
        scale = fastpath.softplus(scale_pre[:, 0]) + _MIN_SCALE
        target_flat = targets.reshape(-1)

        if self.likelihood == "student_t":
            df_pre = flat @ net.df_head.weight.data + net.df_head.bias.data
            df = fastpath.softplus(df_pre[:, 0]) + _MIN_DF
            loss, dmu, dscale, ddf = fastgrad.student_t_nll_grads(
                mu, scale, df, target_flat
            )
            ddf_pre = fastgrad.softplus_backward(df_pre[:, 0], ddf)
        else:
            loss, dmu, dscale = fastgrad.gaussian_nll_grads(mu, scale, target_flat)
            df_pre = None
            ddf_pre = None
        dscale_pre = fastgrad.softplus_backward(scale_pre[:, 0], dscale)

        dhidden, dw_mu, db_mu = fastgrad.linear_backward(
            flat, net.mu_head.weight.data, dmu[:, None]
        )
        _accumulate(net.mu_head.weight, dw_mu)
        _accumulate(net.mu_head.bias, db_mu)
        dh_scale, dw_scale, db_scale = fastgrad.linear_backward(
            flat, net.scale_head.weight.data, dscale_pre[:, None]
        )
        dhidden += dh_scale
        _accumulate(net.scale_head.weight, dw_scale)
        _accumulate(net.scale_head.bias, db_scale)
        if ddf_pre is not None:
            dh_df, dw_df, db_df = fastgrad.linear_backward(
                flat, net.df_head.weight.data, ddf_pre[:, None]
            )
            dhidden += dh_df
            _accumulate(net.df_head.weight, dw_df)
            _accumulate(net.df_head.bias, db_df)

        lstm_grads, _, _ = fastgrad.lstm_backward(
            dhidden.reshape(batch, steps, hs), caches, hs
        )
        for cell, (dw_ih, dw_hh, db) in zip(net.lstm._cells, lstm_grads):
            _accumulate(cell.w_ih, dw_ih)
            _accumulate(cell.w_hh, dw_hh)
            _accumulate(cell.bias, db)
        return loss

    def predict(
        self,
        context: np.ndarray,
        levels: tuple[float, ...] | None = None,
        start_index: int = 0,
    ) -> QuantileForecast:
        """Empirical quantiles of the sampled trajectories.

        ``levels=None`` serves :attr:`default_levels`; any level in
        (0, 1) is served from the sample cloud.  ``start_index`` is
        *used*: DeepAR conditions on calendar features, so pass the
        context's absolute trace position for phase alignment.
        """
        distribution = self.sample_paths(context, start_index)
        levels = self._resolve_levels(levels)
        values = distribution.quantiles(list(levels))
        mean = distribution.mean()
        return QuantileForecast(levels=np.array(levels), values=values, mean=mean)

    def reseed_sampler(self, seed: object) -> None:
        """Reset the ancestral-sampling RNG to a deterministic seed.

        The parallel backtest path calls this before every decision
        window so that sample draws depend only on (seed, window), never
        on how many windows some worker processed before — which is what
        makes ``n_jobs=1`` and ``n_jobs=4`` bit-identical.
        """
        self._sample_rng = np.random.default_rng(seed)

    def sample_paths(self, context: np.ndarray, start_index: int = 0) -> Empirical:
        """Draw ``num_samples`` trajectories; returns the per-step cloud.

        Shapes: the returned :class:`Empirical` holds samples of shape
        (num_samples, horizon) in workload units.

        The warm-up over the context runs once at batch 1 (every sample
        path conditions on the same observed context), and the resulting
        LSTM state is tiled across the ``num_samples`` trajectories.
        Each horizon step then advances all trajectories through the
        tape-free kernels of :mod:`repro.nn.fastpath` in one fused call
        per layer; calendar features are read from the cached
        per-(start_index, horizon) matrix.  With the fast path disabled
        (:class:`~repro.nn.fastpath.use_fast_path`) the same algorithm
        runs through the Tensor tape path — the parity suite asserts
        both give identical samples for the same seed.
        """
        self._require_fitted()
        assert self.network is not None
        context = np.asarray(context, dtype=np.float64)
        if len(context) != self.context_length:
            raise ValueError(
                f"context must have length {self.context_length}, got {len(context)}"
            )
        normalised = self.scaler.transform(context)
        with no_grad():
            if fastpath.fast_path_enabled():
                samples = self._sample_fast(normalised, start_index)
            else:
                samples = self._sample_tape(normalised, start_index)
        return Empirical(self.scaler.inverse_transform(samples))

    def _warmup_inputs(self, normalised: np.ndarray, start_index: int) -> np.ndarray:
        """(1, T-1, 1+F) warm-up inputs: lagged context + cached calendar."""
        features = calendar_window(start_index + 1, len(normalised) - 1)
        return np.concatenate([normalised[:-1, None], features], axis=-1)[None, :, :]

    def _draw(self, mu: np.ndarray, scale: np.ndarray, df: np.ndarray) -> np.ndarray:
        """One ancestral-sampling draw per trajectory."""
        if self.likelihood == "student_t":
            return mu + scale * self._sample_rng.standard_t(df)
        return self._sample_rng.normal(mu, scale)

    def _sample_fast(self, normalised: np.ndarray, start_index: int) -> np.ndarray:
        """Vectorized sampling on raw-numpy kernels (the production path).

        Runs at :attr:`inference_dtype`: float64 (default) is
        bitwise-identical to the tape mirror; float32 casts the weights
        once and runs the LSTM scan and heads in single precision, with
        the RNG draws (always float64 from numpy's Generator) rounded
        into the float32 sample buffer.
        """
        assert self.network is not None
        net = self.network
        n = self.num_samples
        hs = self.hidden_size
        work = getattr(self, "inference_dtype", None) or np.dtype(np.float64)
        cast = None if work == np.dtype(np.float64) else work
        # Warm up at batch 1 — the context is shared by every trajectory —
        # through the LSTM only (the head outputs are discarded anyway).
        _, state = net.lstm.fast_forward(
            self._warmup_inputs(normalised, start_index), dtype=cast
        )
        # Tile the (batch 1) warm-up state across all trajectories.
        state = [(np.repeat(h, n, axis=0), np.repeat(c, n, axis=0)) for h, c in state]

        # The horizon loop runs hot: prepare the gate-permuted weights
        # once (bitwise-neutral, see fastpath.prepare_lstm_params) and
        # keep weights/head arrays in locals.
        prepared = fastpath.prepare_lstm_params(net.lstm._layer_params(), hs, dtype=cast)
        cell = fastpath.lstm_cell_permuted
        w_mu, b_mu = net.mu_head.weight.data, net.mu_head.bias.data
        w_scale, b_scale = net.scale_head.weight.data, net.scale_head.bias.data
        w_df, b_df = net.df_head.weight.data, net.df_head.bias.data
        if cast is not None:
            w_mu, b_mu = w_mu.astype(work), b_mu.astype(work)
            w_scale, b_scale = w_scale.astype(work), b_scale.astype(work)
            w_df, b_df = w_df.astype(work), b_df.astype(work)
        softplus = fastpath.softplus

        horizon_features = calendar_window(
            start_index + self.context_length, self.horizon
        )
        if cast is not None:
            # .astype copies — the per-(start, horizon) cache stays float64.
            horizon_features = horizon_features.astype(work)
        step_inputs = np.empty((n, 1 + NUM_CALENDAR_FEATURES), dtype=work)
        samples = np.empty((n, self.horizon), dtype=work)
        # First horizon step is conditioned on the last context value.
        last = np.full(n, normalised[-1], dtype=work)
        for h in range(self.horizon):
            step_inputs[:, 0] = last
            step_inputs[:, 1:] = horizon_features[h]
            top = step_inputs
            for layer, (w_ih, w_hh, bias) in enumerate(prepared):
                h_prev, c_prev = state[layer]
                h_new, c_new = cell(top, h_prev, c_prev, w_ih, w_hh, bias, hs)
                state[layer] = (h_new, c_new)
                top = h_new
            mu = (top @ w_mu + b_mu)[:, 0]
            scale = softplus((top @ w_scale + b_scale)[:, 0]) + _MIN_SCALE
            df = softplus((top @ w_df + b_df)[:, 0]) + _MIN_DF
            draws = self._draw(mu, scale, df)
            samples[:, h] = draws
            # Feed back the *stored* value so the float32 path conditions
            # on exactly what it emitted; in float64 the stored column
            # equals ``draws`` bit for bit.
            last = samples[:, h]
        return samples

    def _sample_tape(self, normalised: np.ndarray, start_index: int) -> np.ndarray:
        """The same algorithm through the Tensor tape path (parity reference).

        Every matmul here has the same operand shapes as the fast path
        (warm-up at batch 1, per-step heads on the squeezed (n, H)
        hidden), so both paths execute identical BLAS calls and the
        sampled trajectories match bit for bit given the same RNG seed.
        """
        assert self.network is not None
        n = self.num_samples
        net = self.network
        _, state = net.lstm(Tensor(self._warmup_inputs(normalised, start_index)))
        state = [
            (Tensor(np.repeat(h.data, n, axis=0)), Tensor(np.repeat(c.data, n, axis=0)))
            for h, c in state
        ]

        horizon_features = calendar_window(
            start_index + self.context_length, self.horizon
        )
        step_inputs = np.empty((n, 1, 1 + NUM_CALENDAR_FEATURES))
        samples = np.empty((n, self.horizon))
        last = np.full(n, normalised[-1])
        for h in range(self.horizon):
            step_inputs[:, 0, 0] = last
            step_inputs[:, 0, 1:] = horizon_features[h]
            hidden, state = net.lstm(Tensor(step_inputs), state)
            top = hidden[:, 0, :]
            mu = net.mu_head(top)[..., 0]
            scale = net.scale_head(top)[..., 0].softplus() + _MIN_SCALE
            df = net.df_head(top)[..., 0].softplus() + _MIN_DF
            draws = self._draw(mu.data, scale.data, df.data)
            samples[:, h] = draws
            last = draws
        return samples
