"""Calendar covariates for the neural forecasters.

Workload traces carry strong daily/weekly cycles; DeepAR and TFT receive
them as known future inputs (sin/cos of time-of-day and day-of-week),
which is how the reference implementations condition multi-horizon
forecasts on the calendar.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..traces.synthetic import STEPS_PER_DAY, STEPS_PER_WEEK

__all__ = ["calendar_features", "calendar_window", "NUM_CALENDAR_FEATURES"]

NUM_CALENDAR_FEATURES = 4


def calendar_features(indices: np.ndarray) -> np.ndarray:
    """Sin/cos encodings of daily and weekly phase.

    Parameters
    ----------
    indices:
        Absolute 10-minute step indices, any shape.

    Returns
    -------
    Array of shape (*indices.shape, 4):
    [sin_day, cos_day, sin_week, cos_week].
    """
    indices = np.asarray(indices, dtype=np.float64)
    day_phase = 2.0 * np.pi * (indices % STEPS_PER_DAY) / STEPS_PER_DAY
    week_phase = 2.0 * np.pi * (indices % STEPS_PER_WEEK) / STEPS_PER_WEEK
    return np.stack(
        [np.sin(day_phase), np.cos(day_phase), np.sin(week_phase), np.cos(week_phase)],
        axis=-1,
    )


@lru_cache(maxsize=512)
def calendar_window(start_index: int, length: int) -> np.ndarray:
    """Cached feature block for ``length`` consecutive steps from ``start_index``.

    Rolling-origin evaluation asks for the same (start, horizon) feature
    matrix for every sample path and often for repeated windows; this
    memoises the trig work.  The returned array is marked read-only
    because it is shared between callers — copy before mutating.
    """
    features = calendar_features(np.arange(start_index, start_index + length))
    features.setflags(write=False)
    return features
