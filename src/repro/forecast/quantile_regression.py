"""Direct quantile-grid forecasters: linear quantile regression and a
grid-output MLP.

Section III-B2 names quantile regression as the classical technique for
quantile workload forecasting, and notes that the same architecture can
serve either methodology: "an MLP can be trained to output distribution
parameters or predict specific quantiles".  These two models complete
that picture:

* :class:`QuantileRegressionForecaster` — a linear map from the context
  window to a (horizon x quantile) grid, trained with the pinball loss.
  The linear-model analogue of TFT's output stage.
* :class:`MLPQuantileForecaster` — the same hidden architecture as the
  parametric :class:`~repro.forecast.mlp.MLPForecaster`, but with a
  quantile-grid head and pinball loss, enabling a like-for-like
  parametric-vs-grid ablation (``benchmarks/test_ablation_mlp_heads.py``).
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor, no_grad
from ..nn import functional as F
from .base import DEFAULT_QUANTILE_LEVELS, QuantileForecast
from .neural import NeuralForecaster, TrainingConfig

__all__ = ["QuantileRegressionForecaster", "MLPQuantileForecaster"]


class _GridHeadMixin:
    """Shared prediction path for grid-output models on the nn substrate."""

    def _predict_grid(self, context: np.ndarray, start_index: int) -> np.ndarray:
        """Normalised context -> de-normalised (num_levels, horizon) grid."""
        self._require_fitted()
        assert self.network is not None
        context = np.asarray(context, dtype=np.float64)
        if len(context) != self.context_length:
            raise ValueError(
                f"context must have length {self.context_length}, got {len(context)}"
            )
        normalised = self.scaler.transform(context)[None, :]
        with no_grad():
            raw = self.network(Tensor(normalised)).data[0]  # (H, Q)
        return self.scaler.inverse_transform(raw.T)

    def _grid_forecast(
        self, context: np.ndarray, levels: tuple[float, ...] | None, start_index: int
    ) -> QuantileForecast:
        grid = self._predict_grid(context, start_index)
        full = QuantileForecast(
            levels=np.array(self.quantile_levels), values=grid
        ).sorted_monotone()
        if levels is None:
            return full
        levels = tuple(sorted(levels))
        values = np.stack([full.at(tau) for tau in levels])
        return QuantileForecast(levels=np.array(levels), values=values, mean=full.point)

    def _check_levels(self, quantile_levels: tuple[float, ...]) -> tuple[float, ...]:
        levels = tuple(sorted(quantile_levels))
        if not levels or any(not 0.0 < tau < 1.0 for tau in levels):
            raise ValueError("quantile levels must lie in (0, 1)")
        if len(set(levels)) != len(levels):
            raise ValueError("duplicate quantile levels")
        return levels


class _LinearGridNetwork(Module):
    """One affine map: context -> horizon x quantile grid."""

    def __init__(
        self, context_length: int, horizon: int, num_levels: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.horizon = horizon
        self.num_levels = num_levels
        self.head = Linear(context_length, horizon * num_levels, rng)

    def forward(self, context: Tensor) -> Tensor:
        out = self.head(context)
        return out.reshape(out.shape[0], self.horizon, self.num_levels)


class QuantileRegressionForecaster(_GridHeadMixin, NeuralForecaster):
    """Linear quantile regression over the context window.

    Minimising the pinball loss of a linear model is the textbook
    quantile-regression estimator (Koenker); optimisation here uses the
    shared Adam loop rather than an LP, which reaches the same optimum
    for this convex problem and keeps one training path for all models.
    """

    def __init__(
        self,
        context_length: int,
        horizon: int,
        quantile_levels: tuple[float, ...] = DEFAULT_QUANTILE_LEVELS,
        config: TrainingConfig | None = None,
    ) -> None:
        super().__init__(context_length, horizon, config)
        self.quantile_levels = self._check_levels(quantile_levels)
        self.default_levels = self.quantile_levels

    def _build(self, rng: np.random.Generator) -> Module:
        return _LinearGridNetwork(
            self.context_length, self.horizon, len(self.quantile_levels), rng
        )

    def _loss(
        self, context: np.ndarray, horizon: np.ndarray, start_indices: np.ndarray
    ) -> Tensor:
        assert self.network is not None
        predictions = self.network(Tensor(context))
        return F.quantile_loss(predictions, horizon, list(self.quantile_levels))

    def predict(
        self,
        context: np.ndarray,
        levels: tuple[float, ...] | None = None,
        start_index: int = 0,
    ) -> QuantileForecast:
        return self._grid_forecast(context, levels, start_index)


class _MLPGridNetwork(Module):
    """The parametric MLP's body with a quantile-grid head."""

    def __init__(
        self,
        context_length: int,
        horizon: int,
        num_levels: int,
        hidden_size: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.horizon = horizon
        self.num_levels = num_levels
        self.fc1 = Linear(context_length, hidden_size, rng)
        self.fc2 = Linear(hidden_size, hidden_size, rng)
        self.head = Linear(hidden_size, horizon * num_levels, rng)

    def forward(self, context: Tensor) -> Tensor:
        hidden = self.fc2(self.fc1(context).relu()).relu()
        out = self.head(hidden)
        return out.reshape(out.shape[0], self.horizon, self.num_levels)


class MLPQuantileForecaster(_GridHeadMixin, NeuralForecaster):
    """Grid-output twin of the parametric :class:`MLPForecaster`.

    Identical body (two hidden ReLU layers), different head and loss —
    the cleanest possible test of the paper's parametric-vs-grid
    methodology comparison at fixed capacity.
    """

    def __init__(
        self,
        context_length: int,
        horizon: int,
        quantile_levels: tuple[float, ...] = DEFAULT_QUANTILE_LEVELS,
        hidden_size: int = 64,
        config: TrainingConfig | None = None,
    ) -> None:
        super().__init__(context_length, horizon, config)
        self.quantile_levels = self._check_levels(quantile_levels)
        self.default_levels = self.quantile_levels
        self.hidden_size = hidden_size

    def _build(self, rng: np.random.Generator) -> Module:
        return _MLPGridNetwork(
            self.context_length,
            self.horizon,
            len(self.quantile_levels),
            self.hidden_size,
            rng,
        )

    def _loss(
        self, context: np.ndarray, horizon: np.ndarray, start_indices: np.ndarray
    ) -> Tensor:
        assert self.network is not None
        predictions = self.network(Tensor(context))
        return F.quantile_loss(predictions, horizon, list(self.quantile_levels))

    def predict(
        self,
        context: np.ndarray,
        levels: tuple[float, ...] | None = None,
        start_index: int = 0,
    ) -> QuantileForecast:
        return self._grid_forecast(context, levels, start_index)
