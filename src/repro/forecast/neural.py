"""Shared scaffolding for the neural forecasters (MLP, DeepAR, TFT).

Centralises what all three have in common — input normalization fitted on
training data, windowed minibatch training with Adam at the paper's
lr = 1e-3, gradient clipping, and early stopping on a chronological
validation split — so each model file contains only its architecture and
loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

import time

from ..nn import Adam, DataLoader, Module, Tensor, WindowDataset, clip_grad_norm, no_grad
from ..nn.serialization import load_state, save_state
from ..obs import get_registry
from ..traces.dataset import StandardScaler
from .base import Forecaster

__all__ = ["TrainingConfig", "NeuralForecaster"]


@dataclass
class TrainingConfig:
    """Hyperparameters of the shared training loop.

    The defaults are sized for the benchmark harness (minutes, not
    hours); the paper's lr = 1e-3 is kept.
    """

    epochs: int = 20
    batch_size: int = 32
    learning_rate: float = 1e-3
    grad_clip: float = 10.0
    window_stride: int = 1
    validation_fraction: float = 0.15
    patience: int = 5  # early-stopping patience in epochs; 0 disables
    seed: int = 0
    # Train through the analytic fused kernels of repro.nn.fastgrad when
    # the model supports them (DeepAR, MLP).  False pins the autograd
    # tape — the parity oracle the fast path is verified against.
    train_fast_path: bool = True

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not 0.0 <= self.validation_fraction < 0.5:
            raise ValueError("validation_fraction must be in [0, 0.5)")


class NeuralForecaster(Forecaster):
    """Base class: subclasses provide the network and a loss function.

    Subclass contract
    -----------------
    * ``_build(rng)`` -> :class:`Module` — construct the network.
    * ``_loss(batch_context, batch_horizon, batch_start_indices)`` ->
      scalar Tensor — one minibatch's training loss.  Inputs are already
      normalised.
    * ``predict`` — subclass-specific; use :attr:`scaler` to map in/out.
    """

    def __init__(self, context_length: int, horizon: int, config: TrainingConfig | None = None):
        if context_length < 1 or horizon < 1:
            raise ValueError("context_length and horizon must be >= 1")
        self.context_length = context_length
        self.horizon = horizon
        self.config = config if config is not None else TrainingConfig()
        self.scaler = StandardScaler()
        self.network: Module | None = None
        self.history: list[dict] = []
        #: completed ``fit()`` calls (cold or warm) — warm refits derive
        #: their shuffling seed from it so successive refits are
        #: deterministic yet distinct from the original cold fit.
        self.fits_completed = 0
        # Precision of the tape-free inference kernels.  float64 (the
        # default) is bitwise-identical to the tape; float32 trades a
        # documented, gate-checked accuracy delta for speed (docs/nn.md).
        self.inference_dtype: np.dtype = np.dtype(np.float64)

    def set_inference_dtype(self, dtype: "np.dtype | type | str") -> "NeuralForecaster":
        """Select the inference precision (``float64`` or ``float32``).

        float32 applies to the raw-kernel inference path (DeepAR's
        ancestral sampling); weights stay float64 and are cast once per
        predict, so training and checkpoints are unaffected.  Returns
        ``self`` for chaining.
        """
        resolved = np.dtype(dtype)
        if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(
                f"inference dtype must be float32 or float64, got {resolved}"
            )
        self.inference_dtype = resolved
        return self

    # -- subclass hooks -------------------------------------------------
    def _build(self, rng: np.random.Generator) -> Module:
        raise NotImplementedError

    def _loss(
        self, context: np.ndarray, horizon: np.ndarray, start_indices: np.ndarray
    ) -> Tensor:
        raise NotImplementedError

    def _supports_fastgrad(self) -> bool:
        """Whether this model has an analytic fast training path.

        Subclasses that implement :meth:`_fastgrad_loss_backward` (a
        tape-free equivalent of ``_loss(...).backward()``) return True;
        the default keeps the autograd tape.  All built-in forecasters
        (MLP, DeepAR, TFT) opt in; the tape remains the parity oracle.
        """
        return False

    def _fastgrad_loss_backward(
        self, context: np.ndarray, horizon: np.ndarray, start_indices: np.ndarray
    ) -> float:
        """Compute one minibatch's loss and accumulate ``param.grad``
        analytically (no tape).  Returns the loss value."""
        raise NotImplementedError

    # -- shared training loop -------------------------------------------
    def fit(
        self,
        series: "np.ndarray | list[np.ndarray]",
        warm_start: bool = False,
        epochs: "int | None" = None,
        start_index: int = 0,
    ) -> "NeuralForecaster":
        """Train on one series, or several (Eq. 2 sums the loss over all
        target series).  Multiple series are assumed to be phase-aligned:
        each is taken to start at absolute time index ``start_index``
        (default 0) so calendar features line up.

        Parameters
        ----------
        warm_start:
            Continue training the already-fitted network instead of
            rebuilding it: the trained weights *and* the fitted scaler
            are reused, so a drift refit starts from all learned state
            rather than from scratch.  Ignored (a cold fit happens) when
            the forecaster has never been fitted.
        epochs:
            Override ``config.epochs`` for this call only — warm refits
            typically need far fewer epochs than a cold fit.
        start_index:
            Absolute time index of the first sample of each series;
            models with calendar features use it to phase-align a refit
            on a mid-trace history window.
        """
        if isinstance(series, (list, tuple)):
            series_list = [np.asarray(s, dtype=np.float64) for s in series]
        else:
            series_list = [np.asarray(series, dtype=np.float64)]
        window = self.context_length + self.horizon
        for s in series_list:
            if len(s) < window + 1:
                raise ValueError(
                    f"series of length {len(s)} too short for "
                    f"context+horizon={window}"
                )
        warm = bool(warm_start and self.network is not None and self.scaler.fitted)
        # Warm refits keep determinism but must not replay the cold
        # fit's exact shuffling order — otherwise a refit on identical
        # data is a bit-for-bit rerun instead of continued training.
        seed = self.config.seed + (self.fits_completed if warm else 0)
        rng = np.random.default_rng(seed)
        if not warm:
            self.network = self._build(rng)
            self.scaler.fit(np.concatenate(series_list))
        normalised = [self.scaler.transform(s) for s in series_list]

        val_lens = [int(len(s) * self.config.validation_fraction) for s in series_list]
        use_validation = self.config.patience > 0 and all(v >= window for v in val_lens)
        if use_validation:
            train_parts = [n[:-v] for n, v in zip(normalised, val_lens)]
            # validation windows overlap the train/val boundary so the
            # split costs no usable windows
            val_parts = [
                n[-(v + window - 1) :] for n, v in zip(normalised, val_lens)
            ]
            val_offsets = [
                start_index + len(s) - len(vp)
                for s, vp in zip(series_list, val_parts)
            ]
        else:
            train_parts, val_parts, val_offsets = normalised, None, []

        dataset = WindowDataset(
            train_parts,
            self.context_length,
            self.horizon,
            stride=self.config.window_stride,
            start_offsets=[start_index] * len(train_parts),
        )
        loader = DataLoader(
            dataset, self.config.batch_size, shuffle=True, rng=rng, yield_positions=True
        )
        optimizer = Adam(self.network.parameters(), lr=self.config.learning_rate)

        metrics = get_registry()
        model = type(self).__name__
        best_val = np.inf
        best_state: dict[str, np.ndarray] | None = None
        bad_epochs = 0
        # Warm refits *append* to the training history: cumulative
        # provenance is what distinguishes an online refit from a cold
        # fit when a checkpointed model's lineage is audited.
        if not warm:
            self.history = []
        mode = "warm" if warm else "cold"
        epoch_offset = (self.history[-1]["epoch"] + 1) if self.history else 0
        max_epochs = epochs if epochs is not None else self.config.epochs
        if max_epochs < 1:
            raise ValueError("epochs must be >= 1")
        use_fastgrad = self.config.train_fast_path and self._supports_fastgrad()
        path_label = "fastgrad" if use_fastgrad else "tape"
        batch_seconds = metrics.histogram(
            "forecast.batch_seconds", model=model, path=path_label
        )
        batch_counter = metrics.counter(
            "forecast.fastgrad_batches", model=model, path=path_label
        )
        with metrics.span("forecast/fit", model=model, mode=mode):
            for epoch in range(max_epochs):
                epoch_start = time.perf_counter()
                self.network.train()
                total_loss = 0.0
                batches = 0
                for contexts, horizons, starts in loader:
                    batch_start = time.perf_counter()
                    optimizer.zero_grad()
                    if use_fastgrad:
                        loss_value = self._fastgrad_loss_backward(
                            contexts, horizons, starts
                        )
                    else:
                        loss = self._loss(contexts, horizons, starts)
                        loss.backward()
                        loss_value = loss.item()
                    clip_grad_norm(self.network.parameters(), self.config.grad_clip)
                    optimizer.step()
                    total_loss += loss_value
                    batches += 1
                    batch_seconds.observe(time.perf_counter() - batch_start)
                    batch_counter.inc()
                record = {
                    "epoch": epoch_offset + epoch,
                    "train_loss": total_loss / max(batches, 1),
                    "mode": mode,
                }

                if use_validation:
                    record["val_loss"] = self._validation_loss(val_parts, val_offsets)
                    if record["val_loss"] < best_val - 1e-9:
                        best_val = record["val_loss"]
                        # Copy weights in place after the first improving
                        # epoch — no fresh deep-copy per improvement, and
                        # nothing at all on epochs that don't improve.
                        if best_state is None:
                            best_state = self.network.state_dict()
                        else:
                            for name, param in self.network.named_parameters():
                                np.copyto(best_state[name], param.data)
                        bad_epochs = 0
                    else:
                        bad_epochs += 1
                self.history.append(record)
                metrics.counter("forecast.epochs", model=model).inc()
                metrics.gauge("forecast.train_loss", model=model).set(
                    record["train_loss"]
                )
                if "val_loss" in record:
                    metrics.gauge("forecast.val_loss", model=model).set(
                        record["val_loss"]
                    )
                metrics.histogram("forecast.epoch_seconds", model=model).observe(
                    time.perf_counter() - epoch_start
                )
                if use_validation and bad_epochs >= self.config.patience:
                    break

        # Restore the best weights only if later epochs regressed past
        # them — when the final epoch *is* the best, the network already
        # holds those weights and the copy-back would be a no-op.
        if best_state is not None and bad_epochs > 0:
            self.network.load_state_dict(best_state)
        self.network.eval()
        self._fitted = True
        self.fits_completed += 1
        return self

    # -- persistence -----------------------------------------------------
    def save(self, path: "str | Path") -> None:
        """Persist trained weights and normalization state to ``path`` (.npz).

        Hyperparameters are not stored; reconstruct the forecaster with
        the same constructor arguments, then :meth:`load`.
        """
        self._require_fitted()
        assert self.network is not None
        state = {f"network.{k}": v for k, v in self.network.state_dict().items()}
        state["scaler.mean"] = np.array([self.scaler.mean_])
        state["scaler.std"] = np.array([self.scaler.std_])
        save_state(state, path)

    def load(self, path: "str | Path") -> "NeuralForecaster":
        """Restore weights saved by :meth:`save` into this (same-config)
        forecaster; returns self, ready to predict without retraining."""
        state = load_state(path)
        if self.network is None:
            self.network = self._build(np.random.default_rng(self.config.seed))
        self.network.load_state_dict(
            {
                k[len("network.") :]: v
                for k, v in state.items()
                if k.startswith("network.")
            }
        )
        self.network.eval()
        self.scaler.mean_ = float(state["scaler.mean"][0])
        self.scaler.std_ = float(state["scaler.std"][0])
        self.scaler.fitted = True
        self._fitted = True
        return self

    def _validation_loss(
        self, val_parts: list[np.ndarray], val_offsets: list[int]
    ) -> float:
        assert self.network is not None
        self.network.eval()
        dataset = WindowDataset(
            val_parts,
            self.context_length,
            self.horizon,
            stride=1,
            start_offsets=val_offsets,
        )
        loader = DataLoader(
            dataset, self.config.batch_size, shuffle=False, yield_positions=True
        )
        total, batches = 0.0, 0
        # Validation never backpropagates: no_grad() skips tape recording
        # and routes module forwards through the tape-free kernels.
        with no_grad():
            for contexts, horizons, starts in loader:
                total += self._loss(contexts, horizons, starts).item()
                batches += 1
        return total / max(batches, 1)
