"""Probabilistic workload forecasting (paper Section III-B).

Two methodological families are implemented, matching Figure 3:

* parametric-distribution models — :class:`MLPForecaster` (Gaussian) and
  :class:`DeepARForecaster` (Student-t, sampled quantiles);
* quantile-grid models — :class:`TFTForecaster` (pinball loss over a
  pre-specified grid).

Plus the evaluation baselines: :class:`ARIMAForecaster`,
:class:`QB5000Forecaster`, :class:`TFTPointForecaster`, the
:class:`PaddedPointForecaster` enhancement, and naive floors.
"""

from .arima import ARIMAForecaster
from .base import DEFAULT_QUANTILE_LEVELS, Forecaster, PointForecaster, QuantileForecast
from .deepar import DeepARForecaster
from .ensemble import EnsembleForecaster, combine_quantile_forecasts
from .features import NUM_CALENDAR_FEATURES, calendar_features
from .mlp import MLPForecaster
from .naive import PersistenceForecaster, SeasonalNaiveForecaster
from .neural import NeuralForecaster, TrainingConfig
from .point import MedianPointAdapter, PaddedPointForecaster, TFTPointForecaster
from .qb5000 import KernelRegressionForecaster, LinearRegressionForecaster, QB5000Forecaster
from .quantile_regression import MLPQuantileForecaster, QuantileRegressionForecaster
from .tft import TFTForecaster

__all__ = [
    "QuantileForecast",
    "Forecaster",
    "PointForecaster",
    "DEFAULT_QUANTILE_LEVELS",
    "TrainingConfig",
    "NeuralForecaster",
    "ARIMAForecaster",
    "MLPForecaster",
    "DeepARForecaster",
    "TFTForecaster",
    "QB5000Forecaster",
    "LinearRegressionForecaster",
    "KernelRegressionForecaster",
    "QuantileRegressionForecaster",
    "MLPQuantileForecaster",
    "EnsembleForecaster",
    "combine_quantile_forecasts",
    "TFTPointForecaster",
    "MedianPointAdapter",
    "PaddedPointForecaster",
    "SeasonalNaiveForecaster",
    "PersistenceForecaster",
    "calendar_features",
    "NUM_CALENDAR_FEATURES",
]
