"""Hyperparameter search (the paper's Optuna step, offline)."""

from .grid import GridResult, grid_search
from .study import MedianPruner, Study, Trial, TrialPruned

__all__ = ["Study", "Trial", "TrialPruned", "MedianPruner", "grid_search", "GridResult"]
