"""A small hyperparameter-optimization framework (Optuna substitute).

The paper tunes each forecaster's hyperparameters once with Optuna and
freezes them across horizons (Section IV-A2).  This module provides the
same workflow offline: define a search space per trial via the
``trial.suggest_*`` API, run an objective under a budget, keep the best.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["Trial", "TrialPruned", "Study"]


class TrialPruned(Exception):
    """Raised inside an objective to abandon an unpromising trial."""


@dataclass
class Trial:
    """One parameter sample; records every suggestion it hands out."""

    number: int
    _rng: np.random.Generator
    params: dict[str, object] = field(default_factory=dict)
    intermediate: list[float] = field(default_factory=list)
    _pruner: "MedianPruner | None" = None

    def suggest_float(
        self, name: str, low: float, high: float, log: bool = False
    ) -> float:
        """Sample a float uniformly (or log-uniformly) from [low, high]."""
        if low >= high:
            raise ValueError(f"low must be < high for {name}")
        if log:
            if low <= 0:
                raise ValueError(f"log scale requires positive bounds for {name}")
            value = float(math.exp(self._rng.uniform(math.log(low), math.log(high))))
        else:
            value = float(self._rng.uniform(low, high))
        self.params[name] = value
        return value

    def suggest_int(self, name: str, low: int, high: int) -> int:
        """Sample an integer uniformly from [low, high] inclusive."""
        if low > high:
            raise ValueError(f"low must be <= high for {name}")
        value = int(self._rng.integers(low, high + 1))
        self.params[name] = value
        return value

    def suggest_categorical(self, name: str, choices: list) -> object:
        """Sample one of ``choices`` uniformly."""
        if not choices:
            raise ValueError(f"choices must be non-empty for {name}")
        value = choices[int(self._rng.integers(len(choices)))]
        self.params[name] = value
        return value

    def report(self, value: float, step: int) -> None:
        """Report an intermediate objective value (enables pruning)."""
        self.intermediate.append(float(value))
        if self._pruner is not None and self._pruner.should_prune(self):
            raise TrialPruned(f"trial {self.number} pruned at step {step}")


class MedianPruner:
    """Prune a trial whose intermediate value is worse than the median of
    completed trials at the same step (after ``warmup_trials``)."""

    def __init__(self, warmup_trials: int = 4) -> None:
        self.warmup_trials = warmup_trials
        self._histories: list[list[float]] = []

    def register(self, history: list[float]) -> None:
        self._histories.append(list(history))

    def should_prune(self, trial: Trial) -> bool:
        step = len(trial.intermediate) - 1
        peers = [h[step] for h in self._histories if len(h) > step]
        if len(peers) < self.warmup_trials:
            return False
        return trial.intermediate[step] > float(np.median(peers))


@dataclass
class StudyResult:
    number: int
    params: dict[str, object]
    value: float
    pruned: bool = False


class Study:
    """Random-search study minimising an objective.

    Parameters
    ----------
    direction:
        ``"minimize"`` (default) or ``"maximize"``.
    pruner:
        Optional :class:`MedianPruner`; objectives opt in by calling
        ``trial.report``.
    """

    def __init__(
        self,
        direction: str = "minimize",
        seed: int = 0,
        pruner: MedianPruner | None = None,
    ) -> None:
        if direction not in ("minimize", "maximize"):
            raise ValueError(f"unknown direction {direction!r}")
        self.direction = direction
        self.pruner = pruner
        self._rng = np.random.default_rng(seed)
        self.trials: list[StudyResult] = []

    def optimize(self, objective: Callable[[Trial], float], n_trials: int) -> None:
        """Run ``n_trials`` objective evaluations."""
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        for _ in range(n_trials):
            trial = Trial(
                number=len(self.trials),
                _rng=np.random.default_rng(self._rng.integers(2**63)),
                _pruner=self.pruner,
            )
            try:
                value = float(objective(trial))
            except TrialPruned:
                self.trials.append(
                    StudyResult(trial.number, trial.params, float("inf"), pruned=True)
                )
                continue
            if self.pruner is not None:
                self.pruner.register(trial.intermediate)
            self.trials.append(StudyResult(trial.number, trial.params, value))

    @property
    def completed_trials(self) -> list[StudyResult]:
        return [t for t in self.trials if not t.pruned]

    @property
    def best_trial(self) -> StudyResult:
        completed = self.completed_trials
        if not completed:
            raise RuntimeError("no completed trials")
        key = (lambda t: t.value) if self.direction == "minimize" else (lambda t: -t.value)
        return min(completed, key=key)

    @property
    def best_params(self) -> dict[str, object]:
        return self.best_trial.params

    @property
    def best_value(self) -> float:
        return self.best_trial.value
