"""Exhaustive grid search, for small discrete spaces.

Used by the Fig. 11/12 experiments to sweep (tau1, tau2) combinations
and uncertainty thresholds deterministically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

__all__ = ["grid_search", "GridResult"]


@dataclass(frozen=True)
class GridResult:
    """One grid point and its objective value."""

    params: dict[str, object]
    value: float


def grid_search(
    objective: Callable[[dict[str, object]], float],
    space: dict[str, list],
    direction: str = "minimize",
) -> tuple[GridResult, list[GridResult]]:
    """Evaluate every combination in ``space``.

    Returns (best, all_results).  ``space`` maps parameter name to the
    list of values to try; combinations are the Cartesian product in
    insertion order, so results are deterministic.
    """
    if direction not in ("minimize", "maximize"):
        raise ValueError(f"unknown direction {direction!r}")
    if not space:
        raise ValueError("space must not be empty")
    names = list(space)
    results = []
    for combo in itertools.product(*(space[name] for name in names)):
        params = dict(zip(names, combo))
        results.append(GridResult(params=params, value=float(objective(params))))
    key = (lambda r: r.value) if direction == "minimize" else (lambda r: -r.value)
    return min(results, key=key), results
