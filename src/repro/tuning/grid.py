"""Exhaustive grid search, for small discrete spaces.

Used by the Fig. 11/12 experiments to sweep (tau1, tau2) combinations
and uncertainty thresholds deterministically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

__all__ = ["grid_search", "GridResult"]


@dataclass(frozen=True)
class GridResult:
    """One grid point and its objective value."""

    params: dict[str, object]
    value: float


def _evaluate_point(context: dict, combo: tuple) -> float:
    """One grid point; module-level so multiprocessing workers can pickle it."""
    params = dict(zip(context["names"], combo))
    return float(context["objective"](params))


def _evaluate_chunk(context: dict, chunk: list[tuple]) -> list[float]:
    """A contiguous batch of grid points — the parallel task unit."""
    return [_evaluate_point(context, combo) for combo in chunk]


def grid_search(
    objective: Callable[[dict[str, object]], float],
    space: dict[str, list],
    direction: str = "minimize",
    n_jobs: int | None = None,
) -> tuple[GridResult, list[GridResult]]:
    """Evaluate every combination in ``space``.

    Returns (best, all_results).  ``space`` maps parameter name to the
    list of values to try; combinations are the Cartesian product in
    insertion order, so results are deterministic — including under
    ``n_jobs >= 2``, which fans grid points across spawn workers but
    keeps results in product order (ties for best resolve identically,
    and worker telemetry merges back into the ambient registry).  For
    parallel runs ``objective`` must be picklable (a module-level
    function or functools.partial of one, not a lambda or closure).
    """
    if direction not in ("minimize", "maximize"):
        raise ValueError(f"unknown direction {direction!r}")
    if not space:
        raise ValueError("space must not be empty")
    names = list(space)
    combos = list(itertools.product(*(space[name] for name in names)))
    if n_jobs is not None and n_jobs > 1:
        from ..parallel import chunk_evenly, parallel_map

        # One contiguous chunk of combinations per worker; product order
        # is restored by flattening, so results are unchanged.
        chunks = chunk_evenly(combos, n_jobs)
        values = [
            value
            for batch in parallel_map(
                _evaluate_chunk,
                chunks,
                {"objective": objective, "names": names},
                n_jobs=n_jobs,
                serial_threshold=1,
            )
            for value in batch
        ]
    else:
        values = [float(objective(dict(zip(names, combo)))) for combo in combos]
    results = [
        GridResult(params=dict(zip(names, combo)), value=value)
        for combo, value in zip(combos, values)
    ]
    key = (lambda r: r.value) if direction == "minimize" else (lambda r: -r.value)
    return min(results, key=key), results
