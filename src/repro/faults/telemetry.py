"""Telemetry-layer fault injection: corrupt the workload feed.

The runtime's :meth:`~repro.core.runtime.AutoscalingRuntime.observe`
ingests one workload value per interval.  This injector sits between
the (clean) trace and the runtime, applying the schedule's telemetry
faults the way broken metric pipelines actually break:

* ``nan`` — the sample arrives as NaN (collector emitted garbage);
* ``inf`` — an overflowed counter rolls up to infinity;
* ``negative`` — a miscomputed rate goes negative;
* ``drop`` — the sample never arrives (surfaces as NaN to the
  consumer, but is counted separately as a delivery failure);
* ``duplicate`` — a stale repeat of the previous interval's value;
* ``spike`` — the value is multiplied by the event's parameter
  (default x10) — a metrics-pipeline glitch, not real demand.

Injected faults are counted per kind into the ambient registry
(``faults.telemetry{kind=...}``) and on :attr:`injected`.
"""

from __future__ import annotations

import numpy as np

from ..obs import get_registry
from .schedule import FaultSchedule

__all__ = ["TelemetryFaultInjector", "corrupt_series"]


class TelemetryFaultInjector:
    """Applies a schedule's telemetry faults to a stream of observations.

    Feed values in interval order through :meth:`apply`; the injector
    keeps the last *clean* value so ``duplicate`` events can replay it.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule.telemetry
        self.injected: dict[str, int] = {}
        self._last_clean: float | None = None

    def apply(self, value: float, time_index: int) -> float:
        """Corrupt one observation according to the schedule.

        ``time_index`` is the interval index in the schedule's frame.
        Multiple events on the same interval apply in (time, kind)
        order, each transforming the previous result.
        """
        clean = float(value)
        corrupted = clean
        for event in self.schedule.at(time_index):
            corrupted = self._corrupt(corrupted, event.kind, event.parameter)
            self.injected[event.kind] = self.injected.get(event.kind, 0) + 1
            get_registry().counter("faults.telemetry", kind=event.kind).inc()
        self._last_clean = clean
        return corrupted

    def _corrupt(self, value: float, kind: str, param: float) -> float:
        if kind == "nan" or kind == "drop":
            return float("nan")
        if kind == "inf":
            return float("inf")
        if kind == "negative":
            return -(abs(value) + 1.0)
        if kind == "duplicate":
            return self._last_clean if self._last_clean is not None else value
        if kind == "spike":
            return value * param
        raise AssertionError(f"unhandled telemetry fault {kind!r}")

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


def corrupt_series(
    workload: np.ndarray, schedule: FaultSchedule
) -> tuple[np.ndarray, dict[str, int]]:
    """Corrupt a whole workload series; index i gets interval i's faults.

    Returns the corrupted copy (the input is untouched) and the per-kind
    injection counts.
    """
    workload = np.asarray(workload, dtype=np.float64)
    injector = TelemetryFaultInjector(schedule)
    corrupted = np.empty_like(workload)
    for i, value in enumerate(workload):
        corrupted[i] = injector.apply(value, i)
    return corrupted, dict(injector.injected)
