"""Planner-layer fault injection: crashing and deadline-blowing planners.

:class:`FlakyPlanner` wraps any :class:`~repro.core.plan.Planner` and
raises on schedule — an :class:`InjectedPlannerError` for
``planner_error`` events (a forecaster crash: bad weights, a numerical
blow-up, an OOM) and a :class:`PlannerTimeoutError` for
``planner_timeout`` events (the plan missed its decision deadline, so
its output is useless even if it eventually arrives).  Timeouts are
*simulated* by raising rather than sleeping, keeping chaos runs fast
and deterministic.

Planning only happens at decision boundaries (every ``replan_every``
intervals), so a fault scheduled at interval ``t`` **latches**: it
fires on the next planning attempt whose decision interval is at or
after ``t``.  Immediate retries of the same decision hit the same
latched fault — a deterministic crash keeps crashing until the runtime
gives up and degrades — and the fault clears once a *later* decision
begins, so the loop recovers at the next boundary.  Decision intervals
are computed as ``start_index + len(context) - time_offset`` in
schedule-relative terms.
"""

from __future__ import annotations

import numpy as np

from ..core.plan import Planner, ScalingPlan
from ..obs import get_registry
from .schedule import FaultEvent, FaultSchedule

__all__ = ["InjectedPlannerError", "PlannerTimeoutError", "FlakyPlanner"]


class InjectedPlannerError(RuntimeError):
    """A scheduled forecaster/planner crash."""


class PlannerTimeoutError(RuntimeError):
    """A scheduled planning-deadline overrun (simulated, not slept)."""


class FlakyPlanner:
    """Wrap a planner; raise at the schedule's planner-fault intervals.

    Parameters
    ----------
    inner:
        The real planner; its :attr:`name` and plans pass through
        untouched on fault-free decisions.
    schedule:
        Fault schedule (only its planner-layer events matter).
    time_offset:
        Subtracted from the absolute decision index before the schedule
        lookup.  The CLI passes ``len(train)`` so spec times stay
        test-relative, matching the telemetry and cluster layers.
    """

    def __init__(
        self, inner: Planner, schedule: FaultSchedule, time_offset: int = 0
    ) -> None:
        self.inner = inner
        self.schedule = schedule.planner
        self.time_offset = time_offset
        self.faults_injected = 0
        self._pending = sorted(
            self.schedule.events,
            key=lambda e: (e.time_index, e.kind),
            reverse=True,
        )
        self._latched: FaultEvent | None = None
        self._last_decision: int | None = None

    @property
    def name(self) -> str:
        return self.inner.name

    def plan(self, context: np.ndarray, start_index: int = 0) -> ScalingPlan:
        decision_index = start_index + len(context) - self.time_offset
        if decision_index != self._last_decision:
            # A new decision: latch the earliest not-yet-consumed fault
            # scheduled at or before it (later ones wait their turn).
            self._last_decision = decision_index
            self._latched = None
            if self._pending and self._pending[-1].time_index <= decision_index:
                self._latched = self._pending.pop()
        event = self._latched
        if event is not None:
            # A retry of the same decision re-raises the same fault.
            self.faults_injected += 1
            get_registry().counter("faults.planner", kind=event.kind).inc()
            if event.kind == "planner_timeout":
                raise PlannerTimeoutError(
                    f"injected planning-deadline overrun at decision "
                    f"interval {decision_index} "
                    f"(scheduled at {event.time_index})"
                )
            raise InjectedPlannerError(
                f"injected planner crash at decision interval "
                f"{decision_index} (scheduled at {event.time_index})"
            )
        return self.inner.plan(context, start_index=start_index)

    # -- checkpoint/restore ---------------------------------------------
    def state_dict(self) -> dict:
        """The wrapper's mutable fault-consumption state, JSON-safe.

        A restored loop must not re-fire faults the crashed session
        already consumed, so the pending queue, the latched event, and
        the last decision boundary all round-trip.
        """
        def encode(event: FaultEvent) -> list:
            return [int(event.time_index), event.kind, event.param]

        return {
            "faults_injected": int(self.faults_injected),
            "pending": [encode(e) for e in self._pending],
            "latched": encode(self._latched) if self._latched else None,
            "last_decision": self._last_decision,
        }

    def load_state_dict(self, state: dict) -> "FlakyPlanner":
        def decode(entry: list) -> FaultEvent:
            return FaultEvent(
                time_index=int(entry[0]), kind=entry[1], param=entry[2]
            )

        self.faults_injected = int(state["faults_injected"])
        self._pending = [decode(entry) for entry in state["pending"]]
        self._latched = (
            decode(state["latched"]) if state["latched"] is not None else None
        )
        last = state["last_decision"]
        self._last_decision = int(last) if last is not None else None
        return self

    def __getattr__(self, attribute: str):
        # Delegate everything else (fit, forecaster, ...) to the inner
        # planner so the wrapper is drop-in.
        return getattr(self.inner, attribute)
