"""Seeded, schedule-driven fault injection.

The paper's offline evaluation only ever sees clean traces and
instantaneous, always-successful scaling.  Production autoscalers are
judged by what happens when those assumptions break: telemetry arrives
as NaN or not at all, provisioning requests fail, forecasters crash or
blow their deadline.  A :class:`FaultSchedule` is the single source of
truth for *when* and *what* goes wrong, so a chaos run is exactly
reproducible from ``(workload seed, fault seed)``.

Three injection layers share one schedule, split by fault kind:

* **telemetry** (``nan``, ``inf``, ``negative``, ``drop``,
  ``duplicate``, ``spike``) — corrupt the workload feed before the
  runtime observes it (:mod:`repro.faults.telemetry`);
* **planner** (``planner_error``, ``planner_timeout``) — make the
  planning step raise or overrun its deadline
  (:mod:`repro.faults.planner`);
* **cluster** (``node_crash``, ``provision_fail``, ``warmup_stall``,
  ``warmup_fail``) — actuation failures on the simulated cluster
  (:mod:`repro.faults.cluster`).

Schedules come from three constructors: an explicit event list, the
compact spec grammar the CLI exposes (:meth:`FaultSchedule.parse`), or
seeded Bernoulli sampling (:meth:`FaultSchedule.random`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "TELEMETRY_KINDS",
    "PLANNER_KINDS",
    "CLUSTER_KINDS",
    "ALL_KINDS",
]

#: Faults applied to the observation feed.
TELEMETRY_KINDS = frozenset(
    {"nan", "inf", "negative", "drop", "duplicate", "spike"}
)
#: Faults applied to the planning step.
PLANNER_KINDS = frozenset({"planner_error", "planner_timeout"})
#: Faults applied to the simulated cluster.
CLUSTER_KINDS = frozenset(
    {"node_crash", "provision_fail", "warmup_stall", "warmup_fail"}
)
ALL_KINDS = TELEMETRY_KINDS | PLANNER_KINDS | CLUSTER_KINDS

#: Default parameter per parameterised kind (spike multiplier,
#: warm-up stall multiplier); kinds absent here take no parameter.
_DEFAULT_PARAMS = {"spike": 10.0, "warmup_stall": 10.0}

# One spec clause: kind@START[..END[/STEP]][:PARAM]
_CLAUSE_RE = re.compile(
    r"""^\s*
    (?P<kind>[a-z_]+)
    @(?P<start>\d+)
    (?:\.\.(?P<end>\d+)(?:/(?P<step>\d+))?)?
    (?::(?P<param>[0-9.eE+-]+))?
    \s*$""",
    re.VERBOSE,
)


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault: *what* goes wrong at *which* interval.

    ``time_index`` is interpreted by each injection layer in its own
    index space (the chaos harness and CLI use test-relative interval
    indices throughout).  ``param`` carries the kind's magnitude where
    one applies: the spike multiplier for ``spike``, the warm-up
    multiplier for ``warmup_stall``.
    """

    time_index: int
    kind: str
    param: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(ALL_KINDS)}"
            )
        if self.time_index < 0:
            raise ValueError("time_index must be non-negative")

    @property
    def parameter(self) -> float:
        """The event's parameter, falling back to the kind's default."""
        if self.param is not None:
            return float(self.param)
        return _DEFAULT_PARAMS.get(self.kind, 1.0)

    @property
    def spec(self) -> str:
        """Canonical single-clause spec (parseable by ``parse``)."""
        suffix = f":{self.param:g}" if self.param is not None else ""
        return f"{self.kind}@{self.time_index}{suffix}"


class FaultSchedule:
    """An immutable, time-ordered collection of :class:`FaultEvent`.

    Lookup by interval is O(1) (:meth:`at`); the layer-specific views
    (:attr:`telemetry`, :attr:`planner`, :attr:`cluster`) are
    sub-schedules the injectors consume.
    """

    def __init__(self, events: "tuple[FaultEvent, ...] | list[FaultEvent]" = ()):
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time_index, e.kind))
        )
        self._by_index: dict[int, tuple[FaultEvent, ...]] = {}
        for event in self.events:
            self._by_index[event.time_index] = self._by_index.get(
                event.time_index, ()
            ) + (event,)

    # -- construction --------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Parse a comma-separated fault spec into a schedule.

        Each clause is ``kind@START[..END[/STEP]][:PARAM]``::

            nan@12                     # one NaN observation at t=12
            spike@30:8                 # workload x8 at t=30
            drop@40..60/5              # a dropped sample every 5th
                                       # interval in [40, 60]
            planner_error@24           # forecaster raises at t=24
            node_crash@18,provision_fail@20

        Times are interval indices in the consumer's frame (the CLI and
        chaos harness use test-relative indices).
        """
        events: list[FaultEvent] = []
        for clause in spec.split(","):
            if not clause.strip():
                continue
            match = _CLAUSE_RE.match(clause)
            if match is None:
                raise ValueError(
                    f"cannot parse fault clause {clause.strip()!r}; expected "
                    f"'kind@START[..END[/STEP]][:PARAM]', e.g. 'nan@12', "
                    f"'spike@30:8', 'drop@40..60/5'"
                )
            kind = match.group("kind")
            start = int(match.group("start"))
            end = int(match.group("end")) if match.group("end") else start
            step = int(match.group("step")) if match.group("step") else 1
            if step < 1:
                raise ValueError(f"step must be >= 1 in {clause.strip()!r}")
            if end < start:
                raise ValueError(f"END < START in {clause.strip()!r}")
            param = (
                float(match.group("param")) if match.group("param") else None
            )
            for t in range(start, end + 1, step):
                events.append(FaultEvent(time_index=t, kind=kind, param=param))
        return cls(events)

    @classmethod
    def random(
        cls,
        length: int,
        rates: dict[str, float],
        seed: int = 0,
        params: "dict[str, float] | None" = None,
    ) -> "FaultSchedule":
        """Sample a schedule: each kind fires i.i.d. Bernoulli per interval.

        Fully determined by ``(length, rates, seed, params)`` — kinds
        are drawn in sorted order from one ``default_rng(seed)`` stream,
        so the same inputs always produce the same schedule.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        rng = np.random.default_rng(seed)
        params = params or {}
        events: list[FaultEvent] = []
        for kind in sorted(rates):
            if kind not in ALL_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
            rate = float(rates[kind])
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind!r} must be in [0, 1]")
            hits = np.flatnonzero(rng.random(length) < rate)
            for t in hits:
                events.append(
                    FaultEvent(
                        time_index=int(t), kind=kind, param=params.get(kind)
                    )
                )
        return cls(events)

    # -- queries -------------------------------------------------------
    def at(self, time_index: int) -> tuple[FaultEvent, ...]:
        """Every event scheduled for one interval (possibly empty)."""
        return self._by_index.get(time_index, ())

    def only(self, kinds: frozenset[str] | set[str]) -> "FaultSchedule":
        """Sub-schedule containing only the given kinds."""
        return FaultSchedule(
            tuple(e for e in self.events if e.kind in kinds)
        )

    @property
    def telemetry(self) -> "FaultSchedule":
        return self.only(TELEMETRY_KINDS)

    @property
    def planner(self) -> "FaultSchedule":
        return self.only(PLANNER_KINDS)

    @property
    def cluster(self) -> "FaultSchedule":
        return self.only(CLUSTER_KINDS)

    def counts(self) -> dict[str, int]:
        """Events per kind (for reports)."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    @property
    def spec(self) -> str:
        """Canonical comma-joined spec for the whole schedule."""
        return ",".join(e.spec for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self.events == other.events

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self.events)} events: {self.counts()})"
