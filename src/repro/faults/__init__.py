"""Fault injection for chaos-testing the closed autoscaling loop.

The paper claims *robust* auto-scaling; this package supplies the
adversary.  A seeded :class:`FaultSchedule` drives three injection
layers — telemetry corruption
(:class:`~repro.faults.telemetry.TelemetryFaultInjector`), planner
crashes and deadline overruns
(:class:`~repro.faults.planner.FlakyPlanner`), and cluster actuation
failures (:class:`~repro.faults.cluster.ClusterFaultInjector`) — while
the runtime's graceful-degradation path
(:class:`~repro.core.runtime.AutoscalingRuntime` with
``invalid_policy="impute"`` and ``on_planner_error="degrade"``) keeps
the loop alive.  :func:`repro.evaluation.chaos.chaos_run` ties it all
together and scores the damage.

Quick start::

    from repro.faults import FaultSchedule

    faults = FaultSchedule.parse("nan@12,spike@30:8,planner_error@24")
    # or a seeded random schedule:
    faults = FaultSchedule.random(
        length=288, seed=7,
        rates={"nan": 0.02, "planner_error": 0.05, "node_crash": 0.01},
    )
"""

from .cluster import ClusterFaultInjector
from .planner import FlakyPlanner, InjectedPlannerError, PlannerTimeoutError
from .schedule import (
    ALL_KINDS,
    CLUSTER_KINDS,
    PLANNER_KINDS,
    TELEMETRY_KINDS,
    FaultEvent,
    FaultSchedule,
)
from .telemetry import TelemetryFaultInjector, corrupt_series

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "TELEMETRY_KINDS",
    "PLANNER_KINDS",
    "CLUSTER_KINDS",
    "ALL_KINDS",
    "TelemetryFaultInjector",
    "corrupt_series",
    "FlakyPlanner",
    "InjectedPlannerError",
    "PlannerTimeoutError",
    "ClusterFaultInjector",
]
