"""Cluster-layer fault injection: actuation failures on the simulator.

The cluster consults a :class:`ClusterFaultInjector` at the points
where real control planes fail:

* ``provision_fail`` — an attach request during the faulted interval is
  rejected (capacity shortage, API error); the cluster stays short and
  retries naturally on the next ``scale_to``;
* ``warmup_stall`` — warm-ups started during the faulted interval take
  ``param`` times longer (default x10: a slow checkpoint read);
* ``warmup_fail`` — a node whose warm-up started during the faulted
  interval never activates; it is released when the warm-up would have
  completed (a wedged rebuild);
* ``node_crash`` — consumed by :func:`~repro.simulator.replay.replay_plan`,
  which kills a serving node at the interval boundary via
  :meth:`~repro.simulator.cluster.DisaggregatedCluster.fail_node`.

Fault times are interval indices; the injector converts the cluster's
simulation clock (seconds) into intervals itself.
"""

from __future__ import annotations

from .schedule import FaultSchedule

__all__ = ["ClusterFaultInjector"]


class ClusterFaultInjector:
    """Schedule-driven actuation faults, looked up by simulation time.

    Parameters
    ----------
    schedule:
        Fault schedule (only its cluster-layer events matter).
    interval_seconds:
        Length of one workload interval; converts the simulation clock
        into the schedule's interval indices.
    """

    def __init__(
        self, schedule: FaultSchedule, interval_seconds: float = 600.0
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.schedule = schedule.cluster
        self.interval_seconds = float(interval_seconds)
        self._provision_fail: set[int] = set()
        self._warmup_stall: dict[int, float] = {}
        self._warmup_fail: set[int] = set()
        self._node_crash: dict[int, int] = {}
        for event in self.schedule:
            if event.kind == "provision_fail":
                self._provision_fail.add(event.time_index)
            elif event.kind == "warmup_stall":
                self._warmup_stall[event.time_index] = event.parameter
            elif event.kind == "warmup_fail":
                self._warmup_fail.add(event.time_index)
            elif event.kind == "node_crash":
                self._node_crash[event.time_index] = (
                    self._node_crash.get(event.time_index, 0) + 1
                )

    def interval_of(self, now: float) -> int:
        """Interval index containing simulation instant ``now``."""
        # Attaches happen exactly at interval boundaries; the epsilon
        # keeps float drift from assigning them to the previous interval.
        return int(now / self.interval_seconds + 1e-9)

    # -- hooks consulted by DisaggregatedCluster -----------------------
    def provision_fails(self, now: float) -> bool:
        return self.interval_of(now) in self._provision_fail

    def warmup_multiplier(self, now: float) -> float:
        return self._warmup_stall.get(self.interval_of(now), 1.0)

    def warmup_fails(self, now: float) -> bool:
        return self.interval_of(now) in self._warmup_fail

    # -- hook consulted by replay_plan ---------------------------------
    def crashes_at(self, interval_index: int) -> int:
        """How many node crashes are scheduled for one interval."""
        return self._node_crash.get(interval_index, 0)
