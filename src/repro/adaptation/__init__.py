"""Online model management: drift→refit→shadow→promote→rollback.

The health monitor (:mod:`repro.obs.monitor`) *detects* that the live
forecaster has gone stale; this package *acts* on it.  A drift alert
(or an operator's ``POST /refit``) trains a candidate — an incremental
warm-started refit of the live model or a
:class:`~repro.adaptation.pool.ModelPool` reselection — which then
shadows the incumbent, forecasting every tick without actuating, until
the :class:`~repro.adaptation.promotion.PromotionPolicy` promotes it
(with a post-promotion rollback guard) or rejects it.  See
``docs/adaptation.md`` for the state machine and endpoint contract.
"""

from .manager import AdaptationError, AdaptationManager
from .pool import ModelPool
from .promotion import (
    GUARDING,
    IDLE,
    SHADOWING,
    STATES,
    PromotionPolicy,
    parse_promotion_policy,
)

__all__ = [
    "AdaptationError",
    "AdaptationManager",
    "ModelPool",
    "PromotionPolicy",
    "parse_promotion_policy",
    "IDLE",
    "SHADOWING",
    "GUARDING",
    "STATES",
]
