"""Canary promotion policy for online model management.

The adaptation loop treats a refit model like a canary deployment: the
candidate serves *shadow* traffic (forecasting every tick, never
actuating) while a :class:`PromotionPolicy` decides, window by window,
whether its rolling accuracy has earned a swap into the live planner.
The state machine itself lives in
:class:`~repro.adaptation.manager.AdaptationManager`; this module holds
its vocabulary (the state names), the policy, and the compact spec
grammar the CLI exposes (``--promote-policy``)::

    wql<=0.95 cal<=0.1 soak=2 guard=4

i.e. whitespace/comma-separated ``key<=value`` (or ``key=value``)
tokens:

* ``wql`` — candidate mean-wQL must be at most this *ratio* of the
  incumbent's over the soak span (default 0.95: at least 5% better);
* ``cal`` — candidate calibration error may exceed the incumbent's by
  at most this absolute slack (default 0.1);
* ``soak`` — completed shadow windows required before the comparison
  may promote (default 2);
* ``guard`` — post-promotion health windows watched for automatic
  rollback (default 4; 0 commits immediately).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.monitor import WindowStats

__all__ = [
    "IDLE",
    "SHADOWING",
    "GUARDING",
    "STATES",
    "PromotionPolicy",
    "parse_promotion_policy",
]

#: The three states of the canary state machine.  Transitions:
#: IDLE --refit--> SHADOWING --promote--> GUARDING --commit--> IDLE,
#: with SHADOWING --reject--> IDLE (soak expired or superseded) and
#: GUARDING --rollback--> IDLE (health breach) closing the loop.
IDLE = "idle"
SHADOWING = "shadowing"
GUARDING = "guarding"
STATES = (IDLE, SHADOWING, GUARDING)

_TOKEN_RE = re.compile(
    r"^(?P<key>wql|cal|soak|guard)\s*(?:<=|=)\s*(?P<value>[0-9.eE+-]+)$"
)


@dataclass(frozen=True)
class PromotionPolicy:
    """When does a shadow candidate replace the live model?

    Parameters
    ----------
    wql_ratio:
        Promote only if ``candidate_wql <= wql_ratio * incumbent_wql``
        over the compared windows.  Values below 1 demand a margin —
        swapping models is not free, so a candidate must *beat* the
        incumbent, not tie it.
    calibration_slack:
        The candidate's mean calibration error may exceed the
        incumbent's by at most this much — a sharper but badly
        calibrated candidate would undermine the robust bounds.
    soak_windows:
        Completed shadow-monitor windows required before the comparison
        is trusted (promotion can never fire earlier).
    guard_windows:
        Post-promotion monitor windows during which any fresh health
        alert (judging a fully post-promotion span) rolls the swap
        back.  0 disables the guard (commit immediately).
    """

    wql_ratio: float = 0.95
    calibration_slack: float = 0.1
    soak_windows: int = 2
    guard_windows: int = 4

    def __post_init__(self) -> None:
        if self.wql_ratio <= 0:
            raise ValueError("wql_ratio must be positive")
        if self.calibration_slack < 0:
            raise ValueError("calibration_slack must be >= 0")
        if self.soak_windows < 1:
            raise ValueError("soak_windows must be >= 1")
        if self.guard_windows < 0:
            raise ValueError("guard_windows must be >= 0")

    @property
    def spec(self) -> str:
        """Canonical spec (parseable by :func:`parse_promotion_policy`)."""
        return (
            f"wql<={self.wql_ratio:g} cal<={self.calibration_slack:g} "
            f"soak={self.soak_windows} guard={self.guard_windows}"
        )

    def decide(
        self,
        candidate_windows: "Sequence[WindowStats]",
        incumbent_windows: "Sequence[WindowStats]",
    ) -> tuple[bool, str]:
        """Promote or keep shadowing, with a human-readable reason.

        Compares the candidate's last ``soak_windows`` completed shadow
        windows against the incumbent's windows over the same span (its
        most recent ones — both monitors close windows at the same
        cadence once the shadow is running).
        """
        if len(candidate_windows) < self.soak_windows:
            return False, (
                f"soaking: {len(candidate_windows)}/{self.soak_windows} "
                f"shadow windows"
            )
        if not incumbent_windows:
            return False, "no incumbent windows to compare against"
        recent_c = candidate_windows[-self.soak_windows :]
        recent_i = incumbent_windows[-self.soak_windows :]
        cand_wql = float(np.mean([w.mean_wql for w in recent_c]))
        inc_wql = float(np.mean([w.mean_wql for w in recent_i]))
        cand_cal = float(np.mean([w.calibration_error for w in recent_c]))
        inc_cal = float(np.mean([w.calibration_error for w in recent_i]))
        if cand_wql > self.wql_ratio * inc_wql:
            return False, (
                f"wQL not better: candidate {cand_wql:.4f} > "
                f"{self.wql_ratio:g} x incumbent {inc_wql:.4f}"
            )
        if cand_cal > inc_cal + self.calibration_slack:
            return False, (
                f"calibration worse: candidate {cand_cal:.3f} > "
                f"incumbent {inc_cal:.3f} + {self.calibration_slack:g}"
            )
        return True, (
            f"candidate wQL {cand_wql:.4f} <= {self.wql_ratio:g} x "
            f"incumbent {inc_wql:.4f}, calibration {cand_cal:.3f} vs "
            f"{inc_cal:.3f}"
        )


def parse_promotion_policy(spec: str) -> PromotionPolicy:
    """Parse the ``--promote-policy`` grammar into a policy.

    Empty/whitespace spec returns the default policy; unknown keys and
    malformed tokens raise :class:`ValueError`.
    """
    values: dict[str, float] = {}
    for token in re.split(r"[\s,]+", spec.strip()):
        if not token:
            continue
        match = _TOKEN_RE.match(token)
        if match is None:
            raise ValueError(
                f"cannot parse promotion-policy token {token!r}; expected "
                f"'wql<=R cal<=S soak=N guard=N', e.g. "
                f"'wql<=0.95 cal<=0.1 soak=2 guard=4'"
            )
        values[match.group("key")] = float(match.group("value"))
    kwargs: dict = {}
    if "wql" in values:
        kwargs["wql_ratio"] = values["wql"]
    if "cal" in values:
        kwargs["calibration_slack"] = values["cal"]
    if "soak" in values:
        kwargs["soak_windows"] = int(values["soak"])
    if "guard" in values:
        kwargs["guard_windows"] = int(values["guard"])
    return PromotionPolicy(**kwargs)
