"""Model-pool reselection: pick the best candidate family on a holdout.

Warm-starting the incumbent (:meth:`AdaptationManager.refit` with
``strategy="warm"``) assumes the model *family* is still right and only
the weights went stale.  When the regime change is structural — a new
seasonality, a different noise profile — the better move is to refit
several candidate families and let a holdout decide.  A
:class:`ModelPool` holds named zero-argument factories; ``select()``
fits each candidate on the history minus a holdout tail, scores its
quantile forecast over that tail by mean wQL, refits the winner on the
full history, and hands it back as the shadow candidate.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..evaluation.metrics import weighted_quantile_loss
from ..obs import get_registry

__all__ = ["ModelPool"]


class ModelPool:
    """Named forecaster factories competing on a holdout tail.

    Factories must be zero-argument callables returning an *unfitted*
    forecaster whose ``predict`` horizon covers the runtime's horizon.
    Registration order breaks score ties (first registered wins), so
    selection is deterministic.
    """

    def __init__(
        self,
        factories: "dict[str, Callable[[], Any]] | None" = None,
    ) -> None:
        self._factories: dict[str, Callable[[], Any]] = dict(factories or {})

    def register(self, name: str, factory: "Callable[[], Any]") -> "ModelPool":
        if name in self._factories:
            raise ValueError(f"candidate {name!r} already registered")
        self._factories[name] = factory
        return self

    def names(self) -> list[str]:
        return list(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def select(
        self,
        series: np.ndarray,
        *,
        context_length: int,
        horizon: int,
        levels: "tuple[float, ...] | None" = None,
        start_index: int = 0,
    ) -> tuple[str, Any, dict[str, float]]:
        """Fit every candidate, score on the tail, return the winner.

        The last ``horizon`` observations are held out: each candidate
        trains on everything before them and forecasts them from the
        trailing context, scored by mean wQL over its quantile levels.
        Candidates that fail to fit (e.g. not enough history for their
        season) score ``inf`` and are recorded, not raised — one broken
        family must not block reselection.  The winner is refit on the
        *full* series before being returned.

        Returns ``(name, fitted_forecaster, scores)``.
        """
        if not self._factories:
            raise ValueError("model pool is empty")
        series = np.asarray(series, dtype=np.float64)
        if len(series) < context_length + horizon + 1:
            raise ValueError(
                f"need at least {context_length + horizon + 1} observations "
                f"to select over a {horizon}-step holdout, got {len(series)}"
            )
        train = series[:-horizon]
        context = train[-context_length:]
        target = series[-horizon:]
        context_start = start_index + len(train) - context_length

        registry = get_registry()
        scores: dict[str, float] = {}
        best_name: "str | None" = None
        best_score = np.inf
        for name, factory in self._factories.items():
            try:
                candidate = factory()
                candidate.fit(train)
                forecast = candidate.predict(
                    context, levels=levels, start_index=context_start
                )
                steps = min(forecast.horizon, horizon)
                per_level = [
                    weighted_quantile_loss(
                        target[:steps], forecast.values[i, :steps], float(tau)
                    )
                    for i, tau in enumerate(forecast.levels)
                ]
                score = float(np.mean(per_level))
            except (ValueError, RuntimeError) as error:
                registry.counter(
                    "adaptation.pool_failures", candidate=name
                ).inc()
                registry.emit_event(
                    "adaptation",
                    "adaptation.pool_candidate_failed",
                    candidate=name,
                    error=str(error),
                )
                score = float("inf")
            scores[name] = score
            if score < best_score:
                best_score = score
                best_name = name
        if best_name is None or not np.isfinite(best_score):
            raise ValueError(
                f"every pool candidate failed to fit/score: {scores}"
            )
        winner = self._factories[best_name]()
        winner.fit(series)
        return best_name, winner, scores
