"""Online model management: refit, shadow, promote, roll back.

:class:`AdaptationManager` closes the drift→adaptation loop.  The
health monitor detects that the live forecaster has gone stale (drift
alerts, coverage sag); this manager *acts* on it:

1. **refit** — clone the live forecaster and retrain it on the trailing
   history.  Warm-capable models (:class:`~repro.forecast.neural
   .NeuralForecaster`) are refit incrementally with
   ``fit(warm_start=True)`` — the trained network and scaler are
   reused, so a refit costs a fraction of a cold fit.  Alternatively a
   :class:`~repro.adaptation.pool.ModelPool` reselects the best of
   several registered candidate families on a holdout tail.
2. **shadow** — the candidate forecasts every tick alongside the live
   model, from *exactly* the context the incumbent planned from, scored
   by its own :class:`~repro.obs.monitor.ModelHealthMonitor`.  It never
   actuates.
3. **promote** — when the :class:`~repro.adaptation.promotion
   .PromotionPolicy` finds the candidate's rolling wQL/calibration
   better than the incumbent's over the soak span, the candidate is
   swapped into the live planner (and a replan requested); the old
   model is retained for rollback.
4. **guard / rollback / commit** — for ``guard_windows`` post-promotion
   health windows, any fresh alert that judges a fully post-promotion
   span rolls the swap back; surviving the guard commits it.

The manager is driven by one :meth:`on_tick` call per served interval
(the service layer does this) and is fully checkpointable: its
:meth:`state_dict` — candidate and rollback models included, pickled
and base64-embedded so ``state.json`` stays a single self-contained
JSON document — restores the whole state machine bit-identically
mid-shadow.

Everything is observable: ``adaptation.refits`` / ``.promotions`` /
``.rollbacks`` / ``.rejections`` counters, an ``adaptation/refit``
span, structured ``adaptation`` events for every transition, and
provenance records with ``source="promoted"`` / ``"rolled_back"`` in
the runtime's audit stream.
"""

from __future__ import annotations

import base64
import copy
import inspect
import pickle
from collections import deque
from typing import TYPE_CHECKING, Any

import numpy as np

from ..obs import get_registry
from ..obs.monitor import ModelHealthMonitor
from .promotion import GUARDING, IDLE, SHADOWING, PromotionPolicy, parse_promotion_policy

if TYPE_CHECKING:  # pragma: no cover
    from ..core.runtime import AutoscalingRuntime
    from ..obs.alerts import Alert
    from .pool import ModelPool

__all__ = ["AdaptationError", "AdaptationManager"]

#: Kept in sync with the state_dict layout; bump on breaking changes.
_STATE_VERSION = 1


class AdaptationError(RuntimeError):
    """An adaptation action is invalid in the current state."""


def _dump_model(model: Any) -> "str | None":
    """Pickle a forecaster to a base64 string (JSON-embeddable).

    Forecasters are plain Python + numpy object graphs (networks,
    scalers, ``np.random.Generator`` samplers), all of which pickle
    exactly — a loaded model is bit-identical to the saved one,
    including its sampler rng, which is what the checkpoint restore
    guarantee requires.
    """
    if model is None:
        return None
    return base64.b64encode(
        pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _load_model(blob: "str | None") -> Any:
    if blob is None:
        return None
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


def _supports_warm_start(model: Any) -> bool:
    try:
        return "warm_start" in inspect.signature(type(model).fit).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return False


class AdaptationManager:
    """Canary-style model management driven by the health monitor.

    Parameters
    ----------
    runtime:
        The live :class:`~repro.core.runtime.AutoscalingRuntime`.  Must
        have a :class:`~repro.obs.monitor.ModelHealthMonitor` attached —
        promotion is a *comparison* against the incumbent's windows, and
        auto-refit triggers off the monitor's alert engine.
    policy:
        :class:`~repro.adaptation.promotion.PromotionPolicy`, a spec
        string for :func:`~repro.adaptation.promotion
        .parse_promotion_policy`, or None for the defaults.
    shadow_window:
        Maximum ticks a candidate may shadow without earning promotion
        before it is rejected (the soak *budget*; the policy's
        ``soak_windows`` is the *minimum* evidence).
    history_size:
        Trailing observations retained for refits.  Defaults to the
        larger of 1024 and 8 context+horizon spans.
    refit_epochs:
        Epoch budget for warm refits (passed to ``fit(epochs=...)``
        when the model supports it); None uses the model's configured
        epochs with its own early stopping.
    cooldown:
        Ticks after a rejection/rollback/commit during which alert-
        driven refits are suppressed (manual ``refit()`` ignores it) —
        without it a noisy alert rule would thrash refits back to back.
    auto_refit:
        When True (default), any *new* alert from the incumbent
        monitor's engine triggers a refit while idle.
    pool:
        Optional :class:`~repro.adaptation.pool.ModelPool`; when set,
        the default refit strategy becomes pool reselection instead of
        warm-starting the incumbent's own family.
    """

    def __init__(
        self,
        runtime: "AutoscalingRuntime",
        *,
        policy: "PromotionPolicy | str | None" = None,
        shadow_window: int = 96,
        history_size: "int | None" = None,
        refit_epochs: "int | None" = None,
        cooldown: int = 48,
        auto_refit: bool = True,
        pool: "ModelPool | None" = None,
    ) -> None:
        if runtime.monitor is None:
            raise ValueError(
                "AdaptationManager requires a runtime with a health monitor "
                "attached — promotion compares candidate and incumbent "
                "monitor windows"
            )
        if shadow_window < 1:
            raise ValueError("shadow_window must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if isinstance(policy, str):
            policy = parse_promotion_policy(policy)
        self.runtime = runtime
        self.policy = policy if policy is not None else PromotionPolicy()
        self.shadow_window = shadow_window
        self.refit_epochs = refit_epochs
        self.cooldown = cooldown
        self.auto_refit = auto_refit
        self.pool = pool
        if history_size is None:
            history_size = max(
                1024, 8 * (runtime.context_length + runtime.horizon)
            )
        self.history: deque = deque(maxlen=history_size)

        self.candidate: Any = None
        self.previous: Any = None
        self.shadow_monitor: "ModelHealthMonitor | None" = None
        self.events: list[dict] = []
        self.refits = 0
        self.promotions = 0
        self.rollbacks = 0
        self.rejections = 0

        self._state = IDLE
        self._tick = runtime.tick - 1  # last tick fed via on_tick
        self._shadow_ticks = 0
        self._shadow_levels: "np.ndarray | None" = None
        self._shadow_values: "np.ndarray | None" = None
        self._shadow_position = 0
        self._candidate_mode: "str | None" = None
        self._incumbent_window_mark = 0
        self._promote_tick: "int | None" = None
        self._guard_window_mark = 0
        self._alert_mark = 0
        self._seen_alerts = self._alert_count()
        self._cooldown_until = runtime.tick  # no cooldown at start
        self._last_decision: "str | None" = None

    # -- small accessors -------------------------------------------------
    @property
    def state(self) -> str:
        """Current state machine position: idle/shadowing/guarding."""
        return self._state

    def _forecaster_owner(self) -> Any:
        """The object whose ``.forecaster`` attribute is the live model.

        Walks the planner through ``.inner`` delegation (fault wrappers)
        exactly like the checkpoint layer's ``_find_forecaster``, but
        returns the *owner* so promotion can swap the attribute.
        """
        seen = set()
        node = self.runtime.planner
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if getattr(node, "forecaster", None) is not None:
                return node
            node = getattr(node, "inner", None)
        raise AdaptationError(
            "planner exposes no .forecaster to manage — adaptation needs "
            "a forecaster-backed planner (e.g. RobustPredictiveAutoscaler)"
        )

    def _alert_engine(self):
        return self.runtime.monitor.alerts

    def _alert_count(self) -> int:
        engine = self._alert_engine()
        return len(engine.alerts) if engine is not None else 0

    def _event(self, tick: int, action: str, **detail) -> dict:
        entry = {"tick": int(tick), "action": action, **detail}
        self.events.append(entry)
        get_registry().emit_event("adaptation", f"adaptation.{action}", **entry)
        return entry

    def _provenance(self, tick: int, source: str, **fields) -> None:
        """Emit a provenance record for a model swap (promote/rollback)."""
        registry = get_registry()
        if not (self.runtime.record_provenance or registry.active):
            return
        record = {"time_index": int(tick), "source": source, **fields}
        registry.emit_event("provenance", "adaptation.decision", **record)
        if self.runtime.record_provenance:
            self.runtime.provenance.append(record)

    # -- the per-interval hook -------------------------------------------
    def on_tick(self, tick: int, value: "float | None", planned: bool) -> None:
        """Advance the adaptation loop by one served interval.

        Called by the service layer *after* ``runtime.step``; ``value``
        is the observation actually ingested (None when rejected) and
        ``planned`` flags a planning boundary — the shadow candidate
        replans on the same cadence so both models always forecast from
        the same context.
        """
        tick = int(tick)
        if value is not None:
            # Shadow BEFORE appending: the candidate must forecast from
            # the same trailing context the incumbent planned from
            # (observations strictly before this tick).
            if self._state == SHADOWING and self.candidate is not None:
                self._shadow_step(tick, float(value), planned)
            self.history.append(float(value))
        self._tick = tick
        if self._state == SHADOWING:
            self._maybe_promote(tick)
        elif self._state == GUARDING:
            self._guard(tick)
        self._watch_alerts(tick)

    def _shadow_step(self, tick: int, value: float, planned: bool) -> None:
        context_length = self.runtime.context_length
        if len(self.history) < context_length:
            return
        if (
            planned
            or self._shadow_values is None
            or self._shadow_position >= self._shadow_values.shape[1]
        ):
            context = np.asarray(self.history, dtype=np.float64)[
                -context_length:
            ]
            levels = getattr(self.runtime.planner, "quantile_levels", None)
            forecast = self.candidate.predict(
                context, levels=levels, start_index=tick - context_length
            )
            self._shadow_levels = np.asarray(forecast.levels, dtype=np.float64)
            self._shadow_values = np.asarray(forecast.values, dtype=np.float64)
            self._shadow_position = 0
        position = min(
            self._shadow_position, self._shadow_values.shape[1] - 1
        )
        self.shadow_monitor.observe(
            self._shadow_levels,
            self._shadow_values[:, position],
            value,
            time_index=tick,
        )
        self._shadow_position += 1
        self._shadow_ticks += 1

    def _maybe_promote(self, tick: int) -> None:
        incumbent_windows = self.runtime.monitor.windows[
            self._incumbent_window_mark :
        ]
        promote, reason = self.policy.decide(
            self.shadow_monitor.windows, incumbent_windows
        )
        self._last_decision = reason
        if promote:
            self.promote(reason=reason)
        elif self._shadow_ticks >= self.shadow_window:
            self.reject(reason=f"shadow budget exhausted: {reason}")

    def _guard(self, tick: int) -> None:
        engine = self._alert_engine()
        if engine is not None:
            for alert in engine.alerts[self._alert_mark :]:
                if self._alert_is_post_promotion(alert):
                    self.rollback(reason=f"alert: {alert.rule.name}")
                    return
            self._alert_mark = len(engine.alerts)
        survived = [
            w
            for w in self.runtime.monitor.windows[self._guard_window_mark :]
            if w.start_index >= self._promote_tick
        ]
        if len(survived) >= self.policy.guard_windows:
            self._commit(tick)

    def _alert_is_post_promotion(self, alert: "Alert") -> bool:
        """Does this alert judge a span served by the promoted model?

        A window straddling the promotion carries the *old* model's
        residuals too; rolling back on it would punish the candidate
        for the incumbent's sins.  Only windows that started at or
        after the promotion tick count.
        """
        windows = self.runtime.monitor.windows
        if 0 <= alert.window < len(windows):
            return windows[alert.window].start_index >= self._promote_tick
        return alert.end_index >= self._promote_tick

    def _watch_alerts(self, tick: int) -> None:
        count = self._alert_count()
        if (
            count > self._seen_alerts
            and self._state == IDLE
            and self.auto_refit
            and tick >= self._cooldown_until
        ):
            engine = self._alert_engine()
            trigger = engine.alerts[-1]
            try:
                self.refit(reason=f"alert: {trigger.rule.name}")
            except (AdaptationError, ValueError) as error:
                self._event(tick, "refit_failed", reason=str(error))
        self._seen_alerts = count

    # -- transitions -------------------------------------------------------
    def refit(
        self,
        *,
        reason: str = "manual",
        strategy: "str | None" = None,
        force: bool = False,
    ) -> dict:
        """Train a candidate on the trailing history and start shadowing.

        ``strategy`` is ``"warm"`` (clone the live model, warm-start
        when supported), ``"pool"`` (reselect from the registered
        :class:`~repro.adaptation.pool.ModelPool`), or None for the
        default (pool when one is configured, else warm).  Raises
        :class:`AdaptationError` while guarding, or while shadowing
        unless ``force`` (which rejects the current candidate first).
        """
        tick = self._tick
        if self._state == GUARDING:
            raise AdaptationError(
                "cannot refit while guarding a promotion — rollback or "
                "wait for the guard to commit"
            )
        if self._state == SHADOWING:
            if not force:
                raise AdaptationError(
                    "already shadowing a candidate — pass force to replace it"
                )
            self.reject(reason="superseded by forced refit")
        if strategy is None:
            strategy = "pool" if self.pool is not None else "warm"
        if strategy not in ("warm", "pool"):
            raise ValueError("strategy must be 'warm' or 'pool'")
        if strategy == "pool" and self.pool is None:
            raise AdaptationError("no model pool registered")

        series = np.asarray(self.history, dtype=np.float64)
        context_length = self.runtime.context_length
        horizon = self.runtime.horizon
        if len(series) < context_length + horizon + 1:
            raise AdaptationError(
                f"not enough history to refit: have {len(series)} "
                f"observations, need {context_length + horizon + 1}"
            )
        # self.history holds the observations for ticks
        # (tick - len + 1) .. tick — phase-aligns calendar features.
        start_index = tick + 1 - len(series)
        owner = self._forecaster_owner()
        incumbent = owner.forecaster
        registry = get_registry()
        levels = getattr(self.runtime.planner, "quantile_levels", None)

        if strategy == "pool":
            with registry.span("adaptation/refit", strategy="pool"):
                name, candidate, scores = self.pool.select(
                    series,
                    context_length=context_length,
                    horizon=horizon,
                    levels=levels,
                    start_index=start_index,
                )
            mode = f"pool:{name}"
            detail = {"scores": scores}
        else:
            candidate = copy.deepcopy(incumbent)
            warm = _supports_warm_start(candidate)
            with registry.span(
                "adaptation/refit",
                strategy="warm" if warm else "cold",
                model=type(candidate).__name__,
            ):
                if warm:
                    candidate.fit(
                        series,
                        warm_start=True,
                        epochs=self.refit_epochs,
                        start_index=start_index,
                    )
                else:
                    candidate.fit(series)
            mode = "warm" if warm else "cold"
            detail = {}

        self.candidate = candidate
        self._candidate_mode = mode
        self.shadow_monitor = ModelHealthMonitor(
            window=self.runtime.monitor.window
        )
        self._state = SHADOWING
        self._shadow_ticks = 0
        self._shadow_levels = None
        self._shadow_values = None
        self._shadow_position = 0
        self._incumbent_window_mark = len(self.runtime.monitor.windows)
        self.refits += 1
        registry.counter("adaptation.refits", strategy=strategy).inc()
        return self._event(
            tick,
            "refit",
            reason=reason,
            strategy=strategy,
            mode=mode,
            model=type(candidate).__name__,
            history=len(series),
            **detail,
        )

    def promote(self, *, reason: str = "manual") -> dict:
        """Swap the shadow candidate into the live planner.

        Keeps the displaced incumbent for rollback and enters the guard
        state (unless ``guard_windows == 0``, which commits at once).
        """
        if self._state != SHADOWING or self.candidate is None:
            raise AdaptationError("no shadow candidate to promote")
        tick = self._tick
        owner = self._forecaster_owner()
        self.previous = owner.forecaster
        owner.forecaster = self.candidate
        model = type(self.candidate).__name__
        self.candidate = None
        self.shadow_monitor = None
        self._shadow_levels = None
        self._shadow_values = None
        self._shadow_position = 0
        self.runtime.request_replan()
        self._promote_tick = tick
        self._guard_window_mark = len(self.runtime.monitor.windows)
        self._alert_mark = self._alert_count()
        self._state = GUARDING
        self.promotions += 1
        get_registry().counter("adaptation.promotions").inc()
        self._provenance(
            tick,
            "promoted",
            strategy=model,
            mode=self._candidate_mode,
            reason=reason,
        )
        entry = self._event(
            tick,
            "promote",
            reason=reason,
            model=model,
            mode=self._candidate_mode,
            shadow_ticks=self._shadow_ticks,
        )
        if self.policy.guard_windows == 0:
            self._commit(tick)
        return entry

    def rollback(self, *, reason: str = "manual") -> dict:
        """Reinstate the pre-promotion model (guard state only)."""
        if self._state != GUARDING or self.previous is None:
            raise AdaptationError("no guarded promotion to roll back")
        tick = self._tick
        owner = self._forecaster_owner()
        demoted = type(owner.forecaster).__name__
        owner.forecaster = self.previous
        self.previous = None
        self.runtime.request_replan()
        self._state = IDLE
        self._promote_tick = None
        self._cooldown_until = tick + self.cooldown
        self.rollbacks += 1
        get_registry().counter("adaptation.rollbacks").inc()
        self._provenance(tick, "rolled_back", strategy=demoted, reason=reason)
        return self._event(tick, "rollback", reason=reason, model=demoted)

    def reject(self, *, reason: str = "manual") -> dict:
        """Discard the shadow candidate without promoting it."""
        if self._state != SHADOWING or self.candidate is None:
            raise AdaptationError("no shadow candidate to reject")
        tick = self._tick
        model = type(self.candidate).__name__
        self.candidate = None
        self.shadow_monitor = None
        self._shadow_levels = None
        self._shadow_values = None
        self._shadow_position = 0
        self._state = IDLE
        self._cooldown_until = tick + self.cooldown
        self.rejections += 1
        get_registry().counter("adaptation.rejections").inc()
        return self._event(tick, "reject", reason=reason, model=model)

    def _commit(self, tick: int) -> None:
        """Guard survived: the promotion becomes permanent."""
        self.previous = None
        self._state = IDLE
        self._promote_tick = None
        self._cooldown_until = tick + self.cooldown
        get_registry().counter("adaptation.commits").inc()
        self._event(tick, "commit", reason="guard windows passed")

    # -- inspection --------------------------------------------------------
    def status(self) -> dict:
        """JSON-safe snapshot for ``GET /adaptation`` and ``/health``."""
        owner = None
        try:
            owner = self._forecaster_owner()
        except AdaptationError:
            pass
        return {
            "state": self._state,
            "policy": self.policy.spec,
            "live_model": (
                type(owner.forecaster).__name__ if owner is not None else None
            ),
            "candidate": (
                type(self.candidate).__name__
                if self.candidate is not None
                else None
            ),
            "candidate_mode": self._candidate_mode,
            "shadow_ticks": self._shadow_ticks,
            "shadow_window": self.shadow_window,
            "auto_refit": self.auto_refit,
            "cooldown_until": self._cooldown_until,
            "refits": self.refits,
            "promotions": self.promotions,
            "rollbacks": self.rollbacks,
            "rejections": self.rejections,
            "last_decision": self._last_decision,
            "events": self.events[-20:],
        }

    # -- checkpoint/restore ------------------------------------------------
    def state_dict(self) -> dict:
        """The complete adaptation state as a JSON-safe dict.

        Includes the live forecaster (not just the candidate): after a
        promotion the planner may hold a model that the config-driven
        rebuild path cannot reproduce, so the checkpoint must carry the
        object itself for the restore to be bit-identical.
        """
        owner = None
        try:
            owner = self._forecaster_owner()
        except AdaptationError:
            pass
        return {
            "version": _STATE_VERSION,
            "state": self._state,
            "tick": int(self._tick),
            "history": [float(v) for v in self.history],
            "live_model": _dump_model(
                owner.forecaster if owner is not None else None
            ),
            "candidate": _dump_model(self.candidate),
            "previous": _dump_model(self.previous),
            "candidate_mode": self._candidate_mode,
            "shadow_monitor": (
                self.shadow_monitor.state_dict()
                if self.shadow_monitor is not None
                else None
            ),
            "shadow_ticks": int(self._shadow_ticks),
            "shadow_levels": (
                self._shadow_levels.tolist()
                if self._shadow_levels is not None
                else None
            ),
            "shadow_values": (
                self._shadow_values.tolist()
                if self._shadow_values is not None
                else None
            ),
            "shadow_position": int(self._shadow_position),
            "incumbent_window_mark": int(self._incumbent_window_mark),
            "promote_tick": (
                int(self._promote_tick)
                if self._promote_tick is not None
                else None
            ),
            "guard_window_mark": int(self._guard_window_mark),
            "alert_mark": int(self._alert_mark),
            "seen_alerts": int(self._seen_alerts),
            "cooldown_until": int(self._cooldown_until),
            "last_decision": self._last_decision,
            "events": [dict(e) for e in self.events],
            "refits": int(self.refits),
            "promotions": int(self.promotions),
            "rollbacks": int(self.rollbacks),
            "rejections": int(self.rejections),
        }

    def load_state_dict(self, state: dict) -> "AdaptationManager":
        """Restore state captured by :meth:`state_dict` in place.

        Replaces the planner's live forecaster with the checkpointed
        object — call *after* the generic checkpoint restore so the
        promoted/rolled-back model wins over the config-rebuilt one.
        """
        version = state.get("version")
        if version != _STATE_VERSION:
            raise ValueError(
                f"unsupported adaptation state version {version!r} "
                f"(this build reads version {_STATE_VERSION})"
            )
        self._state = state["state"]
        self._tick = int(state["tick"])
        self.history = deque(
            (float(v) for v in state["history"]), maxlen=self.history.maxlen
        )
        live = _load_model(state.get("live_model"))
        if live is not None:
            self._forecaster_owner().forecaster = live
        self.candidate = _load_model(state.get("candidate"))
        self.previous = _load_model(state.get("previous"))
        self._candidate_mode = state.get("candidate_mode")
        if state["shadow_monitor"] is not None:
            self.shadow_monitor = ModelHealthMonitor(
                window=self.runtime.monitor.window
            )
            self.shadow_monitor.load_state_dict(state["shadow_monitor"])
        else:
            self.shadow_monitor = None
        self._shadow_ticks = int(state["shadow_ticks"])
        self._shadow_levels = (
            np.asarray(state["shadow_levels"], dtype=np.float64)
            if state["shadow_levels"] is not None
            else None
        )
        self._shadow_values = (
            np.asarray(state["shadow_values"], dtype=np.float64)
            if state["shadow_values"] is not None
            else None
        )
        self._shadow_position = int(state["shadow_position"])
        self._incumbent_window_mark = int(state["incumbent_window_mark"])
        promote_tick = state["promote_tick"]
        self._promote_tick = (
            int(promote_tick) if promote_tick is not None else None
        )
        self._guard_window_mark = int(state["guard_window_mark"])
        self._alert_mark = int(state["alert_mark"])
        self._seen_alerts = int(state["seen_alerts"])
        self._cooldown_until = int(state["cooldown_until"])
        self._last_decision = state["last_decision"]
        self.events = [dict(e) for e in state["events"]]
        self.refits = int(state["refits"])
        self.promotions = int(state["promotions"])
        self.rollbacks = int(state["rollbacks"])
        self.rejections = int(state["rejections"])
        return self
