"""Deterministic multiprocessing fan-out for evaluation workloads.

Backtests, grid searches, and the benchmark runner all reduce to the
same shape: a list of independent work items, a shared read-only context
(a fitted forecaster, an objective, a config), and the requirement that
results come back **in item order** and **bit-identical** to a serial
run.  :func:`parallel_map` provides exactly that:

* ``spawn`` start method — no inherited state, so results cannot depend
  on what the parent process happened to have touched (and it works the
  same on platforms where fork is unavailable or unsafe);
* a **persistent worker pool** — workers are spawned lazily on first
  use and reused across calls, so repeated small fan-outs (a backtest
  per decision epoch, a tuning loop) pay interpreter start-up and
  ``import numpy`` once per process, not once per call;
* the shared context is pickled **once** per call and shipped to each
  worker only when it *changed* (payloads are keyed by digest) — a
  fitted neural forecaster is megabytes of weights, and a worker that
  already holds the right payload receives only the task items;
* tasks are submitted in contiguous **chunks** (one message per worker,
  not one per item) and results carry their item index, so they are
  reassembled in item order regardless of which worker finished first;
* an **auto-serial threshold**: workloads of ``serial_threshold`` or
  fewer items run in-process — fanning two items across processes can
  never win back the IPC cost, and the determinism contract makes the
  two paths indistinguishable;
* telemetry recorded inside workers (counters, spans, histograms — see
  :mod:`repro.obs`) is captured in a per-task registry, shipped back
  with the result, and merged into the parent registry in item order,
  so ``n_jobs`` does not change what the registry reports.

Determinism is a *joint* contract: ``parallel_map`` guarantees ordering
and isolation, and the task function must derive any randomness from
``(context, item)`` alone — e.g. ``backtest`` reseeds a forecaster's
sampling rng per decision window, which is what makes ``n_jobs=1`` and
``n_jobs=4`` bit-identical.

The task function must be a module-level function (picklable by
reference) taking ``(context, item)``.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import pickle
import queue as queue_module
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

__all__ = ["parallel_map", "WorkerPool", "get_shared_pool", "shutdown_shared_pool"]

# Items-or-fewer run serially: shipping one or two tasks across process
# boundaries costs more IPC than the parallelism can recover.
DEFAULT_SERIAL_THRESHOLD = 2

# Seconds between liveness checks while waiting on worker results.
_POLL_INTERVAL_S = 1.0


def _worker_main(inbox, outbox) -> None:
    """Worker loop: cache the (fn, context) payload, run task chunks.

    Messages (all pre-pickled by the parent where needed):

    * ``("payload", digest, payload_bytes)`` — cache the pickled shared
      ``{"fn", "context"}`` payload; replaces any previous one.
    * ``("tasks", digest, [(index, item), ...][, trace_ctx])`` — run
      each item under a fresh telemetry registry and ship back one
      message per item.  ``trace_ctx`` (``{"trace_id", "parent_id"}``)
      rides on the per-call message, *not* the digest-cached payload,
      so tracing never invalidates the payload cache; when present,
      each item's spans are collected under deterministic
      ``w<index>.<n>`` span ids and shipped back inside the registry
      state for the parent to graft into its live trace.
    * ``("stop",)`` — exit the loop.

    The payload is cached as *bytes* and unpickled once per task chunk
    (one chunk per call), so every :func:`parallel_map` call sees a
    pristine context even if the task function mutates it — the same
    isolation a throwaway pool gave, without re-shipping the bytes.

    Every result message is pickled *synchronously* here (bytes are
    always safe to put on the queue) so an unpicklable result or
    exception surfaces as an error message instead of hanging the
    parent's collection loop.
    """
    from .obs.registry import MetricsRegistry, using_registry
    from .obs.trace import TraceCollector

    payload_bytes: bytes | None = None
    payload_digest: str | None = None
    while True:
        message = inbox.get()
        kind = message[0]
        if kind == "stop":
            return
        if kind == "payload":
            payload_digest = message[1]
            payload_bytes = message[2]
            continue
        expected_digest, chunk = message[1], message[2]
        trace_ctx = message[3] if len(message) > 3 else None
        payload: dict | None = None
        for index, item in chunk:
            try:
                if payload_bytes is None or payload_digest != expected_digest:
                    raise RuntimeError("worker received tasks before their payload")
                if payload is None:
                    payload = pickle.loads(payload_bytes)
                fn: Callable[[Any, Any], Any] = payload["fn"]
                context = payload["context"]
                registry = MetricsRegistry()
                if trace_ctx is not None:
                    # Span ids are prefixed by *item* index, so the
                    # merged trace is identical however the chunks
                    # landed on workers.
                    collector = TraceCollector(
                        max_traces=4, id_prefix=f"w{index}."
                    )
                    collector.begin(
                        trace_ctx["trace_id"],
                        parent_id=trace_ctx.get("parent_id"),
                    )
                    registry.set_tracer(collector)
                with using_registry(registry):
                    result = fn(context, item)
                if registry.tracer is not None:
                    registry.tracer.end("ok")
                reply = ("ok", index, result, registry.state_dict())
            except BaseException as exc:  # ship the failure, keep serving
                reply = ("error", index, exc)
            try:
                data = pickle.dumps(reply)
            except Exception as exc:
                data = pickle.dumps(
                    ("error", index, RuntimeError(f"unpicklable worker reply: {exc!r}"))
                )
            outbox.put(data)


@dataclass
class _Worker:
    process: Any
    inbox: Any
    payload_digest: str | None = None


class WorkerPool:
    """Persistent, lazily-spawned pool of ``spawn`` worker processes.

    Context-managed (``with WorkerPool(4) as pool``) or long-lived via
    :func:`get_shared_pool`.  Workers are started on first :meth:`run`
    and kept alive between calls; the shared payload is re-shipped only
    when its pickled bytes change.  Workers are daemonic, so they can
    never outlive the parent even on an unclean exit.
    """

    def __init__(self, processes: int) -> None:
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self.processes = processes
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: list[_Worker] = []
        self._outbox = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def worker_pids(self) -> list[int]:
        """PIDs of the currently live workers (for tests/introspection)."""
        return [w.process.pid for w in self._workers]

    def _ensure_workers(self, count: int) -> list[_Worker]:
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._outbox is None:
            self._outbox = self._ctx.Queue()
        while len(self._workers) < count:
            inbox = self._ctx.Queue()
            process = self._ctx.Process(
                target=_worker_main, args=(inbox, self._outbox), daemon=True
            )
            process.start()
            self._workers.append(_Worker(process=process, inbox=inbox))
        return self._workers[:count]

    def close(self, force: bool = False) -> None:
        """Shut the workers down (gracefully unless ``force``)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if not force:
                try:
                    worker.inbox.put(("stop",))
                except Exception:
                    pass
        for worker in self._workers:
            worker.process.join(timeout=None if not force else 0.1)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        for worker in self._workers:
            try:
                worker.inbox.cancel_join_thread()
                worker.inbox.close()
            except Exception:
                pass
        if self._outbox is not None:
            try:
                self._outbox.cancel_join_thread()
                self._outbox.close()
            except Exception:
                pass
        self._workers = []
        self._outbox = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution -------------------------------------------------------
    def run(
        self,
        fn: Callable[[Any, Any], Any],
        items: Sequence[Any],
        context: Any,
        trace_ctx: dict | None = None,
    ) -> list[tuple[Any, dict]]:
        """Map ``fn(context, item)`` over ``items`` on the pool.

        Returns ``[(result, telemetry_state), ...]`` in item order.  The
        first worker exception (by item index) is re-raised, after every
        outstanding task has been drained so the pool stays reusable.
        ``trace_ctx`` (``{"trace_id", "parent_id"}``) propagates the
        caller's live trace into the workers; it travels on the task
        message so the payload cache is untouched.
        """
        payload = pickle.dumps({"fn": fn, "context": context})
        digest = hashlib.sha256(payload).hexdigest()
        count = min(self.processes, len(items))
        workers = self._ensure_workers(count)
        for worker in workers:
            if worker.payload_digest != digest:
                worker.inbox.put(("payload", digest, payload))
                worker.payload_digest = digest

        # Contiguous chunks, one submission message per worker.
        indexed = list(enumerate(items))
        base, extra = divmod(len(indexed), count)
        start = 0
        for rank, worker in enumerate(workers):
            size = base + (1 if rank < extra else 0)
            if size:
                worker.inbox.put(
                    ("tasks", digest, indexed[start : start + size], trace_ctx)
                )
            start += size

        results: list[tuple[Any, dict] | None] = [None] * len(indexed)
        errors: list[tuple[int, BaseException]] = []
        received = 0
        while received < len(indexed):
            try:
                data = self._outbox.get(timeout=_POLL_INTERVAL_S)
            except queue_module.Empty:
                dead = [w for w in workers if not w.process.is_alive()]
                if dead:
                    pids = [w.process.pid for w in dead]
                    self.close(force=True)
                    raise RuntimeError(
                        f"worker process(es) {pids} died while running tasks"
                    )
                continue
            reply = pickle.loads(data)
            received += 1
            if reply[0] == "ok":
                results[reply[1]] = (reply[2], reply[3])
            else:
                errors.append((reply[1], reply[2]))
        if errors:
            errors.sort(key=lambda pair: pair[0])
            raise errors[0][1]
        return results  # type: ignore[return-value]


_SHARED_POOL: WorkerPool | None = None


def get_shared_pool(processes: int) -> WorkerPool:
    """The long-lived pool :func:`parallel_map` reuses across calls.

    Grows (never shrinks) to the largest ``processes`` requested;
    workers beyond a call's needs simply stay idle.
    """
    global _SHARED_POOL
    if _SHARED_POOL is None or _SHARED_POOL.closed:
        _SHARED_POOL = WorkerPool(processes)
    elif _SHARED_POOL.processes < processes:
        _SHARED_POOL.processes = processes
    return _SHARED_POOL


def shutdown_shared_pool() -> None:
    """Stop the shared pool's workers (tests; registered atexit)."""
    global _SHARED_POOL
    if _SHARED_POOL is not None:
        _SHARED_POOL.close()
        _SHARED_POOL = None


atexit.register(shutdown_shared_pool)


def parallel_map(
    fn: Callable[[Any, Any], Any],
    items: Iterable[Any],
    context: Any = None,
    n_jobs: int | None = None,
    merge_into=None,
    serial_threshold: int = DEFAULT_SERIAL_THRESHOLD,
    reuse_pool: bool = True,
) -> list[Any]:
    """Map ``fn(context, item)`` over ``items``, optionally in parallel.

    Parameters
    ----------
    fn:
        Module-level function of ``(context, item)``.  For parallel runs
        it must be picklable by reference and must derive any randomness
        from its arguments only.
    context:
        Shared read-only payload; pickled once per call and shipped to a
        worker only when it differs from what that worker already holds.
    n_jobs:
        ``None`` or ``1`` runs serially in-process (no pool, ambient
        registry used directly).  ``>= 2`` fans out over that many
        persistent spawn-context workers.
    merge_into:
        Registry receiving worker telemetry (default: the ambient
        registry at call time).
    serial_threshold:
        Workloads of this many items or fewer run serially even when
        ``n_jobs >= 2`` — the determinism contract makes the result
        identical, and tiny fan-outs never win back the IPC cost.
        Set to 0 to force the pool for any multi-item workload.
    reuse_pool:
        ``True`` (default) runs on the shared persistent pool.
        ``False`` spawns a throwaway pool for this call only (isolation
        at the old spawn-per-call cost).

    Returns results in item order.
    """
    work: Sequence[Any] = list(items)
    if n_jobs is not None and n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if n_jobs is None or n_jobs == 1 or len(work) <= max(1, serial_threshold):
        return [fn(context, item) for item in work]

    from .obs import get_registry

    registry = merge_into if merge_into is not None else get_registry()
    tracer = registry.tracer
    trace_ctx = None
    if tracer is not None and tracer.active:
        trace_ctx = {
            "trace_id": tracer.trace_id,
            "parent_id": tracer.current_span_id,
        }
    processes = min(n_jobs, len(work))
    if reuse_pool:
        pairs = get_shared_pool(processes).run(fn, work, context, trace_ctx)
    else:
        with WorkerPool(processes) as pool:
            pairs = pool.run(fn, work, context, trace_ctx)
    # Merge in item order -> deterministic; re-root worker spans under
    # whatever spans are open here (e.g. a worker's "predict" becomes
    # "backtest/predict", matching what a serial run records).
    prefix = registry.current_span_path
    results = []
    for result, state in pairs:
        registry.merge_state_dict(state, span_prefix=prefix)
        results.append(result)
    return results
