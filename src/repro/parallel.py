"""Deterministic multiprocessing fan-out for evaluation workloads.

Backtests, grid searches, and the benchmark runner all reduce to the
same shape: a list of independent work items, a shared read-only context
(a fitted forecaster, an objective, a config), and the requirement that
results come back **in item order** and **bit-identical** to a serial
run.  :func:`parallel_map` provides exactly that:

* ``spawn`` start method — no inherited state, so results cannot depend
  on what the parent process happened to have touched (and it works the
  same on platforms where fork is unavailable or unsafe);
* the shared context is pickled **once** per worker (pool initializer),
  not once per item — a fitted neural forecaster is megabytes of
  weights;
* ``Pool.map`` keeps results in item order regardless of which worker
  finished first;
* telemetry recorded inside workers (counters, spans, histograms — see
  :mod:`repro.obs`) is captured in a per-task registry, shipped back
  with the result, and merged into the parent registry in item order,
  so ``n_jobs`` does not change what the registry reports.

Determinism is a *joint* contract: ``parallel_map`` guarantees ordering
and isolation, and the task function must derive any randomness from
``(context, item)`` alone — e.g. ``backtest`` reseeds a forecaster's
sampling rng per decision window, which is what makes ``n_jobs=1`` and
``n_jobs=4`` bit-identical.

The task function must be a module-level function (picklable by
reference) taking ``(context, item)``.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Any, Callable, Iterable, Sequence

__all__ = ["parallel_map"]

# Worker-process slot for the shared (fn, context) payload, populated by
# the pool initializer so it is unpickled once per worker, not per item.
_WORKER_PAYLOAD: dict | None = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = pickle.loads(payload)


def _run_task(item: Any) -> tuple[Any, dict]:
    """Run one item under a fresh registry; return (result, telemetry)."""
    from .obs.registry import MetricsRegistry, using_registry

    assert _WORKER_PAYLOAD is not None, "worker initializer did not run"
    fn: Callable[[Any, Any], Any] = _WORKER_PAYLOAD["fn"]
    context = _WORKER_PAYLOAD["context"]
    registry = MetricsRegistry()
    with using_registry(registry):
        result = fn(context, item)
    return result, registry.state_dict()


def parallel_map(
    fn: Callable[[Any, Any], Any],
    items: Iterable[Any],
    context: Any = None,
    n_jobs: int | None = None,
    merge_into=None,
) -> list[Any]:
    """Map ``fn(context, item)`` over ``items``, optionally in parallel.

    Parameters
    ----------
    fn:
        Module-level function of ``(context, item)``.  For parallel runs
        it must be picklable by reference and must derive any randomness
        from its arguments only.
    context:
        Shared read-only payload, pickled once per worker.
    n_jobs:
        ``None`` or ``1`` runs serially in-process (no pool, ambient
        registry used directly).  ``>= 2`` fans out over that many
        spawn-context workers.
    merge_into:
        Registry receiving worker telemetry (default: the ambient
        registry at call time).

    Returns results in item order.
    """
    work: Sequence[Any] = list(items)
    if n_jobs is not None and n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if n_jobs is None or n_jobs == 1 or len(work) <= 1:
        return [fn(context, item) for item in work]

    from .obs import get_registry

    registry = merge_into if merge_into is not None else get_registry()
    payload = pickle.dumps({"fn": fn, "context": context})
    spawn = multiprocessing.get_context("spawn")
    processes = min(n_jobs, len(work))
    with spawn.Pool(
        processes=processes, initializer=_init_worker, initargs=(payload,)
    ) as pool:
        pairs = pool.map(_run_task, work)
    # Merge in item order -> deterministic; re-root worker spans under
    # whatever spans are open here (e.g. a worker's "predict" becomes
    # "backtest/predict", matching what a serial run records).
    prefix = registry.current_span_path
    results = []
    for result, state in pairs:
        registry.merge_state_dict(state, span_prefix=prefix)
        results.append(result)
    return results
