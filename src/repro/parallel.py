"""Deterministic multiprocessing fan-out for evaluation workloads.

Backtests, grid searches, and the benchmark runner all reduce to the
same shape: a list of independent work items, a shared read-only context
(a fitted forecaster, an objective, a config), and the requirement that
results come back **in item order** and **bit-identical** to a serial
run.  :func:`parallel_map` provides exactly that:

* ``spawn`` start method — no inherited state, so results cannot depend
  on what the parent process happened to have touched (and it works the
  same on platforms where fork is unavailable or unsafe);
* a **persistent worker pool** — workers are spawned lazily on first
  use and reused across calls, so repeated small fan-outs (a backtest
  per decision epoch, a tuning loop) pay interpreter start-up and
  ``import numpy`` once per process, not once per call;
* the shared context is pickled **once** per call and shipped to each
  worker only when it *changed* (payloads are keyed by digest) — a
  fitted neural forecaster is megabytes of weights, and a worker that
  already holds the right payload receives only the task items;
* large numpy arrays inside the context (trace windows, model weights)
  never travel through the pickle stream at all: a
  :class:`SharedArrayStore` publishes each one once into a
  ``multiprocessing.shared_memory`` segment, the pickled payload
  shrinks to segment metadata, and workers attach **zero-copy**
  read-only views (see *Shared-memory payloads* below);
* tasks are submitted in contiguous **chunks** (one message per worker,
  not one per item) and results carry their item index, so they are
  reassembled in item order regardless of which worker finished first;
* an **auto-serial threshold**: workloads of ``serial_threshold`` or
  fewer items run in-process — fanning two items across processes can
  never win back the IPC cost, and the determinism contract makes the
  two paths indistinguishable;
* telemetry recorded inside workers (counters, spans, histograms — see
  :mod:`repro.obs`) is captured in a per-task registry, shipped back
  with the result, and merged into the parent registry in item order,
  so ``n_jobs`` does not change what the registry reports.

Determinism is a *joint* contract: ``parallel_map`` guarantees ordering
and isolation, and the task function must derive any randomness from
``(context, item)`` alone — e.g. ``backtest`` reseeds a forecaster's
sampling rng per decision window, which is what makes ``n_jobs=1`` and
``n_jobs=4`` bit-identical.

The task function must be a module-level function (picklable by
reference) taking ``(context, item)``.

Shared-memory payloads
----------------------
Arrays of :data:`SHARED_MIN_BYTES` or more are content-addressed: the
parent hashes the raw bytes, creates (or reuses) a named shared-memory
segment per distinct content, and pickles only
``(name, digest, dtype, shape)``.  Segments are **ref-counted** — every
payload that references an array holds one reference, a replaced or
closed payload releases it, and the segment is unlinked when the count
reaches zero (and unconditionally at interpreter exit via ``atexit``).
Workers attach each segment once, cache the mapping, and hand the task
function a read-only ndarray view — mutating a shared context array
raises instead of silently corrupting sibling tasks.  An attach against
a segment that has already been unlinked raises
:class:`SharedSegmentMissingError` immediately (shipped back like any
task error) rather than hanging the parent's collection loop.
"""

from __future__ import annotations

import atexit
import hashlib
import io
import multiprocessing
import os
import pickle
import queue as queue_module
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "parallel_map",
    "WorkerPool",
    "get_shared_pool",
    "shutdown_shared_pool",
    "SharedArrayStore",
    "SharedArrayRef",
    "SharedSegmentMissingError",
    "get_array_store",
    "dumps_shared",
    "loads_shared",
    "close_attachments",
    "chunk_evenly",
    "SHARED_MIN_BYTES",
]

# Items-or-fewer run serially: shipping one or two tasks across process
# boundaries costs more IPC than the parallelism can recover.
DEFAULT_SERIAL_THRESHOLD = 2

# Seconds between liveness checks while waiting on worker results.
_POLL_INTERVAL_S = 1.0

# Arrays at or above this many bytes are published to shared memory
# instead of travelling through the pickled payload.  Below it the two
# syscalls + mmap of a segment cost more than pickling the bytes.
SHARED_MIN_BYTES = 2048


class SharedSegmentMissingError(RuntimeError):
    """A shared-memory segment was gone when a worker tried to attach.

    Raised eagerly at attach time — and shipped back to the parent like
    any task error — so a payload whose segments were unlinked (pool
    shut down, store cleaned externally) fails with a diagnosis instead
    of a liveness-timeout hang.
    """


@dataclass(frozen=True)
class SharedArrayRef:
    """Metadata standing in for one shared array inside a payload."""

    name: str  # shared-memory segment name
    digest: str  # sha256 of the array's raw bytes (the refcount key)
    dtype: str  # numpy dtype string, e.g. "<f8"
    shape: tuple[int, ...]


class SharedArrayStore:
    """Parent-side registry of ref-counted shared-memory segments.

    ``publish`` is content-addressed: the same bytes published twice
    (the same weights across repeated calls, the same trace array in
    two contexts) reuse one segment and bump its reference count;
    ``release`` decrements and unlinks at zero.  ``unlink_all`` is the
    big hammer for interpreter exit.  Creation happens here only — the
    worker side never creates or unlinks, it just attaches.
    """

    def __init__(self) -> None:
        # digest -> [SharedMemory, refcount]
        self._segments: dict[str, list] = {}
        self._seq = 0

    def __len__(self) -> int:
        return len(self._segments)

    def segment_names(self) -> list[str]:
        """Names of the currently live segments (tests/introspection)."""
        return [entry[0].name for entry in self._segments.values()]

    def publish(self, array: np.ndarray) -> SharedArrayRef:
        """Share one array's content; returns its payload metadata.

        Each call holds one reference; pair it with :meth:`release`.
        """
        data = np.ascontiguousarray(array)
        digest = hashlib.sha256(data.data).hexdigest()
        entry = self._segments.get(digest)
        if entry is None:
            self._seq += 1
            name = f"repro{os.getpid()}_{self._seq}"
            segment = shared_memory.SharedMemory(
                create=True, name=name, size=data.nbytes
            )
            view = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
            np.copyto(view, data)
            entry = self._segments[digest] = [segment, 0]
        entry[1] += 1
        return SharedArrayRef(
            name=entry[0].name,
            digest=digest,
            dtype=array.dtype.str,
            shape=array.shape,
        )

    def release(self, digest: str) -> None:
        """Drop one reference; unlink the segment when none remain."""
        entry = self._segments.get(digest)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            del self._segments[digest]
            self._destroy(entry[0])

    def unlink_all(self) -> None:
        """Unlink every live segment regardless of refcounts (atexit)."""
        segments = [entry[0] for entry in self._segments.values()]
        self._segments.clear()
        for segment in segments:
            self._destroy(segment)

    @staticmethod
    def _destroy(segment) -> None:
        try:
            segment.close()
        except Exception:
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass  # already gone (e.g. cleaned externally)
        except Exception:
            pass


_ARRAY_STORE: SharedArrayStore | None = None


def get_array_store() -> SharedArrayStore:
    """The process-wide store :func:`dumps_shared` publishes into."""
    global _ARRAY_STORE
    if _ARRAY_STORE is None:
        _ARRAY_STORE = SharedArrayStore()
    return _ARRAY_STORE


class _SharingPickler(pickle.Pickler):
    """Pickler that diverts large ndarrays into the shared store.

    ``persistent_id`` sees every object the pickle graph reaches, so
    weight arrays buried inside Parameter/Tensor objects are caught
    without the payload knowing anything about model structure.  Only
    plain ``np.ndarray`` instances of numeric dtype are diverted;
    everything else pickles normally.
    """

    def __init__(self, buffer, store: SharedArrayStore, min_bytes: int) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._store = store
        self._min_bytes = min_bytes
        self.refs: list[SharedArrayRef] = []

    def persistent_id(self, obj):  # noqa: D102 — pickle protocol hook
        if (
            type(obj) is np.ndarray
            and obj.nbytes >= self._min_bytes
            and not obj.dtype.hasobject
        ):
            ref = self._store.publish(obj)
            self.refs.append(ref)
            return ("repro-shm", ref.name, ref.digest, ref.dtype, ref.shape)
        return None


def dumps_shared(
    obj: Any,
    store: SharedArrayStore | None = None,
    min_bytes: int = SHARED_MIN_BYTES,
) -> tuple[bytes, list[SharedArrayRef]]:
    """Pickle ``obj`` with large arrays diverted to shared memory.

    Returns the payload bytes plus one :class:`SharedArrayRef` per
    published array — the caller owns those references and must
    eventually :meth:`~SharedArrayStore.release` each ``digest``.
    """
    buffer = io.BytesIO()
    pickler = _SharingPickler(buffer, store or get_array_store(), min_bytes)
    pickler.dump(obj)
    return buffer.getvalue(), pickler.refs


# Attach-side cache: segment name -> SharedMemory.  Lives in whichever
# process unpickles (normally a worker); attaching is idempotent and the
# mapping stays valid for the process lifetime.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    segment = _ATTACHED.get(name)
    if segment is None:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            raise SharedSegmentMissingError(
                f"shared-memory segment {name!r} is missing at attach time — "
                f"it was never published or has already been unlinked (pool "
                f"shutdown, payload replaced, or /dev/shm cleaned externally)."
                f" Re-submit on a live pool so the payload is re-published."
            ) from None
        # Attaching registers the name with the resource tracker again,
        # but the tracker process (shared by the whole multiprocessing
        # family, including spawn workers) keeps names in a set — the
        # re-register is a no-op and the creator's single unregister at
        # unlink time removes it.  Do NOT unregister here: that would
        # strip the creator's registration out from under it.
        _ATTACHED[name] = segment
    return segment


def close_attachments() -> None:
    """Best-effort close of this process's attached segments.

    Called on worker shutdown (and by tests).  A segment whose buffer is
    still referenced by a live ndarray view cannot be closed; it stays
    cached and is reclaimed when the process exits.
    """
    for name in list(_ATTACHED):
        try:
            _ATTACHED[name].close()
        except Exception:
            continue
        del _ATTACHED[name]


class _AttachingUnpickler(pickle.Unpickler):
    def persistent_load(self, pid):  # noqa: D102 — pickle protocol hook
        tag, name, _digest, dtype, shape = pid
        if tag != "repro-shm":
            raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
        segment = _attach_segment(name)
        array: np.ndarray = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        array.flags.writeable = False
        return array


def loads_shared(data: bytes) -> Any:
    """Unpickle a :func:`dumps_shared` payload, attaching shared arrays.

    Returned arrays are zero-copy read-only views over the segments; the
    rest of the object graph is freshly built per call.
    """
    return _AttachingUnpickler(io.BytesIO(data)).load()


def chunk_evenly(items: Sequence[Any], parts: int) -> list[list[Any]]:
    """Split ``items`` into at most ``parts`` contiguous, near-even chunks.

    Chunk sizes differ by at most one and depend only on
    ``(len(items), parts)`` — never on scheduling — so work batched this
    way keeps the determinism contract.  Used by ``backtest`` and
    ``grid_search`` to coarsen task grain to one batch per worker.
    """
    sequence = list(items)
    parts = max(1, min(parts, len(sequence)))
    base, extra = divmod(len(sequence), parts)
    chunks: list[list[Any]] = []
    start = 0
    for rank in range(parts):
        size = base + (1 if rank < extra else 0)
        chunks.append(sequence[start : start + size])
        start += size
    return chunks


def _worker_main(inbox, outbox) -> None:
    """Worker loop: cache the (fn, context) payload, run task chunks.

    Messages (all pre-pickled by the parent where needed):

    * ``("payload", digest, payload_bytes)`` — cache the pickled shared
      ``{"fn", "context"}`` payload; replaces any previous one.
    * ``("tasks", digest, [(index, item), ...][, trace_ctx])`` — run
      each item under a fresh telemetry registry and ship back one
      message per item.  ``trace_ctx`` (``{"trace_id", "parent_id"}``)
      rides on the per-call message, *not* the digest-cached payload,
      so tracing never invalidates the payload cache; when present,
      each item's spans are collected under deterministic
      ``w<index>.<n>`` span ids and shipped back inside the registry
      state for the parent to graft into its live trace.
    * ``("stop",)`` — exit the loop.

    The payload is cached as *bytes* and unpickled once per task chunk
    (one chunk per call), so every :func:`parallel_map` call sees a
    pristine context even if the task function mutates it — the same
    isolation a throwaway pool gave, without re-shipping the bytes.

    Every result message is pickled *synchronously* here (bytes are
    always safe to put on the queue) so an unpicklable result or
    exception surfaces as an error message instead of hanging the
    parent's collection loop.
    """
    from .obs.registry import MetricsRegistry, using_registry
    from .obs.trace import TraceCollector

    payload_bytes: bytes | None = None
    payload_digest: str | None = None
    while True:
        message = inbox.get()
        kind = message[0]
        if kind == "stop":
            close_attachments()
            return
        if kind == "payload":
            if payload_digest is not None and payload_digest != message[1]:
                # The old payload's shared views are garbage by now (the
                # dict was per-chunk); drop whatever attachments can be
                # closed so a long-lived worker doesn't hold mappings to
                # segments the parent has unlinked.
                close_attachments()
            payload_digest = message[1]
            payload_bytes = message[2]
            continue
        expected_digest, chunk = message[1], message[2]
        trace_ctx = message[3] if len(message) > 3 else None
        payload: dict | None = None
        for index, item in chunk:
            try:
                if payload_bytes is None or payload_digest != expected_digest:
                    raise RuntimeError("worker received tasks before their payload")
                if payload is None:
                    # Attach errors (SharedSegmentMissingError) surface
                    # here, inside the per-item try, so they ship back
                    # as error replies instead of hanging the parent.
                    payload = loads_shared(payload_bytes)
                fn: Callable[[Any, Any], Any] = payload["fn"]
                context = payload["context"]
                registry = MetricsRegistry()
                if trace_ctx is not None:
                    # Span ids are prefixed by *item* index, so the
                    # merged trace is identical however the chunks
                    # landed on workers.
                    collector = TraceCollector(
                        max_traces=4, id_prefix=f"w{index}."
                    )
                    collector.begin(
                        trace_ctx["trace_id"],
                        parent_id=trace_ctx.get("parent_id"),
                    )
                    registry.set_tracer(collector)
                with using_registry(registry):
                    result = fn(context, item)
                if registry.tracer is not None:
                    registry.tracer.end("ok")
                reply = ("ok", index, result, registry.state_dict())
            except BaseException as exc:  # ship the failure, keep serving
                reply = ("error", index, exc)
            try:
                data = pickle.dumps(reply)
            except Exception as exc:
                data = pickle.dumps(
                    ("error", index, RuntimeError(f"unpicklable worker reply: {exc!r}"))
                )
            outbox.put(data)


@dataclass
class _Worker:
    process: Any
    inbox: Any
    payload_digest: str | None = None


class WorkerPool:
    """Persistent, lazily-spawned pool of ``spawn`` worker processes.

    Context-managed (``with WorkerPool(4) as pool``) or long-lived via
    :func:`get_shared_pool`.  Workers are started on first :meth:`run`
    and kept alive between calls; the shared payload is re-shipped only
    when its pickled bytes change.  Workers are daemonic, so they can
    never outlive the parent even on an unclean exit.
    """

    def __init__(self, processes: int) -> None:
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self.processes = processes
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: list[_Worker] = []
        self._outbox = None
        self._closed = False
        # Shared-memory references held on behalf of the current payload
        # (one per array dumps_shared diverted); released when the
        # payload is replaced or the pool closes.
        self._payload_digest: str | None = None
        self._payload_refs: list[SharedArrayRef] = []

    # -- lifecycle -------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def worker_pids(self) -> list[int]:
        """PIDs of the currently live workers (for tests/introspection)."""
        return [w.process.pid for w in self._workers]

    def _ensure_workers(self, count: int) -> list[_Worker]:
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._outbox is None:
            self._outbox = self._ctx.Queue()
        while len(self._workers) < count:
            inbox = self._ctx.Queue()
            process = self._ctx.Process(
                target=_worker_main, args=(inbox, self._outbox), daemon=True
            )
            process.start()
            self._workers.append(_Worker(process=process, inbox=inbox))
        return self._workers[:count]

    def _release_payload_refs(self) -> None:
        store = get_array_store()
        for ref in self._payload_refs:
            store.release(ref.digest)
        self._payload_refs = []
        self._payload_digest = None

    def close(self, force: bool = False) -> None:
        """Shut the workers down (gracefully unless ``force``)."""
        if self._closed:
            return
        self._closed = True
        self._release_payload_refs()
        for worker in self._workers:
            if not force:
                try:
                    worker.inbox.put(("stop",))
                except Exception:
                    pass
        for worker in self._workers:
            worker.process.join(timeout=None if not force else 0.1)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        for worker in self._workers:
            try:
                worker.inbox.cancel_join_thread()
                worker.inbox.close()
            except Exception:
                pass
        if self._outbox is not None:
            try:
                self._outbox.cancel_join_thread()
                self._outbox.close()
            except Exception:
                pass
        self._workers = []
        self._outbox = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution -------------------------------------------------------
    def run(
        self,
        fn: Callable[[Any, Any], Any],
        items: Sequence[Any],
        context: Any,
        trace_ctx: dict | None = None,
    ) -> list[tuple[Any, dict]]:
        """Map ``fn(context, item)`` over ``items`` on the pool.

        Returns ``[(result, telemetry_state), ...]`` in item order.  The
        first worker exception (by item index) is re-raised, after every
        outstanding task has been drained so the pool stays reusable.
        ``trace_ctx`` (``{"trace_id", "parent_id"}``) propagates the
        caller's live trace into the workers; it travels on the task
        message so the payload cache is untouched.
        """
        payload, refs = dumps_shared({"fn": fn, "context": context})
        digest = hashlib.sha256(payload).hexdigest()
        store = get_array_store()
        if digest == self._payload_digest:
            # Same payload as the one whose references we already hold —
            # the publish() calls above were duplicates; rebalance.
            for ref in refs:
                store.release(ref.digest)
        else:
            # New payload: hold its references, drop the old ones.  The
            # order matters for partial overlap — an array shared by
            # both payloads stays above zero throughout.
            old_refs, self._payload_refs = self._payload_refs, refs
            self._payload_digest = digest
            for ref in old_refs:
                store.release(ref.digest)
        count = min(self.processes, len(items))
        workers = self._ensure_workers(count)
        for worker in workers:
            if worker.payload_digest != digest:
                worker.inbox.put(("payload", digest, payload))
                worker.payload_digest = digest

        # Contiguous chunks, one submission message per worker.
        indexed = list(enumerate(items))
        base, extra = divmod(len(indexed), count)
        start = 0
        for rank, worker in enumerate(workers):
            size = base + (1 if rank < extra else 0)
            if size:
                worker.inbox.put(
                    ("tasks", digest, indexed[start : start + size], trace_ctx)
                )
            start += size

        results: list[tuple[Any, dict] | None] = [None] * len(indexed)
        errors: list[tuple[int, BaseException]] = []
        received = 0
        while received < len(indexed):
            try:
                data = self._outbox.get(timeout=_POLL_INTERVAL_S)
            except queue_module.Empty:
                dead = [w for w in workers if not w.process.is_alive()]
                if dead:
                    pids = [w.process.pid for w in dead]
                    self.close(force=True)
                    raise RuntimeError(
                        f"worker process(es) {pids} died while running tasks"
                    )
                continue
            reply = pickle.loads(data)
            received += 1
            if reply[0] == "ok":
                results[reply[1]] = (reply[2], reply[3])
            else:
                errors.append((reply[1], reply[2]))
        if errors:
            errors.sort(key=lambda pair: pair[0])
            raise errors[0][1]
        return results  # type: ignore[return-value]


_SHARED_POOL: WorkerPool | None = None


def get_shared_pool(processes: int) -> WorkerPool:
    """The long-lived pool :func:`parallel_map` reuses across calls.

    Grows (never shrinks) to the largest ``processes`` requested;
    workers beyond a call's needs simply stay idle.
    """
    global _SHARED_POOL
    if _SHARED_POOL is None or _SHARED_POOL.closed:
        _SHARED_POOL = WorkerPool(processes)
    elif _SHARED_POOL.processes < processes:
        _SHARED_POOL.processes = processes
    return _SHARED_POOL


def shutdown_shared_pool() -> None:
    """Stop the shared pool's workers (tests; registered atexit)."""
    global _SHARED_POOL
    if _SHARED_POOL is not None:
        _SHARED_POOL.close()
        _SHARED_POOL = None


def _atexit_cleanup() -> None:
    # Order matters: stop the workers (they hold attachments) before
    # unlinking whatever segments are still live in the store.
    shutdown_shared_pool()
    if _ARRAY_STORE is not None:
        _ARRAY_STORE.unlink_all()


atexit.register(_atexit_cleanup)


def parallel_map(
    fn: Callable[[Any, Any], Any],
    items: Iterable[Any],
    context: Any = None,
    n_jobs: int | None = None,
    merge_into=None,
    serial_threshold: int = DEFAULT_SERIAL_THRESHOLD,
    reuse_pool: bool = True,
) -> list[Any]:
    """Map ``fn(context, item)`` over ``items``, optionally in parallel.

    Parameters
    ----------
    fn:
        Module-level function of ``(context, item)``.  For parallel runs
        it must be picklable by reference and must derive any randomness
        from its arguments only.
    context:
        Shared read-only payload; pickled once per call and shipped to a
        worker only when it differs from what that worker already holds.
    n_jobs:
        ``None`` or ``1`` runs serially in-process (no pool, ambient
        registry used directly).  ``>= 2`` fans out over that many
        persistent spawn-context workers.
    merge_into:
        Registry receiving worker telemetry (default: the ambient
        registry at call time).
    serial_threshold:
        Workloads of this many items or fewer run serially even when
        ``n_jobs >= 2`` — the determinism contract makes the result
        identical, and tiny fan-outs never win back the IPC cost.
        Set to 0 to force the pool for any multi-item workload.
    reuse_pool:
        ``True`` (default) runs on the shared persistent pool.
        ``False`` spawns a throwaway pool for this call only (isolation
        at the old spawn-per-call cost).

    Returns results in item order.
    """
    work: Sequence[Any] = list(items)
    if n_jobs is not None and n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if n_jobs is None or n_jobs == 1 or len(work) <= max(1, serial_threshold):
        return [fn(context, item) for item in work]

    from .obs import get_registry

    registry = merge_into if merge_into is not None else get_registry()
    tracer = registry.tracer
    trace_ctx = None
    if tracer is not None and tracer.active:
        trace_ctx = {
            "trace_id": tracer.trace_id,
            "parent_id": tracer.current_span_id,
        }
    processes = min(n_jobs, len(work))
    if reuse_pool:
        pairs = get_shared_pool(processes).run(fn, work, context, trace_ctx)
    else:
        with WorkerPool(processes) as pool:
            pairs = pool.run(fn, work, context, trace_ctx)
    # Merge in item order -> deterministic; re-root worker spans under
    # whatever spans are open here (e.g. a worker's "predict" becomes
    # "backtest/predict", matching what a serial run records).
    prefix = registry.current_span_path
    results = []
    for result, state in pairs:
        registry.merge_state_dict(state, span_prefix=prefix)
        results.append(result)
    return results
