"""Long-running service runtime: the closed loop as an always-on daemon.

The paper's system is a production service — telemetry in, forecasts
and scaling actions out, continuously.  This package wraps the batch
:class:`~repro.core.runtime.AutoscalingRuntime` step API in an asyncio
daemon with an operational surface:

* :mod:`repro.service.sources` — pluggable telemetry tick sources
  (in-memory generator, file tail, stdin JSONL);
* :mod:`repro.service.daemon` — :class:`ServiceRuntime`, the event
  loop that steps the runtime per tick, re-plans on schedule or on
  health alert, and coordinates checkpoints;
* :mod:`repro.service.http` — a stdlib-only HTTP+JSON control plane
  (``GET /forecast /decisions /traces /series /health /metrics
  /adaptation``, ``POST /plan /checkpoint /refit /promote
  /rollback``);
* :mod:`repro.service.dashboard` — ``repro-autoscale top``, a
  terminal dashboard polling the control plane;
* :mod:`repro.service.checkpoint` — lossless checkpoint/restore of
  runtime + monitor + drift detectors + model state, so ``repro serve
  --restore`` resumes mid-trace with bit-identical subsequent
  decisions.

Run it from the CLI (``repro-autoscale serve``) or embed it::

    from repro.service import GeneratorSource, ServiceRuntime

    service = ServiceRuntime(runtime, GeneratorSource(test.values))
    service.serve_forever()          # ^C to stop; HTTP on service.port
"""

from .checkpoint import load_checkpoint, restore_from_checkpoint, save_checkpoint
from .daemon import ServiceRuntime
from .dashboard import render_dashboard, run_dashboard
from .http import ControlPlane, HttpError, RawResponse
from .sources import (
    FileTailSource,
    GeneratorSource,
    StdinJsonlSource,
    TelemetrySource,
    parse_tick_line,
)

__all__ = [
    "ServiceRuntime",
    "ControlPlane",
    "HttpError",
    "RawResponse",
    "render_dashboard",
    "run_dashboard",
    "TelemetrySource",
    "GeneratorSource",
    "FileTailSource",
    "StdinJsonlSource",
    "parse_tick_line",
    "save_checkpoint",
    "load_checkpoint",
    "restore_from_checkpoint",
]
