"""Lossless checkpoint/restore for the service runtime.

A checkpoint is a directory:

* ``state.json`` — the loop state: runtime
  (:meth:`~repro.core.runtime.AutoscalingRuntime.state_dict`), health
  monitor + drift detectors + alert engine
  (:meth:`~repro.obs.monitor.ModelHealthMonitor.state_dict`), the
  source position, the forecaster's sampler rng state, and the config
  the daemon was launched with (so ``repro-autoscale serve --restore``
  can rebuild the planner identically);
* ``model.npz`` — the forecaster's weights, written through the
  forecaster's own ``save()`` (which persists via
  :mod:`repro.nn.serialization`), when the model supports it.
  Deterministically-fitted models without a ``save()`` (seasonal
  naive, ARIMA) are rebuilt from config by refitting instead.

``state.json`` is written atomically (temp file + rename), so a crash
mid-checkpoint leaves the previous checkpoint intact; the JSONL event
log written by ``--telemetry`` / ``--decisions-out`` (crash-safe
:class:`~repro.obs.sinks.JsonlSink`) covers the tail between the last
checkpoint and the crash.

The restore guarantee: given the same remaining tick stream (a
replayable source resumed at the recorded position), a restored loop
produces bit-identical subsequent decisions, monitor windows, drift
events, and alerts as the uninterrupted run — including stochastic
forecasters, whose ancestral-sampling rng state round-trips exactly.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = [
    "CHECKPOINT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "restore_from_checkpoint",
]

CHECKPOINT_VERSION = 1

_STATE_FILE = "state.json"
_MODEL_FILE = "model.npz"


def _find_forecaster(planner: Any):
    """The forecaster behind a planner, unwrapping fault wrappers."""
    seen = set()
    node = planner
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        forecaster = getattr(node, "forecaster", None)
        if forecaster is not None:
            return forecaster
        node = getattr(node, "inner", None)
    return None


def _planner_state(planner: Any) -> dict | None:
    """Mutable planner-wrapper state (e.g. FlakyPlanner's fault queue).

    ``state_dict`` must be defined on the planner's own class —
    delegating wrappers forward attribute lookups to their inner
    planner, and saving an inner planner's state under the wrapper's
    key would corrupt the restore.
    """
    if "state_dict" in type(planner).__dict__:
        return planner.state_dict()
    return None


def _restore_planner(planner: Any, state: dict | None) -> None:
    if state is None:
        return
    if "load_state_dict" not in type(planner).__dict__:
        raise ValueError(
            "checkpoint carries planner state but the restored planner "
            "cannot load it — planner/config mismatch"
        )
    planner.load_state_dict(state)


def _sampler_state(planner: Any) -> dict | None:
    """Bit-exact rng state of a stochastic forecaster's sampler."""
    forecaster = _find_forecaster(planner)
    rng = getattr(forecaster, "_sample_rng", None)
    if rng is None:
        return None
    return rng.bit_generator.state


def _restore_sampler(planner: Any, state: dict | None) -> None:
    if state is None:
        return
    forecaster = _find_forecaster(planner)
    rng = getattr(forecaster, "_sample_rng", None)
    if rng is None:
        raise ValueError(
            "checkpoint carries sampler rng state but the restored planner "
            "has no stochastic sampler — model/config mismatch"
        )
    rng.bit_generator.state = state


def save_checkpoint(
    path: str | Path,
    *,
    runtime,
    planner=None,
    config: dict | None = None,
    source_position: int = 0,
    adaptation=None,
) -> Path:
    """Write a complete checkpoint directory; returns its path.

    Parameters
    ----------
    path:
        Checkpoint directory (created if needed; overwritten in place).
    runtime:
        The :class:`~repro.core.runtime.AutoscalingRuntime` to snapshot
        (its attached monitor rides along).
    planner:
        The live planner; used to capture sampler rng state and, when
        the underlying forecaster supports ``save()``, model weights.
        Defaults to ``runtime.planner``.
    config:
        Launch configuration to embed — ``serve --restore`` rebuilds
        the planner/source from it before loading state.
    source_position:
        Ticks the telemetry source has emitted; a replayable source is
        resumed from here.
    adaptation:
        Optional :class:`~repro.adaptation.AdaptationManager`; its full
        state machine (candidate and rollback models included, embedded
        as base64 pickle blobs) is checkpointed under ``"adaptation"``
        so a restored daemon resumes mid-shadow bit-identically.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    planner = planner if planner is not None else runtime.planner

    model_file = None
    forecaster = _find_forecaster(planner)
    if forecaster is not None and hasattr(forecaster, "save"):
        forecaster.save(path / _MODEL_FILE)
        model_file = _MODEL_FILE

    monitor = getattr(runtime, "monitor", None)
    state = {
        "version": CHECKPOINT_VERSION,
        "config": dict(config) if config else {},
        "source_position": int(source_position),
        "runtime": runtime.state_dict(),
        "monitor": monitor.state_dict() if monitor is not None else None,
        "sampler": _sampler_state(planner),
        # Fault wrappers (FlakyPlanner) consume scheduled events as they
        # fire; that progress must survive the crash or restored runs
        # would re-fire already-consumed faults.
        "planner": _planner_state(planner),
        "model_file": model_file,
        "adaptation": (
            adaptation.state_dict() if adaptation is not None else None
        ),
    }
    # Atomic publish: a crash mid-write must not corrupt the previous
    # checkpoint under the same path.
    tmp = path / (_STATE_FILE + ".tmp")
    tmp.write_text(json.dumps(state), encoding="utf-8")
    os.replace(tmp, path / _STATE_FILE)
    return path


def load_checkpoint(path: str | Path) -> dict:
    """Read and validate a checkpoint's ``state.json``."""
    path = Path(path)
    state_path = path / _STATE_FILE if path.is_dir() else path
    try:
        state = json.loads(state_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FileNotFoundError(f"no checkpoint at {path} ({state_path} missing)")
    except json.JSONDecodeError as error:
        raise ValueError(f"corrupt checkpoint {state_path}: {error}") from error
    version = state.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    return state


def restore_from_checkpoint(
    checkpoint: "dict | str | Path",
    *,
    runtime,
    planner=None,
    adaptation=None,
) -> int:
    """Load checkpoint state into freshly-constructed objects.

    The caller rebuilds the runtime, monitor, and planner from the
    checkpoint's ``config`` (architecture and rules are configuration,
    not state), then this function restores the dynamic state: loop
    clock and plan, monitor windows and detectors, model weights,
    sampler rng, and — when the checkpoint carries it — the adaptation
    state machine (restored last, so a promoted model overrides the
    config-rebuilt forecaster).  Returns the source position to resume
    from.
    """
    state = (
        checkpoint if isinstance(checkpoint, dict) else load_checkpoint(checkpoint)
    )
    planner = planner if planner is not None else runtime.planner
    runtime.load_state_dict(state["runtime"])
    monitor = getattr(runtime, "monitor", None)
    if state["monitor"] is not None:
        if monitor is None:
            raise ValueError(
                "checkpoint carries monitor state but the restored runtime "
                "has no monitor attached — pass the same --monitor flags"
            )
        monitor.load_state_dict(state["monitor"])
    model_file = state.get("model_file")
    if model_file is not None and not isinstance(checkpoint, dict):
        forecaster = _find_forecaster(planner)
        if forecaster is not None and hasattr(forecaster, "load"):
            forecaster.load(Path(checkpoint) / model_file)
    _restore_sampler(planner, state.get("sampler"))
    _restore_planner(planner, state.get("planner"))
    if state.get("adaptation") is not None:
        if adaptation is None:
            raise ValueError(
                "checkpoint carries adaptation state but no "
                "AdaptationManager was passed — restore with --adapt"
            )
        adaptation.load_state_dict(state["adaptation"])
    return int(state["source_position"])
