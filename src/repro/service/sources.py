"""Telemetry tick sources for the service runtime.

A *source* is an async iterable of workload observations — one float
per interval.  Three implementations cover the deployment shapes the
daemon needs:

* :class:`GeneratorSource` — an in-memory series (synthetic traces,
  tests, replays);
* :class:`FileTailSource` — read a file of ticks, optionally following
  it as a producer appends (the classic ``tail -f`` integration);
* :class:`StdinJsonlSource` — consume ticks piped into the process.

Every source counts the ticks it has emitted (:attr:`position`) and
supports :meth:`seek` to skip ticks already processed before a restore
— for replayable sources (memory, file) this is a true random-access
skip, for stdin it consumes and discards.

Tick lines are either a bare number (``123.4``) or a JSON object with a
``value`` field (``{"value": 123.4}``); blank lines and ``#`` comments
are ignored.  :func:`parse_tick_line` implements the format.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path
from typing import AsyncIterator, Iterable, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "TelemetrySource",
    "GeneratorSource",
    "FileTailSource",
    "StdinJsonlSource",
    "parse_tick_line",
]


def parse_tick_line(line: str) -> float | None:
    """One tick from one line; None for blanks and comments.

    Accepts a bare number or a JSON object carrying ``value``.  Raises
    :class:`ValueError` for anything else — a malformed telemetry line
    is an upstream bug, not something to silently drop (the runtime's
    ``invalid_policy`` governs *semantically* bad values; this guards
    the wire format).
    """
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    if text.startswith("{"):
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"malformed telemetry line: {text!r}") from error
        if "value" not in record:
            raise ValueError(f"telemetry record missing 'value': {text!r}")
        return float(record["value"])
    try:
        return float(text)
    except ValueError as error:
        raise ValueError(f"malformed telemetry line: {text!r}") from error


@runtime_checkable
class TelemetrySource(Protocol):
    """Structural contract every tick source satisfies."""

    @property
    def position(self) -> int:
        """Ticks emitted so far (monotone; checkpoints record this)."""
        ...

    def seek(self, position: int) -> None:
        """Skip ahead so the next tick emitted is number ``position``."""
        ...

    def ticks(self) -> AsyncIterator[float]:
        """The tick stream itself."""
        ...


class GeneratorSource:
    """Serve ticks from an in-memory sequence.

    Parameters
    ----------
    values:
        The workload series (any iterable of floats; materialised).
    interval:
        Seconds to sleep between ticks — 0 (default) replays as fast as
        the loop can step, a positive value paces the stream like a
        live feed.
    """

    def __init__(self, values: Iterable[float], interval: float = 0.0) -> None:
        self.values = np.asarray(list(values), dtype=np.float64)
        self.interval = float(interval)
        self._position = 0

    @property
    def position(self) -> int:
        return self._position

    def __len__(self) -> int:
        return len(self.values)

    def seek(self, position: int) -> None:
        if not 0 <= position <= len(self.values):
            raise ValueError(
                f"seek position {position} outside [0, {len(self.values)}]"
            )
        self._position = int(position)

    async def ticks(self) -> AsyncIterator[float]:
        while self._position < len(self.values):
            value = float(self.values[self._position])
            self._position += 1
            yield value
            if self.interval > 0:
                await asyncio.sleep(self.interval)


class FileTailSource:
    """Read ticks from a file, optionally following appended lines.

    Parameters
    ----------
    path:
        Tick file (bare numbers or ``{"value": ...}`` JSONL).
    follow:
        When True, keep polling for new lines after EOF instead of
        stopping — the daemon stays up as long as the producer keeps
        writing.  When False (default) the stream ends at EOF.
    poll_interval:
        Seconds between EOF polls in follow mode.
    """

    def __init__(
        self,
        path: str | Path,
        follow: bool = False,
        poll_interval: float = 0.2,
    ) -> None:
        self.path = Path(path)
        self.follow = follow
        self.poll_interval = float(poll_interval)
        self._position = 0
        self._skip = 0

    @property
    def position(self) -> int:
        return self._position

    def seek(self, position: int) -> None:
        if position < 0:
            raise ValueError("seek position must be >= 0")
        self._skip = int(position)
        self._position = int(position)

    async def ticks(self) -> AsyncIterator[float]:
        skipped = 0
        with self.path.open("r", encoding="utf-8") as handle:
            while True:
                line = handle.readline()
                if not line:
                    if not self.follow:
                        return
                    await asyncio.sleep(self.poll_interval)
                    continue
                value = parse_tick_line(line)
                if value is None:
                    continue
                if skipped < self._skip:
                    skipped += 1
                    continue
                self._position += 1
                yield value


class StdinJsonlSource:
    """Consume ticks piped to the process on stdin.

    Blocking reads happen in the default executor so the event loop
    (and the HTTP control plane on it) stays responsive.  ``seek``
    consumes and discards — stdin cannot rewind, so a restore against a
    stdin source expects the producer to resend the full stream.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stdin
        self._position = 0
        self._skip = 0

    @property
    def position(self) -> int:
        return self._position

    def seek(self, position: int) -> None:
        if position < 0:
            raise ValueError("seek position must be >= 0")
        self._skip = int(position)
        self._position = int(position)

    async def ticks(self) -> AsyncIterator[float]:
        loop = asyncio.get_running_loop()
        skipped = 0
        while True:
            line = await loop.run_in_executor(None, self.stream.readline)
            if not line:
                return
            value = parse_tick_line(line)
            if value is None:
                continue
            if skipped < self._skip:
                skipped += 1
                continue
            self._position += 1
            yield value
