"""The always-on service daemon around the runtime's step API.

:class:`ServiceRuntime` turns the batch closed loop into an event-driven
process, the deployment shape the paper's system actually runs as:

* **ingest** — telemetry ticks stream in from a pluggable
  :class:`~repro.service.sources.TelemetrySource`;
* **step** — each tick drives exactly one
  :meth:`~repro.core.runtime.AutoscalingRuntime.step` (maybe-plan →
  actuate → observe → monitor);
* **plan on schedule or on alert** — the runtime re-plans at its
  ``replan_every`` cadence, and when the health monitor's alert engine
  fires, the daemon requests an immediate replan at the next tick
  (``plan_on_alert``);
* **control plane** — a stdlib HTTP+JSON server
  (:class:`~repro.service.http.ControlPlane`) on the same event loop
  serves live forecasts, decisions, health, and the obs registry, and
  accepts ``POST /plan`` / ``POST /checkpoint``;
* **checkpoint/restore** — on demand (HTTP), automatically after
  ``checkpoint_every`` ticks, or at a fixed ``checkpoint_at`` tick; a
  restored daemon resumes mid-trace with bit-identical subsequent
  decisions (see :mod:`repro.service.checkpoint`).

Every committed decision is appended to the crash-safe
``decision_log`` (a :class:`~repro.obs.sinks.JsonlSink`), giving an
event log that survives a kill between checkpoints.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from pathlib import Path
from typing import Any

from ..adaptation import AdaptationError, AdaptationManager
from ..core.runtime import AutoscalingRuntime, Decision, StepResult
from ..obs import PROMETHEUS_CONTENT_TYPE, get_registry, render_prometheus
from ..obs.sinks import JsonlSink
from ..obs.trace import TraceCollector
from .checkpoint import save_checkpoint
from .http import ControlPlane, HttpError, RawResponse
from .sources import TelemetrySource

__all__ = ["ServiceRuntime"]

#: How many recent ticks ``GET /series`` retains for dashboards.
_SERIES_RING = 512


def _parse_limit(query: dict, default: int) -> int:
    """``?limit=N`` with a 400 on anything that is not a positive int."""
    raw = query.get("limit", default)
    try:
        limit = int(raw)
    except (TypeError, ValueError):
        raise HttpError(400, f"limit must be an integer, got {raw!r}")
    if limit < 1:
        raise HttpError(400, "limit must be >= 1")
    return limit


def _decision_payload(decision: Decision) -> dict:
    """The control plane / decision-log form of one audit-log entry."""
    plan = decision.plan
    return {
        "tick": int(decision.time_index),
        "source": decision.source,
        "strategy": plan.strategy,
        "horizon": int(plan.horizon),
        "nodes": plan.nodes.tolist(),
        "nodes_first": int(plan.nodes[0]),
    }


class ServiceRuntime:
    """Asyncio daemon: telemetry in, scaling decisions and HTTP out.

    Parameters
    ----------
    runtime:
        The closed-loop :class:`~repro.core.runtime.AutoscalingRuntime`
        (with its monitor already attached, when health tracking is
        wanted).
    source:
        Where ticks come from; already ``seek()``-ed past processed
        ticks when restoring.
    host, port:
        Control-plane bind address; ``port=0`` (default) picks an
        ephemeral port, readable from :attr:`port` once serving.
    tick_interval:
        Extra seconds to sleep between steps (paces a replayed trace
        like a live feed; sources may additionally pace themselves).
    checkpoint_dir:
        Where ``POST /checkpoint`` and automatic checkpoints write;
        None disables checkpointing.
    checkpoint_every:
        Write a checkpoint every N processed ticks (None: only on
        demand).
    checkpoint_at:
        Write one checkpoint when the session has processed exactly N
        ticks — the deterministic hook the restore round-trip tests and
        the CI smoke job use.
    max_ticks:
        Stop after processing N ticks this session (None: run until
        the source ends or :meth:`request_stop`).
    config:
        Launch configuration embedded into checkpoints, so a restore
        can rebuild planner/source identically.
    decision_log:
        Path for the crash-safe JSONL decision log (one record per
        committed decision, flushed immediately).
    plan_on_alert:
        Re-plan at the next tick whenever the monitor's alert engine
        fires a new alert.
    adaptation:
        Optional :class:`~repro.adaptation.AdaptationManager`; when
        attached, every step also advances the adaptation loop (alert-
        triggered refits, shadow scoring, canary promotion/rollback)
        and the control plane gains ``GET /adaptation`` and
        ``POST /refit`` / ``/promote`` / ``/rollback``.  Its state
        rides along in checkpoints.
    tracer:
        Optional :class:`~repro.obs.trace.TraceCollector`; when given,
        :meth:`run` attaches it to the ambient registry so every step
        produces a trace record, and ``GET /traces`` serves the ring.
    linger:
        Seconds to keep the control plane up after the tick stream
        ends (lets probes scrape final state; 0 exits immediately).
    """

    def __init__(
        self,
        runtime: AutoscalingRuntime,
        source: TelemetrySource,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tick_interval: float = 0.0,
        checkpoint_dir: "str | Path | None" = None,
        checkpoint_every: "int | None" = None,
        checkpoint_at: "int | None" = None,
        max_ticks: "int | None" = None,
        config: "dict | None" = None,
        decision_log: "str | Path | None" = None,
        plan_on_alert: bool = True,
        adaptation: "AdaptationManager | None" = None,
        tracer: "TraceCollector | None" = None,
        linger: float = 0.0,
    ) -> None:
        self.runtime = runtime
        self.source = source
        self.tick_interval = float(tick_interval)
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.checkpoint_every = checkpoint_every
        self.checkpoint_at = checkpoint_at
        self.max_ticks = max_ticks
        self.config = dict(config) if config else {}
        self.decision_log_path = Path(decision_log) if decision_log else None
        self.plan_on_alert = plan_on_alert
        self.adaptation = adaptation
        self.tracer = tracer
        self.linger = float(linger)
        self.series: deque[dict] = deque(maxlen=_SERIES_RING)

        self.control = ControlPlane(self._routes(), host=host, port=port)
        self.ticks_processed = 0  # this session (restored ticks excluded)
        self.alert_replans = 0
        self.checkpoints_written = 0
        self.status = "starting"
        self.last_step: StepResult | None = None
        # Decision-log high-water mark: restored decisions are history,
        # only decisions committed by *this* session are logged.
        self._logged_decisions = len(runtime.decisions)
        self._decision_sink: JsonlSink | None = None
        self._stop = asyncio.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started_at = time.monotonic()
        self._seen_alerts = self._alert_count()

    # -- public surface -------------------------------------------------
    @property
    def port(self) -> int | None:
        """Control-plane port (None until serving)."""
        return self.control.port

    def serve_forever(self) -> None:
        """Blocking entry point: run the daemon to completion."""
        asyncio.run(self.run())

    def request_stop(self) -> None:
        """Stop the daemon after the current step (thread-safe)."""
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._stop.set)
        else:
            self._stop.set()

    async def run(self) -> None:
        """The daemon: control plane up, step loop, linger, shutdown."""
        self._loop = asyncio.get_running_loop()
        self._started_at = time.monotonic()
        if self.decision_log_path is not None:
            self._decision_sink = JsonlSink(self.decision_log_path)
        await self.control.start()
        self.status = "serving"
        previous_tracer = None
        if self.tracer is not None:
            previous_tracer = get_registry().set_tracer(self.tracer)
        try:
            await self._step_loop()
            self.status = "draining"
            if self.linger > 0 and not self._stop.is_set():
                try:
                    await asyncio.wait_for(self._stop.wait(), timeout=self.linger)
                except asyncio.TimeoutError:
                    pass
        finally:
            self.status = "stopped"
            if self.tracer is not None:
                get_registry().set_tracer(previous_tracer)
            await self.control.stop()
            if self._decision_sink is not None:
                self._decision_sink.close()

    # -- the loop --------------------------------------------------------
    async def _step_loop(self) -> None:
        metrics = get_registry()
        async for value in self.source.ticks():
            if self._stop.is_set():
                return
            result = self.runtime.step(value)
            self.last_step = result
            self.ticks_processed += 1
            self.series.append(
                {
                    "tick": result.tick,
                    "workload": (
                        float(result.observed)
                        if result.observed is not None
                        else None
                    ),
                    "nodes": result.target_nodes,
                }
            )
            metrics.counter("service.ticks").inc()
            self._drain_decisions()
            if self.plan_on_alert:
                self._check_alerts()
            if self.adaptation is not None:
                self.adaptation.on_tick(
                    result.tick, result.observed, result.planned
                )
            metrics.emit_event(
                "service",
                "service.step",
                tick=result.tick,
                target_nodes=result.target_nodes,
                source=result.source,
                planned=result.planned,
            )
            if (
                self.checkpoint_at is not None
                and self.ticks_processed == self.checkpoint_at
            ) or (
                self.checkpoint_every
                and self.ticks_processed % self.checkpoint_every == 0
            ):
                self.write_checkpoint()
            if self.max_ticks is not None and self.ticks_processed >= self.max_ticks:
                return
            if self.tick_interval > 0:
                try:
                    await asyncio.wait_for(
                        self._stop.wait(), timeout=self.tick_interval
                    )
                    return  # stop requested during the pause
                except asyncio.TimeoutError:
                    pass
            else:
                # Yield so control-plane requests interleave between steps.
                await asyncio.sleep(0)

    def _alert_count(self) -> int:
        monitor = self.runtime.monitor
        if monitor is None or monitor.alerts is None:
            return 0
        return len(monitor.alerts.alerts)

    def _check_alerts(self) -> None:
        """A newly fired health alert triggers a replan at the next tick."""
        count = self._alert_count()
        if count > self._seen_alerts:
            self.runtime.request_replan()
            self.alert_replans += count - self._seen_alerts
            get_registry().counter("service.alert_replans").inc(
                count - self._seen_alerts
            )
        self._seen_alerts = count

    def _drain_decisions(self) -> None:
        """Append every not-yet-logged committed decision to the log.

        The runtime records decisions from several phases (predictive
        and degraded plans in maybe-plan, reactive fallback in actuate),
        so the daemon drains its audit log by high-water mark rather
        than trusting any single phase's return value.
        """
        decisions = self.runtime.decisions
        for decision in decisions[self._logged_decisions :]:
            if self._decision_sink is not None:
                self._decision_sink.emit(
                    {"kind": "decision", **_decision_payload(decision)}
                )
            get_registry().counter(
                "service.decisions", source=decision.source
            ).inc()
        self._logged_decisions = len(decisions)

    # -- checkpointing ----------------------------------------------------
    def write_checkpoint(self, path: "str | Path | None" = None) -> Path:
        """Write a checkpoint now; returns the checkpoint directory."""
        target = Path(path) if path else self.checkpoint_dir
        if target is None:
            raise HttpError(409, "no checkpoint directory configured")
        written = save_checkpoint(
            target,
            runtime=self.runtime,
            config=self.config,
            source_position=self.source.position,
            adaptation=self.adaptation,
        )
        self.checkpoints_written += 1
        get_registry().counter("service.checkpoints").inc()
        return written

    # -- control-plane handlers -------------------------------------------
    def _routes(self) -> dict:
        return {
            ("GET", "/health"): self._handle_health,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/forecast"): self._handle_forecast,
            ("GET", "/decisions"): self._handle_decisions,
            ("GET", "/traces"): self._handle_traces,
            ("GET", "/series"): self._handle_series,
            ("GET", "/adaptation"): self._handle_adaptation,
            ("POST", "/plan"): self._handle_plan,
            ("POST", "/checkpoint"): self._handle_checkpoint,
            ("POST", "/refit"): self._handle_refit,
            ("POST", "/promote"): self._handle_promote,
            ("POST", "/rollback"): self._handle_rollback,
        }

    def _handle_health(self, query: dict, body: Any) -> dict:
        runtime = self.runtime
        monitor = runtime.monitor
        return {
            "status": self.status,
            "uptime_s": time.monotonic() - self._started_at,
            "tick": runtime.tick,
            "ticks_processed": self.ticks_processed,
            "source_position": self.source.position,
            "decisions": len(runtime.decisions),
            "planner_errors": runtime.planner_errors,
            "degraded_intervals": runtime.degraded_intervals,
            "invalid_observations": runtime.invalid_observations,
            "alert_replans": self.alert_replans,
            "checkpoints_written": self.checkpoints_written,
            "last_target_nodes": (
                self.last_step.target_nodes if self.last_step else None
            ),
            "alerts_fired": self._alert_count(),
            "phases": (
                self.last_step.phase_seconds if self.last_step else None
            ),
            "slo": (
                monitor.slos.status()
                if monitor is not None and monitor.slos is not None
                else None
            ),
            "monitor": monitor.summary() if monitor is not None else None,
            "adaptation": (
                self.adaptation.status()
                if self.adaptation is not None
                else None
            ),
        }

    def _handle_metrics(self, query: dict, body: Any) -> Any:
        fmt = query.get("format", "json")
        if fmt == "prometheus":
            return RawResponse(
                render_prometheus(get_registry().snapshot()),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        if fmt != "json":
            raise HttpError(
                400, f"unknown format {fmt!r} (expected json or prometheus)"
            )
        return get_registry().snapshot()

    def _handle_forecast(self, query: dict, body: Any) -> dict:
        plan = self.runtime._current_plan
        if plan is None:
            raise HttpError(409, "no committed plan yet (cold start)")
        payload = {
            "tick": self.runtime.tick,
            "strategy": plan.strategy,
            "horizon": int(plan.horizon),
            "nodes": plan.nodes.tolist(),
            "degraded": bool(plan.metadata.get("degraded", False)),
        }
        levels = plan.metadata.get("forecast_levels")
        values = plan.metadata.get("forecast_values")
        if levels is not None and values is not None:
            payload["levels"] = [float(level) for level in levels]
            payload["values"] = [
                [float(v) for v in row] for row in values
            ]
        return payload

    def _handle_decisions(self, query: dict, body: Any) -> dict:
        limit = _parse_limit(query, default=50)
        decisions = self.runtime.decisions[-limit:]
        return {
            "total": len(self.runtime.decisions),
            "decisions": [_decision_payload(d) for d in decisions],
        }

    def _handle_traces(self, query: dict, body: Any) -> dict:
        limit = _parse_limit(query, default=10)
        tracer = self.tracer or get_registry().tracer
        if tracer is None:
            return {"total": 0, "tracing": False, "traces": []}
        traces = tracer.traces(limit)
        return {
            "total": len(tracer.finished),
            "tracing": True,
            "traces": traces,
        }

    def _handle_series(self, query: dict, body: Any) -> dict:
        limit = _parse_limit(query, default=120)
        points = list(self.series)[-limit:]
        return {
            "total": len(self.series),
            "threshold": float(self.runtime.threshold),
            "points": points,
        }

    def _handle_plan(self, query: dict, body: Any) -> dict:
        decision = self.runtime.maybe_plan(force=True)
        if decision is None:
            raise HttpError(
                409,
                "cannot plan yet: context window not full "
                f"({len(self.runtime._history)}/{self.runtime.context_length})",
            )
        self._drain_decisions()
        return _decision_payload(decision)

    def _require_adaptation(self) -> AdaptationManager:
        if self.adaptation is None:
            raise HttpError(
                409, "adaptation is not enabled (start with --adapt)"
            )
        return self.adaptation

    def _handle_adaptation(self, query: dict, body: Any) -> dict:
        return self._require_adaptation().status()

    def _handle_refit(self, query: dict, body: Any) -> dict:
        manager = self._require_adaptation()
        body = body if isinstance(body, dict) else {}
        strategy = body.get("strategy")
        if strategy is not None and strategy not in ("warm", "pool"):
            raise HttpError(
                400, f"strategy must be 'warm' or 'pool', got {strategy!r}"
            )
        try:
            return manager.refit(
                reason=str(body.get("reason", "operator")),
                strategy=strategy,
                force=bool(body.get("force", False)),
            )
        except AdaptationError as error:
            raise HttpError(409, str(error))

    def _handle_promote(self, query: dict, body: Any) -> dict:
        manager = self._require_adaptation()
        body = body if isinstance(body, dict) else {}
        try:
            return manager.promote(reason=str(body.get("reason", "operator")))
        except AdaptationError as error:
            raise HttpError(409, str(error))

    def _handle_rollback(self, query: dict, body: Any) -> dict:
        manager = self._require_adaptation()
        body = body if isinstance(body, dict) else {}
        try:
            return manager.rollback(reason=str(body.get("reason", "operator")))
        except AdaptationError as error:
            raise HttpError(409, str(error))

    def _handle_checkpoint(self, query: dict, body: Any) -> dict:
        path = None
        if isinstance(body, dict) and body.get("path"):
            path = body["path"]
        written = self.write_checkpoint(path)
        return {
            "path": str(written),
            "tick": self.runtime.tick,
            "source_position": self.source.position,
        }
