"""Stdlib-only HTTP+JSON control plane for the service daemon.

A deliberately tiny HTTP/1.1 server on :func:`asyncio.start_server` —
no third-party dependency, one connection per request, everything JSON.
It runs on the *same* event loop as the stepping daemon, so handlers
read live state without locks.

Endpoints (the operational surface the daemon exposes):

====== ============== ==================================================
Method Path           Meaning
====== ============== ==================================================
GET    /health        liveness + loop counters + SLO status + health
GET    /metrics       obs registry snapshot (``?format=prometheus``
                      for the text exposition)
GET    /forecast      quantile forecast behind the committed plan
GET    /decisions     recent audit log (``?limit=N``, newest last)
GET    /traces        recent step traces (``?limit=N``, newest last)
GET    /series        recent workload/capacity points for dashboards
POST   /plan          force a replan now; returns the new decision
POST   /checkpoint    write a checkpoint; returns its path
====== ============== ==================================================

Unknown paths are 404, wrong methods 405, handler-refused operations
carry their own status (e.g. 409 when planning is impossible during
cold start).  Responses always close the connection — the control
plane is for curl/monitoring probes, not high-QPS serving.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

__all__ = ["ControlPlane", "HttpError", "RawResponse"]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}

#: Request bodies beyond this are refused (the control plane accepts
#: only empty or tiny JSON bodies).
_MAX_BODY = 1 << 20


class HttpError(Exception):
    """Handler-raised error carrying an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class RawResponse:
    """A handler result served verbatim instead of JSON-encoded.

    The escape hatch for non-JSON payloads — the Prometheus text
    exposition at ``/metrics?format=prometheus`` returns one of these.
    """

    def __init__(
        self,
        body: str | bytes,
        content_type: str = "text/plain; charset=utf-8",
        status: int = 200,
    ) -> None:
        self.body = body.encode("utf-8") if isinstance(body, str) else body
        self.content_type = content_type
        self.status = status


class ControlPlane:
    """The daemon's HTTP server: routes requests to service callbacks.

    Parameters
    ----------
    routes:
        ``(method, path) -> handler``; a handler takes the parsed query
        dict and the decoded JSON body (None when empty) and returns
        the JSON-safe response payload, or raises :class:`HttpError`.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port, readable from
        :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        routes: dict[tuple[str, str], Callable[[dict, Any], Any]],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.routes = dict(routes)
        self.host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None
        self.requests_served = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling ----------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as error:  # a broken handler must not kill the daemon
            status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
        if isinstance(payload, RawResponse):
            status = payload.status
            content_type = payload.content_type
            body = payload.body
        else:
            content_type = "application/json"
            body = json.dumps(payload, default=_jsonable).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except ConnectionError:
            pass  # client went away; nothing to salvage
        finally:
            writer.close()
        self.requests_served += 1

    async def _respond(self, reader: asyncio.StreamReader) -> tuple[int, Any]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": f"malformed request line: {request_line!r}"}
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY:
            return 400, {"error": f"body too large ({length} bytes)"}
        raw = await reader.readexactly(length) if length else b""

        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        body: Any = None
        if raw:
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                return 400, {"error": "request body is not valid JSON"}

        handler = self.routes.get((method, path))
        if handler is None:
            if any(p == path for _, p in self.routes):
                return 405, {"error": f"{method} not allowed on {path}"}
            return 404, {"error": f"no such endpoint: {path}"}
        try:
            return 200, handler(query, body)
        except HttpError as error:
            return error.status, {"error": error.message}


def _jsonable(value):
    """Fallback encoder for numpy scalars/arrays in payloads."""
    if hasattr(value, "item"):
        try:
            return value.item()
        except (ValueError, TypeError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)
