"""``repro-autoscale top`` — a terminal dashboard over the control plane.

Zero dependencies beyond the stdlib: it polls the daemon's HTTP
control plane (``/health``, ``/series``, ``/decisions``) and redraws a
compact operator view every ``--interval`` seconds:

* loop counters (tick, decisions, planner errors, degraded intervals);
* SLO error budgets — consumed fraction as a bar, burn rates, and a
  ``FIRING`` marker when a burn-rate alert is active;
* the most recent scaling decisions (tick, source, first-step nodes);
* a workload-vs-capacity sparkline (observed workload against
  ``nodes x threshold``), the at-a-glance picture of whether the
  autoscaler is keeping up.

``run_dashboard(..., once=True)`` prints a single frame without ANSI
clearing — that is what the CI smoke job and the end-to-end test call.
Rendering is pure (:func:`render_dashboard`), so tests never need a
terminal.
"""

from __future__ import annotations

import http.client
import json
import time

__all__ = ["fetch", "render_dashboard", "run_dashboard", "sparkline"]

#: Eight-level block ramp; index 0 (space) means "no data".
SPARK = " ▁▂▃▄▅▆▇█"

_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_DIM = "\x1b[2m"
_RESET = "\x1b[0m"


def fetch(host: str, port: int, path: str, timeout: float = 5.0) -> dict:
    """GET a control-plane endpoint and decode the JSON payload."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        raw = response.read()
    finally:
        conn.close()
    payload = json.loads(raw.decode("utf-8"))
    if response.status != 200:
        message = payload.get("error", raw.decode("utf-8", "replace"))
        raise RuntimeError(f"GET {path} -> {response.status}: {message}")
    return payload


def sparkline(values: "list[float | None]", width: int = 60) -> str:
    """Render values as a fixed-width unicode sparkline.

    None values (rejected observations) render as spaces; the scale is
    shared across the whole window so capacity and workload sparklines
    drawn from the same maximum are comparable.
    """
    if width < 1:
        return ""
    tail = values[-width:]
    finite = [v for v in tail if v is not None]
    if not finite:
        return " " * width
    top = max(max(finite), 1e-12)
    chars = []
    for v in tail:
        if v is None:
            chars.append(SPARK[0])
            continue
        level = int(round((max(v, 0.0) / top) * (len(SPARK) - 2))) + 1
        chars.append(SPARK[min(level, len(SPARK) - 1)])
    return "".join(chars).rjust(width)


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(min(max(fraction, 0.0), 1.0) * width))
    return "#" * filled + "." * (width - filled)


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def render_dashboard(
    health: dict,
    series: "dict | None" = None,
    decisions: "dict | None" = None,
    width: int = 80,
    color: bool = True,
) -> str:
    """Pure renderer: control-plane payloads in, one frame of text out."""
    lines: list[str] = []
    status = health.get("status", "?")
    status_code = _GREEN if status == "serving" else _YELLOW
    lines.append(
        _paint("repro-autoscale top", _BOLD, color)
        + f"  status={_paint(str(status), status_code, color)}"
        + f"  tick={health.get('tick', '?')}"
        + f"  uptime={health.get('uptime_s', 0.0):.0f}s"
    )
    lines.append(
        f"  decisions={health.get('decisions', 0)}"
        f"  planner_errors={health.get('planner_errors', 0)}"
        f"  degraded={health.get('degraded_intervals', 0)}"
        f"  alert_replans={health.get('alert_replans', 0)}"
        f"  alerts={health.get('alerts_fired', 0)}"
    )
    phases = health.get("phases") or {}
    if phases:
        timings = "  ".join(
            f"{name}={seconds * 1e3:.1f}ms" for name, seconds in phases.items()
        )
        lines.append(_paint(f"  last step: {timings}", _DIM, color))

    slos = health.get("slo") or []
    if slos:
        lines.append("")
        lines.append(_paint("SLO error budgets", _BOLD, color))
        for entry in slos:
            objective = entry.get("objective", "?")
            if not entry.get("healthy", True):
                flag = _paint("FIRING", _RED, color)
            else:
                flag = _paint("ok", _GREEN, color)
            if entry.get("slo_kind") == "latency":
                value = entry.get("value_s")
                shown = "n/a" if value is None else f"{value * 1e3:.1f}ms"
                lines.append(
                    f"  [{flag}] {objective}  p{entry.get('quantile', '?')}"
                    f"={shown} vs {entry.get('threshold_s', 0.0) * 1e3:.0f}ms"
                )
                continue
            consumed = float(entry.get("budget_consumed", 0.0) or 0.0)
            burns = entry.get("burn", {})
            burn_bits = "  ".join(
                f"{sev[:4]} {rates.get('long_burn') or 0.0:.1f}x"
                for sev, rates in burns.items()
            )
            lines.append(
                f"  [{flag}] {objective}"
                f"  budget [{_bar(consumed)}] {consumed * 100:.0f}%  {burn_bits}"
            )

    recent = (decisions or {}).get("decisions", [])
    if recent:
        lines.append("")
        lines.append(_paint("recent decisions", _BOLD, color))
        for d in recent[-5:]:
            lines.append(
                f"  tick {d.get('tick', '?'):>6}  {d.get('source', '?'):<18}"
                f" nodes={d.get('nodes_first', '?')}"
            )

    points = (series or {}).get("points", [])
    if points:
        threshold = float((series or {}).get("threshold", 0.0) or 0.0)
        workload = [p.get("workload") for p in points]
        capacity = [
            (p.get("nodes") or 0) * threshold if threshold else None
            for p in points
        ]
        spark_width = max(width - 12, 10)
        lines.append("")
        lines.append(_paint("workload vs capacity", _BOLD, color))
        lines.append("  capacity  " + sparkline(capacity, spark_width))
        lines.append("  workload  " + sparkline(workload, spark_width))
    return "\n".join(lines)


def run_dashboard(
    host: str,
    port: int,
    interval: float = 2.0,
    once: bool = False,
    width: int = 80,
) -> int:
    """Poll the control plane and redraw; returns a process exit code."""
    try:
        while True:
            try:
                health = fetch(host, port, "/health")
                series = fetch(host, port, "/series?limit=240")
                decisions = fetch(host, port, "/decisions?limit=5")
            except (OSError, RuntimeError, ValueError) as error:
                print(
                    f"repro-autoscale top: cannot reach {host}:{port}: {error}"
                )
                if once:
                    return 1
                time.sleep(interval)
                continue
            frame = render_dashboard(
                health, series, decisions, width=width, color=not once
            )
            if once:
                print(frame)
                return 0
            print(_CLEAR + frame, flush=True)
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
