#!/usr/bin/env python
"""End-to-end smoke test for ``repro-autoscale serve --adapt`` (CI gate).

A real MLP forecaster is trained on the synthetic Alibaba-like trace,
then served against a regime-shifted tick file so its residuals drift.
Two phases, both against real subprocesses:

1. **Drift → promotion over the live control plane** — start the
   daemon with adaptation enabled, poll ``GET /adaptation`` while it
   steps, and require the full autonomous sequence: a drift alert
   triggers a warm refit, the candidate shadows, is promoted, and the
   swap commits after the guard windows — with no human input.  The
   endpoint contract is exercised on the way (``/health`` adaptation
   block, 409 on ``POST /promote`` with no candidate, 400 on a bogus
   refit strategy).
2. **Checkpoint mid-shadow, restore, bit-identity** — run the same
   session to completion, repeat it with a checkpoint in the middle of
   the shadow phase + an early stop (the simulated crash), restore,
   and require the restored session to finish the promotion and emit a
   decision stream bit-identical to the uninterrupted run's tail.
   The mid-shadow tick is derived from phase 1's event log, not
   hardcoded, so retuning the scenario cannot silently skip the
   interesting state.

Stdlib only (numpy comes with the repo); exits non-zero on the first
failure.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# The serving scenario: an MLP (frozen weights — the model family that
# actually goes stale) trained on 4.5 days, driven by a level-shifted
# continuation.  A seasonal-naive model would self-adapt from its
# context and never drift, so it cannot exercise this path.
DAYS = 6
STEPS_PER_DAY = 144
TRAIN_STEPS = int(DAYS * STEPS_PER_DAY * 0.75)
SERVE = [sys.executable, "-m", "repro.cli", "serve",
         "--model", "mlp", "--trace", "alibaba", "--days", str(DAYS),
         "--seed", "0", "--context", "36", "--horizon", "12",
         "--epochs", "6", "--threshold", "400", "--replan-every", "12",
         "--adapt", "--promote-policy", "wql<=0.98 cal<=0.5 soak=1 guard=1",
         "--shadow-window", "120", "--adapt-cooldown", "24"]
CRASH_GRACE_TICKS = 6


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def env() -> dict:
    merged = dict(os.environ)
    merged["PYTHONPATH"] = str(REPO / "src")
    return merged


def request(port: int, method: str, path: str, body: dict | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def wait_for_port(port_file: Path, process, timeout: float = 120.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"daemon exited early with code {process.returncode}")
        if port_file.exists() and port_file.read_text().strip():
            return int(port_file.read_text().strip())
        time.sleep(0.05)
    fail("daemon never wrote its port file")


def run_serve(args: list[str], cwd: Path) -> str:
    result = subprocess.run(SERVE + args, cwd=cwd, env=env(),
                            capture_output=True, text=True)
    if result.returncode != 0:
        fail(f"serve {' '.join(args)} exited {result.returncode}:\n"
             f"{result.stdout}\n{result.stderr}")
    return result.stderr


def read_decisions(path: Path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines()
            if line.strip()]


def write_shifted_source(workdir: Path) -> Path:
    """The trace's test split, level-shifted out of the training regime."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.traces import alibaba_like_trace

    trace = alibaba_like_trace(num_steps=DAYS * STEPS_PER_DAY, seed=0)
    _, test = trace.split(test_fraction=0.25)
    source = workdir / "shifted.txt"
    source.write_text(
        "".join(f"{value * 1.6 + 800:.3f}\n" for value in test.values)
    )
    return source


def poll_adaptation(port: int, done, what: str, timeout: float = 120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = request(port, "GET", "/adaptation")
        if status != 200:
            fail(f"GET /adaptation returned {status}: {body}")
        if done(body):
            return body
        time.sleep(0.1)
    fail(f"daemon never reached: {what} (last status: {body})")


def phase_drift_to_promotion(workdir: Path, source: Path) -> dict:
    print("== phase 1: drift -> warm refit -> shadow -> promotion ==")
    port_file = workdir / "port.txt"
    process = subprocess.Popen(
        SERVE + ["--source", str(source),
                 "--tick-interval", "0.01", "--linger", "120",
                 "--port-file", str(port_file)],
        cwd=workdir, env=env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        port = wait_for_port(port_file, process)
        print(f"daemon on port {port}")

        state = poll_adaptation(port, lambda s: True, "first status")
        if state["live_model"] != "MLPForecaster":
            fail(f"unexpected live model: {state['live_model']}")
        if state["policy"] != "wql<=0.98 cal<=0.5 soak=1 guard=1":
            fail(f"unexpected policy spec: {state['policy']}")
        if not state["auto_refit"]:
            fail("auto_refit should default to on")

        # With no candidate there is nothing to promote or roll back.
        status, body = request(port, "POST", "/promote")
        if status != 409:
            fail(f"POST /promote while idle returned {status}: {body}")
        status, body = request(port, "POST", "/refit",
                               body={"strategy": "bogus"})
        if status != 400:
            fail(f"bogus refit strategy returned {status}: {body}")

        state = poll_adaptation(
            port, lambda s: s["refits"] >= 1, "a drift-triggered refit"
        )
        refit = [e for e in state["events"] if e["action"] == "refit"][0]
        if not refit["reason"].startswith("alert:"):
            fail(f"refit was not alert-triggered: {refit}")
        if refit["mode"] != "warm":
            fail(f"refit was not warm-started: {refit}")
        print(f"refit OK at tick {refit['tick']} ({refit['reason']})")

        state = poll_adaptation(
            port,
            lambda s: s["promotions"] >= 1 and s["state"] == "idle",
            "promotion + committed guard",
        )
        actions = [e["action"] for e in state["events"]]
        for action in ("refit", "promote", "commit"):
            if action not in actions:
                fail(f"missing {action} in event log: {actions}")
        if state["rollbacks"] or state["rejections"]:
            fail(f"unexpected rollback/rejection: {state}")
        promote = [e for e in state["events"] if e["action"] == "promote"][0]
        print(f"promotion OK at tick {promote['tick']} "
              f"({promote['reason']})")

        status, health = request(port, "GET", "/health")
        if status != 200 or health.get("adaptation") is None:
            fail(f"/health has no adaptation block: {health}")
        if health["adaptation"]["promotions"] != 1:
            fail(f"/health adaptation out of sync: {health['adaptation']}")
        print("control plane OK (/adaptation, /health, 409/400 contract)")
        return {"refit_tick": refit["tick"], "promote_tick": promote["tick"]}
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()


def phase_checkpoint_mid_shadow(workdir: Path, source: Path,
                                ticks: dict) -> None:
    print("== phase 2: checkpoint mid-shadow, restore, bit-identity ==")
    ckpt = workdir / "ckpt"
    # Halfway between refit and promotion, in source-relative ticks —
    # guaranteed inside the shadow phase of this deterministic session.
    checkpoint_at = (
        ticks["refit_tick"] + ticks["promote_tick"]
    ) // 2 - TRAIN_STEPS + 1

    stderr = run_serve(
        ["--source", str(source),
         "--decisions-out", str(workdir / "full.jsonl")], workdir)
    if "1 promotions" not in stderr:
        fail(f"uninterrupted run did not promote:\n{stderr}")
    run_serve(
        ["--source", str(source),
         "--checkpoint-at", str(checkpoint_at),
         "--max-ticks", str(checkpoint_at + CRASH_GRACE_TICKS),
         "--checkpoint-dir", str(ckpt),
         "--decisions-out", str(workdir / "crashed.jsonl")], workdir)

    state = json.loads((ckpt / "state.json").read_text())
    if state["adaptation"]["state"] != "shadowing":
        fail(f"checkpoint was not taken mid-shadow: "
             f"adaptation state {state['adaptation']['state']!r}")

    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve",
         "--restore", str(ckpt),
         "--decisions-out", str(workdir / "restored.jsonl")],
        cwd=workdir, env=env(), capture_output=True, text=True,
    )
    if result.returncode != 0:
        fail(f"restore exited {result.returncode}:\n{result.stderr}")
    if "1 promotions" not in result.stderr:
        fail(f"restored run did not finish the promotion:\n{result.stderr}")

    full = read_decisions(workdir / "full.jsonl")
    restored = read_decisions(workdir / "restored.jsonl")
    checkpoint_tick = state["runtime"]["tick"]
    tail = [d for d in full if d["tick"] >= checkpoint_tick]
    if not full:
        fail("uninterrupted run produced no decisions")
    if tail != restored:
        fail(f"decision streams diverged after mid-shadow restore "
             f"(tail {len(tail)} vs restored {len(restored)}):\n"
             f"{json.dumps(tail[:3], indent=2)}\nvs\n"
             f"{json.dumps(restored[:3], indent=2)}")
    print(f"restore OK: checkpoint at tick {checkpoint_tick} while "
          f"shadowing; {len(restored)} post-checkpoint decisions "
          f"bit-identical, promotion completed after restore")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="adaptation-smoke-") as tmp:
        workdir = Path(tmp)
        source = write_shifted_source(workdir)
        ticks = phase_drift_to_promotion(workdir, source)
        phase_checkpoint_mid_shadow(workdir, source, ticks)
    print("adaptation smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
