#!/usr/bin/env python
"""End-to-end smoke test for ``repro-autoscale serve`` (CI gate).

Two phases, both against real subprocesses:

1. **Live control plane** — start the daemon paced like a live feed
   (with an SLO attached), poll every GET endpoint while it steps,
   scrape and validate the Prometheus exposition, render the `top`
   dashboard once against the live daemon, force a replan and a
   checkpoint over HTTP, and fail on any non-200 (or non-JSON body).
2. **Crash/restore divergence** — run an uninterrupted session to
   completion, repeat it with a mid-trace checkpoint + early stop (the
   simulated crash), restore from the checkpoint, and require the
   restored session's decision stream to be bit-identical to the
   uninterrupted run's tail.

Stdlib only; exits non-zero on the first failure.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SERVE = [sys.executable, "-m", "repro.cli", "serve",
         "--model", "naive", "--days", "6", "--context", "144",
         "--horizon", "36", "--replan-every", "12", "--monitor",
         "--slo", "qos_violation_rate < 0.2 over 48",
         "--seed", "3"]
CHECKPOINT_AT = 150
MAX_TICKS = 165


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def env() -> dict:
    merged = dict(os.environ)
    merged["PYTHONPATH"] = str(REPO / "src")
    return merged


def request(port: int, method: str, path: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(method, path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def request_raw(port: int, path: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return (
            response.status,
            response.getheader("Content-Type", ""),
            response.read().decode("utf-8"),
        )
    finally:
        conn.close()


def wait_for_port(port_file: Path, process, timeout: float = 60.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"daemon exited early with code {process.returncode}")
        if port_file.exists() and port_file.read_text().strip():
            return int(port_file.read_text().strip())
        time.sleep(0.05)
    fail("daemon never wrote its port file")


def run_serve(args: list[str], cwd: Path) -> None:
    result = subprocess.run(SERVE + args, cwd=cwd, env=env(),
                            capture_output=True, text=True)
    if result.returncode != 0:
        fail(f"serve {' '.join(args)} exited {result.returncode}:\n"
             f"{result.stdout}\n{result.stderr}")


def read_decisions(path: Path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines()
            if line.strip()]


def phase_live_control_plane(workdir: Path) -> None:
    print("== phase 1: live control plane ==")
    port_file = workdir / "port.txt"
    process = subprocess.Popen(
        SERVE + ["--tick-interval", "0.02", "--linger", "60",
                 "--port-file", str(port_file),
                 "--checkpoint-dir", str(workdir / "live-ckpt")],
        cwd=workdir, env=env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        port = wait_for_port(port_file, process)
        print(f"daemon on port {port}")

        # The first SLO window closes once the monitor has a full
        # calibration window past the 144-tick context (tick ~168).
        deadline = time.monotonic() + 60
        while True:
            status, health = request(port, "GET", "/health")
            if status != 200:
                fail(f"/health returned {status}")
            if health["ticks_processed"] >= 150 and health.get("slo"):
                break
            if time.monotonic() > deadline:
                fail(f"daemon never reached 150 ticks with SLO status "
                     f"(at {health['ticks_processed']}, "
                     f"slo={health.get('slo')!r})")
            time.sleep(0.2)
        print(f"health OK at tick {health['tick']} "
              f"({health['decisions']} decisions)")

        status, metrics = request(port, "GET", "/metrics")
        if status != 200 or metrics["counters"].get("service.ticks", 0) < 150:
            fail(f"/metrics returned {status} or missing service.ticks")

        entry = health["slo"][0]
        if entry["objective"] != "qos_violation_rate < 0.2 over 48":
            fail(f"unexpected SLO objective: {entry}")
        if "budget_consumed" not in entry or "burn" not in entry:
            fail(f"SLO status missing budget fields: {entry}")

        status, ctype, text = request_raw(port, "/metrics?format=prometheus")
        if status != 200 or "version=0.0.4" not in ctype:
            fail(f"prometheus scrape returned {status} ({ctype})")
        # Validate with the same tiny parser the unit tests use.
        sys.path.insert(0, str(REPO / "src"))
        from repro.obs import parse_exposition

        families = parse_exposition(text)
        if not any(name.startswith("repro_service_ticks") for name in families):
            fail(f"prometheus exposition missing service.ticks: "
                 f"{sorted(families)[:10]}")

        status, traces = request(port, "GET", "/traces?limit=3")
        if status != 200 or not traces["tracing"] or not traces["traces"]:
            fail(f"/traces returned {status}: {traces}")
        if not traces["traces"][-1]["spans"]:
            fail("latest trace has no spans")

        status, _ = request(port, "GET", "/decisions?limit=zebra")
        if status != 400:
            fail(f"bad ?limit returned {status}, expected 400")

        top = subprocess.run(
            [sys.executable, "-m", "repro.cli", "top",
             "--port", str(port), "--once"],
            cwd=workdir, env=env(), capture_output=True, text=True,
        )
        if top.returncode != 0:
            fail(f"top --once exited {top.returncode}:\n{top.stderr}")
        if "repro-autoscale top" not in top.stdout or "SLO" not in top.stdout:
            fail(f"top --once frame looks wrong:\n{top.stdout}")
        print("observability endpoints OK (slo/prometheus/traces/top)")

        status, forecast = request(port, "GET", "/forecast")
        if status != 200 or len(forecast["nodes"]) != 36:
            fail(f"/forecast returned {status}")
        status, decisions = request(port, "GET", "/decisions?limit=5")
        if status != 200 or not decisions["decisions"]:
            fail(f"/decisions returned {status}")
        status, planned = request(port, "POST", "/plan")
        if status != 200 or planned["source"] != "predictive":
            fail(f"POST /plan returned {status}: {planned}")
        status, checkpoint = request(port, "POST", "/checkpoint")
        if status != 200:
            fail(f"POST /checkpoint returned {status}: {checkpoint}")
        if not (Path(checkpoint["path"]) / "state.json").exists():
            fail("checkpoint path has no state.json")
        status, _ = request(port, "GET", "/bogus")
        if status != 404:
            fail(f"unknown path returned {status}, expected 404")
        print("live endpoints OK (health/metrics/forecast/decisions"
              "/plan/checkpoint/404)")
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()


def phase_crash_restore(workdir: Path) -> None:
    print("== phase 2: crash/restore bit-identity ==")
    ckpt = workdir / "ckpt"

    run_serve(["--decisions-out", str(workdir / "full.jsonl")], workdir)
    run_serve(["--checkpoint-at", str(CHECKPOINT_AT),
               "--max-ticks", str(MAX_TICKS),
               "--checkpoint-dir", str(ckpt),
               "--decisions-out", str(workdir / "crashed.jsonl")], workdir)
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve",
         "--restore", str(ckpt),
         "--decisions-out", str(workdir / "restored.jsonl")],
        cwd=workdir, env=env(), capture_output=True, text=True,
    )
    if result.returncode != 0:
        fail(f"restore exited {result.returncode}:\n{result.stderr}")

    full = read_decisions(workdir / "full.jsonl")
    restored = read_decisions(workdir / "restored.jsonl")
    checkpoint_tick = json.loads(
        (ckpt / "state.json").read_text()
    )["runtime"]["tick"]
    tail = [d for d in full if d["tick"] >= checkpoint_tick]

    if not full:
        fail("uninterrupted run produced no decisions")
    if tail != restored:
        fail(f"decision streams diverged after restore "
             f"(tail {len(tail)} vs restored {len(restored)}):\n"
             f"{json.dumps(tail[:3], indent=2)}\nvs\n"
             f"{json.dumps(restored[:3], indent=2)}")
    sources = {d["source"] for d in full}
    if "predictive" not in sources:
        fail(f"no predictive decisions committed (sources: {sources})")
    print(f"restore OK: {len(restored)} post-checkpoint decisions "
          f"bit-identical to the uninterrupted run "
          f"({len(full)} total, sources: {sorted(sources)})")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        workdir = Path(tmp)
        phase_live_control_plane(workdir)
        phase_crash_restore(workdir)
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
