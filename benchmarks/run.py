"""Parallel table/figure benchmark runner.

Each ``benchmarks/test_*.py`` file reproduces one table or figure from
the paper and is independent of the others (session fixtures retrain
per process, so there is no shared state to race on).  This runner fans
the files across worker processes via :func:`repro.parallel.parallel_map`
— each worker shells out to pytest for one file — and prints an ordered
summary when everything has finished::

    PYTHONPATH=src python -m benchmarks.run --jobs 4
    PYTHONPATH=src python -m benchmarks.run --match table --jobs 2
    PYTHONPATH=src python -m benchmarks.run --list

Results come back in discovery order regardless of worker scheduling,
and per-benchmark wall-clock spans recorded in the workers are merged
into the parent registry (visible with ``--telemetry``).
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def discover(match: str | None = None) -> list[str]:
    """Benchmark file names (sorted), optionally filtered by substring."""
    names = sorted(p.name for p in BENCH_DIR.glob("test_*.py"))
    if match:
        names = [name for name in names if match in name]
    return names


def _run_benchmark(context: dict, name: str) -> dict:
    """Run one benchmark file under pytest; module-level for pickling."""
    import time

    from repro.obs import get_registry

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    command = [sys.executable, "-m", "pytest", str(BENCH_DIR / name), "-q"]
    command += context.get("pytest_args", [])
    start = time.perf_counter()
    with get_registry().span("benchmark", file=name):
        proc = subprocess.run(
            command, cwd=REPO_ROOT, env=env, capture_output=True, text=True
        )
    duration = time.perf_counter() - start
    get_registry().counter(
        "benchmarks.completed", status="pass" if proc.returncode == 0 else "fail"
    ).inc()
    return {
        "file": name,
        "returncode": proc.returncode,
        "duration_s": duration,
        "output": proc.stdout + proc.stderr,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.run",
        description="Run the table/figure benchmarks, optionally in parallel",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1: serial, in order)")
    parser.add_argument("--match", default=None, metavar="SUBSTR",
                        help="only files whose name contains SUBSTR")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="print the benchmark files and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="print each benchmark's full pytest output")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments passed through to pytest")
    args = parser.parse_args(argv)

    names = discover(args.match)
    if args.list_only:
        for name in names:
            print(name)
        return 0
    if not names:
        print("no benchmark files matched", file=sys.stderr)
        return 2

    from repro.parallel import parallel_map

    context = {"pytest_args": list(args.pytest_args)}
    results = parallel_map(_run_benchmark, names, context, n_jobs=args.jobs)

    failed = [r for r in results if r["returncode"] != 0]
    width = max(len(r["file"]) for r in results)
    print(f"\n{'benchmark':<{width}}  {'status':<6}  wall-clock")
    for r in results:
        status = "pass" if r["returncode"] == 0 else "FAIL"
        print(f"{r['file']:<{width}}  {status:<6}  {r['duration_s']:8.1f}s")
        if args.verbose or r["returncode"] != 0:
            print(r["output"])
    print(f"\n{len(results) - len(failed)}/{len(results)} benchmarks passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
