"""Figure 7 — prediction-interval quality of MLP vs DeepAR vs TFT.

The paper's figure plots each model's 50% and 80% prediction intervals
over a sampled horizon; MLP's intervals are wide and loose while DeepAR
and TFT "consistently maintain excellent coverage within narrow
prediction intervals".  We reproduce the quantitative content: per-model
interval width and empirical coverage over the rolling test windows,
plus a rendered slice of one horizon.
"""

import numpy as np
import pytest

from benchmarks.helpers import print_header


def interval_stats(rolling, low: float, high: float):
    """(mean width, empirical coverage) of the [low, high] interval."""
    widths, covered, total = [], 0, 0
    for fc, actual in zip(rolling.forecasts, rolling.actuals):
        lower, upper = fc.at(low), fc.at(high)
        widths.append((upper - lower).mean())
        covered += int(((actual >= lower) & (actual <= upper)).sum())
        total += len(actual)
    return float(np.mean(widths)), covered / total


def test_fig7_intervals(benchmark, trace_name, mlp_rolling, deepar_rolling, tft_rolling):
    rows = []
    for rolling in (mlp_rolling, deepar_rolling, tft_rolling):
        w50, c50 = interval_stats(rolling, 0.25, 0.75)
        w80, c80 = interval_stats(rolling, 0.1, 0.9)
        rows.append((rolling.model, w50, c50, w80, c80))

    print_header(
        f"Figure 7 — prediction intervals ({trace_name})",
        "interval width in workload units; coverage = fraction of actuals inside",
    )
    print(
        f"{'model':<8} {'50% width':>10} {'50% cover':>10} "
        f"{'80% width':>10} {'80% cover':>10} {'norm.80w':>9}"
    )
    scale = np.concatenate([a for a in tft_rolling.actuals]).mean()
    for model, w50, c50, w80, c80 in rows:
        print(
            f"{model:<8} {w50:>10.1f} {c50:>10.3f} {w80:>10.1f} {c80:>10.3f} "
            f"{w80 / scale:>9.3f}"
        )

    # One rendered horizon slice (the figure's qualitative content).
    fc = tft_rolling.forecasts[0]
    actual = tft_rolling.actuals[0]
    print(f"\nTFT, first horizon — {'step':>4} {'q0.1':>8} {'q0.5':>8} {'q0.9':>8} {'actual':>8}")
    for t in range(0, fc.horizon, 9):
        print(
            f"{'':>19}{t:>4} {fc.at(0.1)[t]:>8.0f} {fc.at(0.5)[t]:>8.0f} "
            f"{fc.at(0.9)[t]:>8.0f} {actual[t]:>8.0f}"
        )

    stats = {model: (w80, c80) for model, _, _, w80, c80 in rows}
    # Paper shape: TFT achieves broadly comparable coverage to MLP with
    # clearly narrower intervals (its efficiency shows as width, not
    # coverage, at laptop budgets).
    assert stats["TFT"][0] < stats["MLP"][0]
    assert stats["TFT"][1] > stats["MLP"][1] - 0.25

    benchmark(lambda: interval_stats(tft_rolling, 0.1, 0.9))
