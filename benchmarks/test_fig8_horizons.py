"""Figure 8 — accuracy across prediction horizons {1, 6, 12, 36, 72}.

The paper fixes the 12-hour context, fixes the hyperparameters across
horizons, and evaluates each model at prediction lengths of 10 minutes
to 12 hours.  We evaluate horizon-h accuracy as the mean_wQL over the
first h steps of the 72-step forecasts: exact for DeepAR (iterative by
construction) and a faithful fixed-hyperparameter proxy for the direct
multi-horizon models.

Expected shape: DeepAR and TFT dominate the baselines at every horizon;
DeepAR's relative accuracy decays as the horizon grows (iterative error
accumulation) while short-horizon accuracy is strong.
"""

import numpy as np
import pytest

from repro.evaluation import mean_weighted_quantile_loss

from benchmarks.helpers import TABLE1_LEVELS, print_header

HORIZONS = [1, 6, 12, 36, 72]


def horizon_wql(rolling, horizon: int) -> float:
    target = np.concatenate([a[:horizon] for a in rolling.actuals])
    forecasts = {
        tau: np.concatenate([fc.at(tau)[:horizon] for fc in rolling.forecasts])
        for tau in TABLE1_LEVELS
    }
    return mean_weighted_quantile_loss(target, forecasts)


def test_fig8_horizons(
    benchmark, trace_name, arima_rolling, mlp_rolling, deepar_rolling, tft_rolling
):
    rollings = [arima_rolling, mlp_rolling, deepar_rolling, tft_rolling]
    table = {
        r.model: [horizon_wql(r, h) for h in HORIZONS] for r in rollings
    }

    print_header(
        f"Figure 8 — mean_wQL vs prediction horizon ({trace_name})",
        "horizons in 10-minute steps: "
        + ", ".join(f"{h} (={h/6:.1f}h)" for h in HORIZONS),
    )
    print(f"{'model':<8}" + "".join(f"{f'H={h}':>10}" for h in HORIZONS))
    for model, row in table.items():
        print(f"{model:<8}" + "".join(f"{v:>10.4f}" for v in row))

    # Paper shape at the full horizon: neural quantile models beat MLP
    # (15% tolerance for TFT on the hardest trace at laptop budgets).
    assert table["TFT"][-1] < table["MLP"][-1] * 1.15
    assert table["DeepAR"][-1] < table["MLP"][-1]
    # DeepAR is iterative, so its accuracy must not *improve* materially
    # with horizon (error accumulation; ties allowed at this scale).
    assert table["DeepAR"][-1] > 0.85 * table["DeepAR"][0]

    benchmark(lambda: horizon_wql(tft_rolling, 72))
