"""Table III — overhead breakdown: forecasting vs. optimization.

The paper splits one decision cycle into (a) workload forecasting
(model inference) and (b) auto-scaling optimization (solving
Definition 6, or Algorithm 1 for the adaptive variant), reporting that
DeepAR inference dominates, TFT is fast, and the optimization side is
milliseconds with a negligible gap between Robust and Adaptive.
"""

import pytest

from repro.core import (
    FixedQuantilePolicy,
    RobustAutoScalingManager,
    UncertaintyAwarePolicy,
)

from benchmarks.helpers import CONTEXT, THETA, print_header


@pytest.fixture(scope="module", autouse=True)
def only_alibaba(trace_name):
    if trace_name != "alibaba":
        pytest.skip("Table III is measured once (hardware metric, not per-trace)")


@pytest.fixture(scope="module")
def forecast(tft, test_series, train_series):
    return tft.predict(test_series[:CONTEXT], start_index=len(train_series))


@pytest.mark.benchmark(group="table3-forecasting")
def test_forecasting_deepar(benchmark, deepar, test_series, train_series):
    benchmark(
        lambda: deepar.predict(test_series[:CONTEXT], start_index=len(train_series))
    )


@pytest.mark.benchmark(group="table3-forecasting")
def test_forecasting_tft(benchmark, tft, test_series, train_series):
    benchmark(
        lambda: tft.predict(test_series[:CONTEXT], start_index=len(train_series))
    )


@pytest.mark.benchmark(group="table3-optimization")
def test_optimization_robust(benchmark, forecast):
    manager = RobustAutoScalingManager(THETA, FixedQuantilePolicy(0.9))
    benchmark(lambda: manager.plan(forecast))


@pytest.mark.benchmark(group="table3-optimization")
def test_optimization_adaptive(benchmark, forecast):
    manager = RobustAutoScalingManager(
        THETA, UncertaintyAwarePolicy(0.7, 0.9, uncertainty_threshold=100.0)
    )
    benchmark(lambda: manager.plan(forecast))


def test_table3_summary(benchmark, deepar, tft, forecast, test_series, train_series):
    import time

    def timed(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best * 1000

    context = test_series[:CONTEXT]
    robust = RobustAutoScalingManager(THETA, FixedQuantilePolicy(0.9))
    adaptive = RobustAutoScalingManager(
        THETA, UncertaintyAwarePolicy(0.7, 0.9, uncertainty_threshold=100.0)
    )
    deepar_ms = timed(lambda: deepar.predict(context, start_index=len(train_series)))
    tft_ms = timed(lambda: tft.predict(context, start_index=len(train_series)))
    robust_ms = timed(lambda: robust.plan(forecast))
    adaptive_ms = timed(lambda: adaptive.plan(forecast))

    print_header("Table III — computation overhead breakdown")
    print(f"{'Workload Forecasting':<32} {'Auto-Scaling Optimization':<28}")
    print(f"{'DeepAR':<14}{'TFT':<18} {'Robust':<14}{'Adaptive':<14}")
    print(
        f"{deepar_ms:<11.2f}ms {tft_ms:<15.2f}ms {robust_ms:<11.3f}ms "
        f"{adaptive_ms:<11.3f}ms"
    )

    # Paper shape: sampling makes DeepAR inference the bottleneck; the two
    # optimization variants are both cheap and close to each other.
    assert deepar_ms > tft_ms
    assert robust_ms < tft_ms
    assert adaptive_ms < 10 * max(robust_ms, 0.01) + 5.0
    benchmark(lambda: robust.plan(forecast))
