"""Ablation — closed-form vs LP solver for the robust optimization.

DESIGN.md calls out the choice to solve Definition 6 in closed form
(the problem is separable) while also shipping the LP formulation the
paper mentions.  This bench verifies the two agree bit-for-bit on real
forecast bounds and quantifies the speed gap, plus times the
ramp-constrained variant.
"""

import numpy as np
import pytest

from repro.core import solve_closed_form, solve_lp, solve_with_ramp_limits

from benchmarks.helpers import THETA, print_header


@pytest.fixture(scope="module", autouse=True)
def only_alibaba(trace_name):
    if trace_name != "alibaba":
        pytest.skip("solver ablation is trace-independent")


@pytest.fixture(scope="module")
def bounds(tft_rolling):
    return [np.maximum(fc.at(0.9), 0.0) for fc in tft_rolling.forecasts]


def test_solvers_agree(benchmark, bounds):
    for bound in bounds:
        np.testing.assert_array_equal(
            solve_closed_form(bound, THETA).nodes, solve_lp(bound, THETA).nodes
        )
    print_header(
        "Ablation — solver agreement",
        f"closed-form == LP on {len(bounds)} real 72-step planning problems",
    )
    benchmark(lambda: solve_closed_form(bounds[0], THETA))


@pytest.mark.benchmark(group="ablation-solver")
def test_closed_form_speed(benchmark, bounds):
    benchmark(lambda: solve_closed_form(bounds[0], THETA))


@pytest.mark.benchmark(group="ablation-solver")
def test_lp_speed(benchmark, bounds):
    benchmark(lambda: solve_lp(bounds[0], THETA))


@pytest.mark.benchmark(group="ablation-solver")
def test_ramped_speed(benchmark, bounds):
    benchmark(
        lambda: solve_with_ramp_limits(bounds[0], THETA, max_scale_out=3, max_scale_in=3)
    )
