"""Ablation — DeepAR's Student-t head vs a Gaussian head.

The paper picks the Student-t likelihood "because it has longer tails
and a larger variance, allowing it to better handle outliers and noise".
We train both variants identically on the bursty Google-like trace and
compare quantile accuracy at the scaling-relevant upper levels plus the
robustness of the resulting 0.9-quantile scaling plans.
"""

import numpy as np
import pytest

from repro.evaluation import weighted_quantile_loss
from repro.forecast import DeepARForecaster, TrainingConfig

from benchmarks.helpers import (
    CONTEXT,
    HORIZON,
    print_header,
    provisioning_rates,
    rolling_forecasts,
)


@pytest.fixture(scope="module", autouse=True)
def only_google(trace_name):
    if trace_name != "google":
        pytest.skip("the likelihood choice matters on the bursty trace")


@pytest.fixture(scope="module")
def variants(train_series, test_series):
    out = {}
    for likelihood in ("student_t", "gaussian"):
        config = TrainingConfig(
            epochs=10, batch_size=64, window_stride=3, patience=3, seed=0
        )
        model = DeepARForecaster(
            CONTEXT, HORIZON, hidden_size=32, num_layers=1, num_samples=100,
            likelihood=likelihood, config=config,
        ).fit(train_series)
        out[likelihood] = rolling_forecasts(
            model, f"DeepAR-{likelihood}", test_series, len(train_series)
        )
    return out


def test_likelihood_ablation(benchmark, variants):
    print_header(
        "Ablation — DeepAR likelihood: Student-t vs Gaussian (Google trace)"
    )
    print(f"{'likelihood':<12} {'wQL[0.9]':>10} {'wQL[0.95]':>10} "
          f"{'under@0.9':>10} {'over@0.9':>10}")
    summary = {}
    for likelihood, rolling in variants.items():
        target = rolling.merged_actual
        wql90 = weighted_quantile_loss(target, rolling.merged_level(0.9), 0.9)
        wql95 = weighted_quantile_loss(target, rolling.merged_level(0.95), 0.95)
        under, over = provisioning_rates(rolling, lambda fc: fc.at(0.9))
        summary[likelihood] = (wql90, wql95, under, over)
        print(f"{likelihood:<12} {wql90:>10.4f} {wql95:>10.4f} "
              f"{under:>10.4f} {over:>10.4f}")

    # Both heads must produce usable scaling plans; report the winner.
    for wql90, wql95, under, over in summary.values():
        assert np.isfinite([wql90, wql95]).all()
        assert 0.0 <= under <= 1.0
    winner = min(summary, key=lambda k: summary[k][0])
    print(f"\nlower wQL[0.9]: {winner}")

    benchmark(lambda: provisioning_rates(variants["student_t"], lambda fc: fc.at(0.9)))
