"""Session fixtures for the benchmark harness.

Training is the expensive part of every experiment, so each forecaster
is trained exactly once per pytest session and shared across all
table/figure benchmarks.  Rolling quantile forecasts over the test split
are likewise computed once per (model, trace) and cached — the policy
and quantile sweeps in Figs. 9-12 then reduce to cheap re-planning.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.forecast import (
    ARIMAForecaster,
    DeepARForecaster,
    MLPForecaster,
    QB5000Forecaster,
    TFTForecaster,
    TFTPointForecaster,
    TrainingConfig,
)
from repro.traces import STEPS_PER_DAY, alibaba_like_trace, google_like_trace

from benchmarks.helpers import (
    ALL_LEVELS,
    CONTEXT,
    HORIZON,
    TRACE_DAYS,
    RollingForecasts,
    rolling_forecasts,
)

TRACE_MAKERS = {"alibaba": alibaba_like_trace, "google": google_like_trace}


def _config(epochs: int, seed: int = 0) -> TrainingConfig:
    return TrainingConfig(
        epochs=epochs, batch_size=64, window_stride=3, patience=3, seed=seed
    )


@pytest.fixture(scope="session", params=["alibaba", "google"])
def trace_name(request) -> str:
    return request.param


@pytest.fixture(scope="session")
def splits(trace_name):
    trace = TRACE_MAKERS[trace_name](num_steps=TRACE_DAYS * STEPS_PER_DAY, seed=3)
    return trace.split(test_fraction=0.25)


@pytest.fixture(scope="session")
def train_series(splits) -> np.ndarray:
    return splits[0].values


@pytest.fixture(scope="session")
def test_series(splits) -> np.ndarray:
    return splits[1].values


# ---------------------------------------------------------------------------
# Trained forecasters (one per session per trace)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="session")
def arima(train_series) -> ARIMAForecaster:
    return ARIMAForecaster(HORIZON, order=(3, 1, 2)).fit(train_series)


@pytest.fixture(scope="session")
def mlp(train_series) -> MLPForecaster:
    return MLPForecaster(CONTEXT, HORIZON, hidden_size=64, config=_config(12)).fit(
        train_series
    )


@pytest.fixture(scope="session")
def deepar(train_series) -> DeepARForecaster:
    return DeepARForecaster(
        CONTEXT, HORIZON, hidden_size=32, num_layers=1, num_samples=100,
        config=_config(10),
    ).fit(train_series)


@pytest.fixture(scope="session")
def tft(train_series) -> TFTForecaster:
    return TFTForecaster(
        CONTEXT, HORIZON, quantile_levels=ALL_LEVELS, d_model=32, num_heads=4,
        config=_config(15),
    ).fit(train_series)


@pytest.fixture(scope="session")
def tft_point(train_series) -> TFTPointForecaster:
    return TFTPointForecaster(
        CONTEXT, HORIZON, d_model=32, num_heads=4, config=_config(15)
    ).fit(train_series)


@pytest.fixture(scope="session")
def qb5000(train_series) -> QB5000Forecaster:
    return QB5000Forecaster(CONTEXT, HORIZON, hidden_size=32, config=_config(10)).fit(
        train_series
    )


# ---------------------------------------------------------------------------
# Cached rolling forecasts over the test split
# ---------------------------------------------------------------------------
@pytest.fixture(scope="session")
def tft_rolling(tft, test_series, train_series) -> RollingForecasts:
    return rolling_forecasts(tft, "TFT", test_series, len(train_series))


@pytest.fixture(scope="session")
def deepar_rolling(deepar, test_series, train_series) -> RollingForecasts:
    return rolling_forecasts(deepar, "DeepAR", test_series, len(train_series))


@pytest.fixture(scope="session")
def mlp_rolling(mlp, test_series, train_series) -> RollingForecasts:
    return rolling_forecasts(mlp, "MLP", test_series, len(train_series))


@pytest.fixture(scope="session")
def arima_rolling(arima, test_series, train_series) -> RollingForecasts:
    return rolling_forecasts(arima, "ARIMA", test_series, len(train_series))
