"""Inference fast-path micro-benchmarks -> BENCH_inference.json.

Three timings, each comparing the tape-free kernels against the Tensor
tape path:

* **lstm_step** — throughput of one fused multi-layer LSTM step at
  sampling batch size (steps/second, fast vs tape);
* **sample_paths** — full DeepAR ancestral sampling (num_samples
  trajectories x horizon steps), fast path vs the tape path vs a
  replica of the pre-fast-path implementation (batch-n Tensor warm-up,
  per-step Tensor network calls) as the historical baseline;
* **backtest** — rolling-origin evaluation wall-clock, serial vs
  ``n_jobs``, with a ``parallel_speedup`` field (serial median over
  parallel median) and a bit-determinism check of the fanned-out run;
* **float32** — single-precision inference (``--dtype float32``) vs the
  float64 default: sampling wall-clock plus the accuracy gate (wQL and
  coverage deltas on a small backtest must stay within tolerance);
* **tft_predict** — the TFT quantile forward through the fused
  attention/LayerNorm/GRN kernels vs the tape, with a bitwise gate on
  both the quantile grid and the stored attention pattern (float64) and
  the same wQL/coverage tolerances for float32.

Timings interleave the variants (fast, tape, fast, tape, ...) so clock
drift and cache state hit every variant equally — on noisy shared
machines the *ratio* is far more stable than any absolute number.  The
script also asserts fast/tape parity (identical samples for the same
seed) and records the result in the JSON.

The parallel gate is warn-only by default (a one-core machine cannot
win); ``--strict-parallel`` turns a sub-1x ``parallel_speedup`` into a
non-zero exit for environments that guarantee real cores.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.perf_inference --quick \
        --output BENCH_inference.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.evaluation.backtest import backtest
from repro.forecast import DeepARForecaster, TFTForecaster, TrainingConfig
from repro.forecast.features import NUM_CALENDAR_FEATURES
from repro.nn import Tensor, fastpath, no_grad
from repro.traces import STEPS_PER_DAY, alibaba_like_trace

LEVELS = (0.1, 0.5, 0.9)

# float32 accuracy gate (docs/benchmarks.md): measured quick-config
# deltas are ~1e-3 relative wQL and < 0.01 absolute coverage; the gate
# sits an order of magnitude above the noise floor, far below anything
# that would change an auto-scaling decision.
WQL_REL_TOLERANCE = 0.05
COVERAGE_TOLERANCE = 0.05


def legacy_sample_paths(
    forecaster: DeepARForecaster, context: np.ndarray, start_index: int = 0
) -> np.ndarray:
    """Replica of the pre-fast-path ``sample_paths`` (the seed baseline).

    Warm-up runs the full Tensor network at batch ``num_samples`` (the
    context is tiled per trajectory) and every horizon step goes through
    ``network(Tensor(...), state)`` with (n, 1, F) inputs.  Pinning the
    tape path reproduces the historical execution exactly.
    """
    net = forecaster.network
    context = np.asarray(context, dtype=np.float64)
    normalised = forecaster.scaler.transform(context)
    n = forecaster.num_samples
    with no_grad(), fastpath.use_fast_path(False):
        lagged = np.tile(normalised[:-1], (n, 1))
        indices = start_index + 1 + np.tile(np.arange(len(context) - 1), (n, 1))
        mu, scale, df, state = net(Tensor(forecaster._inputs(lagged, indices)))
        last_value = np.full((n, 1), normalised[-1])
        samples = np.empty((n, forecaster.horizon))
        for h in range(forecaster.horizon):
            step_index = np.full((n, 1), start_index + len(context) + h)
            inputs = forecaster._inputs(last_value, step_index)
            mu, scale, df, state = net(Tensor(inputs), state)
            mu_h, scale_h = mu.data[:, 0], scale.data[:, 0]
            draws = mu_h + scale_h * forecaster._sample_rng.standard_t(df.data[:, 0])
            samples[:, h] = draws
            last_value = draws[:, None]
    return forecaster.scaler.inverse_transform(samples)


def interleaved_times(variants: dict, repeats: int) -> dict[str, dict[str, float]]:
    """Time each no-arg callable ``repeats`` times, round-robin.

    Returns per-variant best and median wall-clock in milliseconds.
    """
    timings: dict[str, list[float]] = {name: [] for name in variants}
    for _ in range(repeats):
        for name, fn in variants.items():
            start = time.perf_counter()
            fn()
            timings[name].append((time.perf_counter() - start) * 1e3)
    return {
        name: {"best_ms": float(np.min(ts)), "median_ms": float(np.median(ts))}
        for name, ts in timings.items()
    }


def bench_lstm_step(forecaster: DeepARForecaster, repeats: int) -> dict:
    """One fused multi-layer LSTM step at sampling batch size."""
    net = forecaster.network
    hs = forecaster.hidden_size
    n = forecaster.num_samples
    rng = np.random.default_rng(7)
    x = rng.normal(size=(n, 1 + NUM_CALENDAR_FEATURES))
    zeros = [
        (np.zeros((n, hs)), np.zeros((n, hs))) for _ in range(forecaster.num_layers)
    ]
    prepared = fastpath.prepare_lstm_params(net.lstm._layer_params(), hs)
    inner = 50  # one step is microseconds; time a block

    def fast() -> None:
        state = [(h.copy(), c.copy()) for h, c in zeros]
        for _ in range(inner):
            top = x
            for layer, (w_ih, w_hh, bias) in enumerate(prepared):
                h_prev, c_prev = state[layer]
                h_new, c_new = fastpath.lstm_cell_permuted(
                    top, h_prev, c_prev, w_ih, w_hh, bias, hs
                )
                state[layer] = (h_new, c_new)
                top = h_new

    x3d = x[:, None, :]

    def tape() -> None:
        state = [(Tensor(h.copy()), Tensor(c.copy())) for h, c in zeros]
        with no_grad(), fastpath.use_fast_path(False):
            for _ in range(inner):
                _, state = net.lstm(Tensor(x3d), state)

    times = interleaved_times({"fast": fast, "tape": tape}, repeats)
    out = {
        name: {
            "steps_per_s": inner / (stats["best_ms"] / 1e3),
            **stats,
        }
        for name, stats in times.items()
    }
    out["speedup"] = times["tape"]["best_ms"] / times["fast"]["best_ms"]
    out["batch"] = forecaster.num_samples
    out["inner_steps"] = inner
    return out


def bench_sample_paths(
    forecaster: DeepARForecaster, context: np.ndarray, start_index: int, repeats: int
) -> dict:
    """Full ancestral sampling: fast vs tape vs the legacy baseline."""

    def fast() -> None:
        forecaster.sample_paths(context, start_index)

    def tape() -> None:
        with fastpath.use_fast_path(False):
            forecaster.sample_paths(context, start_index)

    def legacy() -> None:
        legacy_sample_paths(forecaster, context, start_index)

    times = interleaved_times({"fast": fast, "tape": tape, "legacy": legacy}, repeats)

    # Parity: the fast and tape paths must draw identical trajectories
    # for the same seed (the legacy baseline consumes the rng with
    # different call shapes, so it is a timing reference only).
    forecaster.reseed_sampler(1234)
    fast_samples = forecaster.sample_paths(context, start_index).samples
    forecaster.reseed_sampler(1234)
    with fastpath.use_fast_path(False):
        tape_samples = forecaster.sample_paths(context, start_index).samples
    parity = bool(np.array_equal(fast_samples, tape_samples))

    total_draws = forecaster.num_samples * forecaster.horizon
    return {
        **times,
        "speedup_vs_legacy": times["legacy"]["best_ms"] / times["fast"]["best_ms"],
        "speedup_vs_tape": times["tape"]["best_ms"] / times["fast"]["best_ms"],
        "samples_per_s": total_draws / (times["fast"]["best_ms"] / 1e3),
        "num_samples": forecaster.num_samples,
        "horizon": forecaster.horizon,
        "parity_fast_vs_tape": parity,
    }


def bench_backtest(
    forecaster: DeepARForecaster,
    test_values: np.ndarray,
    train_length: int,
    repeats: int,
    jobs: int,
    stride: int,
) -> dict:
    """Rolling-origin evaluation wall-clock, serial vs parallel.

    Beyond the raw timings this records ``parallel_speedup`` (serial
    median over jobsN median — the acceptance-gate ratio) and
    ``deterministic`` (the chunked parallel run must be bit-identical to
    n_jobs=1, which the ``(seed, window)`` reseeding scheme guarantees).
    """
    context_length = forecaster.context_length
    horizon = forecaster.horizon

    def run_backtest(n_jobs):
        return backtest(
            forecaster,
            test_values,
            context_length,
            horizon,
            LEVELS,
            series_start_index=train_length,
            stride=stride,
            n_jobs=n_jobs,
        )

    def run(n_jobs):
        def fn() -> None:
            run_backtest(n_jobs)

        return fn

    run(jobs)()  # warm the persistent pool: time steady state, not spawn
    times = interleaved_times(
        {"serial": run(None), "jobs1": run(1), f"jobs{jobs}": run(jobs)}, repeats
    )
    jobs_key = f"jobs{jobs}"
    serial_result = run_backtest(1)
    parallel_result = run_backtest(jobs)
    deterministic = len(serial_result.forecasts) == len(
        parallel_result.forecasts
    ) and all(
        np.array_equal(a.values, b.values)
        for a, b in zip(serial_result.forecasts, parallel_result.forecasts)
    )
    return {
        **times,
        "windows": serial_result.num_windows,
        "jobs": jobs,
        "stride": stride,
        "parallel_speedup": times["serial"]["median_ms"] / times[jobs_key]["median_ms"],
        "deterministic": deterministic,
    }


def bench_float32(
    forecaster: DeepARForecaster,
    sample_context: np.ndarray,
    test_values: np.ndarray,
    train_length: int,
    start_index: int,
    repeats: int,
    stride: int,
) -> dict:
    """float32 inference vs the float64 default: speed and accuracy gate.

    The gate is statistical, not bitwise: ``standard_t`` rejection
    sampling can consume different rng draws once intermediate values
    differ in the last ulp, so float32 is held to distribution-level
    tolerances — relative wQL delta and absolute coverage delta on a
    same-seed backtest — rather than sample equality.
    """
    context_length = forecaster.context_length
    horizon = forecaster.horizon

    def timed(dtype):
        def fn() -> None:
            forecaster.set_inference_dtype(dtype)
            try:
                forecaster.sample_paths(sample_context, start_index)
            finally:
                forecaster.set_inference_dtype(np.float64)

        return fn

    times = interleaved_times(
        {"float64": timed(np.float64), "float32": timed(np.float32)}, repeats
    )

    def run_backtest():
        return backtest(
            forecaster,
            test_values,
            context_length,
            horizon,
            LEVELS,
            series_start_index=train_length,
            stride=stride,
            n_jobs=None,
        )

    f64 = run_backtest()
    forecaster.set_inference_dtype(np.float32)
    try:
        f32 = run_backtest()
    finally:
        forecaster.set_inference_dtype(np.float64)

    wql_64 = f64.mean_wql()
    wql_32 = f32.mean_wql()
    wql_rel_delta = abs(wql_32 - wql_64) / max(abs(wql_64), 1e-12)
    coverage_delta = max(
        abs(f32.coverage(level) - f64.coverage(level)) for level in LEVELS
    )
    accuracy_ok = bool(
        wql_rel_delta <= WQL_REL_TOLERANCE and coverage_delta <= COVERAGE_TOLERANCE
    )
    return {
        **times,
        "speedup": times["float64"]["median_ms"] / times["float32"]["median_ms"],
        "wql_float64": wql_64,
        "wql_float32": wql_32,
        "wql_rel_delta": wql_rel_delta,
        "wql_rel_tolerance": WQL_REL_TOLERANCE,
        "coverage_max_delta": coverage_delta,
        "coverage_tolerance": COVERAGE_TOLERANCE,
        "accuracy_ok": accuracy_ok,
    }


def bench_tft_predict(
    forecaster: TFTForecaster,
    sample_context: np.ndarray,
    test_values: np.ndarray,
    train_length: int,
    start_index: int,
    repeats: int,
    stride: int,
) -> dict:
    """TFT quantile predict: fused fastpath vs the tape, plus float32.

    The float64 gate is *bitwise* — the fused attention/LayerNorm/GRN
    kernels must reproduce both the quantile grid and the stored
    attention pattern exactly.  float32 (an explicit opt-in) is held to
    the same distribution-level wQL/coverage tolerances as the DeepAR
    sampler.
    """

    def fast() -> None:
        forecaster.predict(sample_context, start_index=start_index)

    def tape() -> None:
        with fastpath.use_fast_path(False):
            forecaster.predict(sample_context, start_index=start_index)

    def f32() -> None:
        forecaster.set_inference_dtype(np.float32)
        try:
            forecaster.predict(sample_context, start_index=start_index)
        finally:
            forecaster.set_inference_dtype(np.float64)

    times = interleaved_times({"fast": fast, "tape": tape, "float32": f32}, repeats)

    fast_forecast = forecaster.predict(sample_context, start_index=start_index)
    fast_attention = forecaster.attention_weights().copy()
    with fastpath.use_fast_path(False):
        tape_forecast = forecaster.predict(sample_context, start_index=start_index)
    tape_attention = forecaster.attention_weights().copy()
    values_bitwise = bool(np.array_equal(fast_forecast.values, tape_forecast.values))
    attention_bitwise = bool(np.array_equal(fast_attention, tape_attention))

    def run_backtest():
        return backtest(
            forecaster,
            test_values,
            forecaster.context_length,
            forecaster.horizon,
            LEVELS,
            series_start_index=train_length,
            stride=stride,
            n_jobs=None,
        )

    f64_result = run_backtest()
    forecaster.set_inference_dtype(np.float32)
    try:
        f32_result = run_backtest()
    finally:
        forecaster.set_inference_dtype(np.float64)
    wql_64 = f64_result.mean_wql()
    wql_32 = f32_result.mean_wql()
    wql_rel_delta = abs(wql_32 - wql_64) / max(abs(wql_64), 1e-12)
    coverage_delta = max(
        abs(f32_result.coverage(level) - f64_result.coverage(level))
        for level in LEVELS
    )
    return {
        **times,
        "speedup_vs_tape": times["tape"]["best_ms"] / times["fast"]["best_ms"],
        "float32_speedup": times["tape"]["best_ms"] / times["float32"]["best_ms"],
        "values_bitwise": values_bitwise,
        "attention_bitwise": attention_bitwise,
        "wql_float64": wql_64,
        "wql_float32": wql_32,
        "wql_rel_delta": wql_rel_delta,
        "wql_rel_tolerance": WQL_REL_TOLERANCE,
        "coverage_max_delta": coverage_delta,
        "coverage_tolerance": COVERAGE_TOLERANCE,
        "float32_accuracy_ok": bool(
            wql_rel_delta <= WQL_REL_TOLERANCE
            and coverage_delta <= COVERAGE_TOLERANCE
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="perf_inference")
    parser.add_argument("--quick", action="store_true",
                        help="CI-scale run: fewer epochs and repeats")
    parser.add_argument("--output", default="BENCH_inference.json")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per variant (overrides --quick)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count for the backtest benchmark")
    parser.add_argument("--strict-parallel", action="store_true",
                        help="exit non-zero when parallel_speedup < 1 "
                             "(default: warn only — a one-core runner "
                             "cannot win)")
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 7)
    epochs = 2 if args.quick else 6
    days = 8 if args.quick else 12
    context_length, horizon = 72, 72
    stride = 12  # 72/72 back-to-back yields too few windows to amortise fan-out

    print(f"training DeepAR ({epochs} epochs, {days}-day trace)...", file=sys.stderr)
    trace = alibaba_like_trace(num_steps=days * STEPS_PER_DAY, seed=3)
    train, test = trace.split(test_fraction=0.25)
    forecaster = DeepARForecaster(
        context_length, horizon, hidden_size=32, num_layers=2, num_samples=100,
        config=TrainingConfig(epochs=epochs, batch_size=64, window_stride=3, seed=0),
    ).fit(train.values)
    sample_context = test.values[:context_length]

    print(f"timing ({repeats} repeats/variant, interleaved)...", file=sys.stderr)
    report = {
        "benchmark": "inference",
        "config": {
            "quick": args.quick,
            "repeats": repeats,
            "context_length": context_length,
            "horizon": horizon,
            "hidden_size": 32,
            "num_layers": 2,
            "num_samples": 100,
            "stride": stride,
            "cpu_count": os.cpu_count(),
        },
        "lstm_step": bench_lstm_step(forecaster, repeats),
        "sample_paths": bench_sample_paths(
            forecaster, sample_context, len(train.values), repeats
        ),
        "backtest": bench_backtest(
            forecaster, test.values, len(train.values), max(1, repeats // 2),
            args.jobs, stride,
        ),
        "float32": bench_float32(
            forecaster, sample_context, test.values, len(train.values),
            len(train.values), max(1, repeats // 2), stride,
        ),
    }

    print(f"training TFT ({epochs} epochs)...", file=sys.stderr)
    tft = TFTForecaster(
        context_length, horizon, quantile_levels=LEVELS, d_model=32, num_heads=4,
        config=TrainingConfig(epochs=epochs, batch_size=64, window_stride=3, seed=0),
    ).fit(train.values)
    report["tft_predict"] = bench_tft_predict(
        tft, sample_context, test.values, len(train.values),
        len(train.values), repeats, stride,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    sp = report["sample_paths"]
    print(f"lstm_step   : {report['lstm_step']['speedup']:.2f}x fast vs tape")
    print(
        f"sample_paths: fast {sp['fast']['best_ms']:.1f}ms  "
        f"tape {sp['tape']['best_ms']:.1f}ms  legacy {sp['legacy']['best_ms']:.1f}ms  "
        f"-> {sp['speedup_vs_legacy']:.2f}x vs legacy, parity={sp['parity_fast_vs_tape']}"
    )
    bt = report["backtest"]
    jobs_key = f"jobs{bt['jobs']}"
    print(
        f"backtest    : serial {bt['serial']['best_ms']:.0f}ms  "
        f"jobs1 {bt['jobs1']['best_ms']:.0f}ms  "
        f"{jobs_key} {bt[jobs_key]['best_ms']:.0f}ms  "
        f"({bt['windows']} windows, {bt['parallel_speedup']:.2f}x parallel, "
        f"deterministic={bt['deterministic']})"
    )
    f32 = report["float32"]
    print(
        f"float32     : {f32['speedup']:.2f}x vs float64  "
        f"wQL rel delta {f32['wql_rel_delta']:.2e}  "
        f"coverage delta {f32['coverage_max_delta']:.3f}  "
        f"accuracy_ok={f32['accuracy_ok']}"
    )
    tp = report["tft_predict"]
    print(
        f"tft_predict : fast {tp['fast']['best_ms']:.1f}ms  "
        f"tape {tp['tape']['best_ms']:.1f}ms  -> {tp['speedup_vs_tape']:.2f}x, "
        f"bitwise values={tp['values_bitwise']} attention={tp['attention_bitwise']}, "
        f"float32 wQL rel delta {tp['wql_rel_delta']:.2e} "
        f"(accuracy_ok={tp['float32_accuracy_ok']})"
    )
    print(f"wrote {args.output}")
    failed = False
    if not sp["parity_fast_vs_tape"]:
        print("PARITY FAILURE: fast and tape paths disagree", file=sys.stderr)
        failed = True
    if not (tp["values_bitwise"] and tp["attention_bitwise"]):
        print(
            "TFT PARITY FAILURE: fused kernels are not bitwise-identical "
            "to the tape in float64",
            file=sys.stderr,
        )
        failed = True
    if not tp["float32_accuracy_ok"]:
        print(
            "TFT FLOAT32 ACCURACY FAILURE: deltas exceed the documented tolerance",
            file=sys.stderr,
        )
        failed = True
    if not bt["deterministic"]:
        print(
            "DETERMINISM FAILURE: parallel backtest differs from n_jobs=1",
            file=sys.stderr,
        )
        failed = True
    if not f32["accuracy_ok"]:
        print(
            "FLOAT32 ACCURACY FAILURE: deltas exceed the documented tolerance",
            file=sys.stderr,
        )
        failed = True
    if bt["parallel_speedup"] < 1.0:
        message = (
            f"parallel_speedup {bt['parallel_speedup']:.2f}x < 1.0 "
            f"(cpu_count={os.cpu_count()})"
        )
        if args.strict_parallel:
            print(f"PARALLEL GATE FAILURE: {message}", file=sys.stderr)
            failed = True
        else:
            print(f"WARNING: {message} — warn-only without --strict-parallel",
                  file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
