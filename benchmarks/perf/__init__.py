"""Performance micro-benchmarks for the inference fast path.

Unlike the table/figure benchmarks (pytest files one level up), these
are plain executable scripts that emit machine-readable JSON — CI runs
them in ``--quick`` mode and archives the output::

    PYTHONPATH=src python -m benchmarks.perf.perf_inference --quick \
        --output BENCH_inference.json
"""
