"""Training fast-path micro-benchmarks -> BENCH_training.json.

Three measurements around the analytic training kernels
(:mod:`repro.nn.fastgrad`) and the persistent evaluation pool:

* **epoch_deepar / epoch_mlp / epoch_tft** — wall-clock of one training
  epoch with ``train_fast_path=True`` (fused analytic forward+backward)
  vs ``False`` (the autograd tape), on freshly built networks so both
  variants optimise from the same weights; the TFT speedup is hard-gated
  at ``TFT_MIN_SPEEDUP``;
* **parity** — the two paths must follow the same loss trajectory; the
  max relative divergence over a short multi-epoch fit is recorded and
  gated (1e-6 drift allowance for DeepAR/MLP, bitwise-level 1e-12 for
  the TFT, whose fastgrad mirrors the tape composition exactly);
* **pool_reuse** — repeated ``backtest(n_jobs=2)`` calls on the shared
  persistent pool, against serial and against a fresh throwaway pool
  per call (the historical regression: per-call pool spawn made small
  parallel backtests ~14x slower than serial); records
  ``parallel_speedup`` (serial over reused-pool median);
* **float32_kernels** — the fused LSTM training kernels
  (:func:`repro.nn.fastgrad.lstm_forward_train` + backward) run in
  float32 vs float64 at benchmark shapes.  Training itself stays
  float64; this measures the kernel headroom the inference float32 mode
  taps into.

Variants are timed interleaved (fast, tape, fast, tape, ...) so clock
drift hits both equally — ratios are stable where absolute numbers are
not.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.perf_training --quick \
        --output BENCH_training.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.evaluation.backtest import backtest
from repro.forecast import DeepARForecaster, MLPForecaster, TFTForecaster, TrainingConfig
from repro.parallel import shutdown_shared_pool
from repro.traces import STEPS_PER_DAY, alibaba_like_trace

from .perf_inference import interleaved_times

LEVELS = (0.1, 0.5, 0.9)

# Loss trajectories are mathematically identical; summation order
# differs, so allow accumulated float drift but nothing structural.
PARITY_RTOL = 1e-6

# The TFT fastgrad path mirrors the tape composition op for op
# (including summation order), so its losses are bitwise-identical —
# gate at 1e-12 rather than the drift allowance above.
TFT_PARITY_RTOL = 1e-12

# Hard floor for the analytic TFT epoch speedup over the tape.
TFT_MIN_SPEEDUP = 1.5


def _fit_config(fast: bool, epochs: int, seed: int = 0) -> TrainingConfig:
    return TrainingConfig(
        epochs=epochs,
        batch_size=64,
        window_stride=3,
        seed=seed,
        patience=0,  # fixed-length runs: timing must not depend on early stopping
        train_fast_path=fast,
    )


def _make_deepar(fast: bool, epochs: int, context_length: int, horizon: int):
    return DeepARForecaster(
        context_length, horizon, hidden_size=32, num_layers=2, num_samples=100,
        config=_fit_config(fast, epochs),
    )


def _make_mlp(fast: bool, epochs: int, context_length: int, horizon: int):
    return MLPForecaster(
        context_length, horizon, hidden_size=64, config=_fit_config(fast, epochs)
    )


def _make_tft(fast: bool, epochs: int, context_length: int, horizon: int):
    return TFTForecaster(
        context_length, horizon, d_model=32, num_heads=4,
        config=_fit_config(fast, epochs),
    )


def bench_epoch(factory, train_values: np.ndarray, repeats: int) -> dict:
    """One-epoch fit wall-clock, analytic fast path vs tape.

    Each timed call builds and fits a fresh forecaster (same seed, same
    data) — that includes dataset/scaler setup, so the ratio slightly
    *understates* the pure backward-pass speedup.
    """

    def run(fast: bool):
        def fn() -> None:
            factory(fast, 1).fit(train_values)

        return fn

    times = interleaved_times({"fast": run(True), "tape": run(False)}, repeats)
    return {
        **times,
        "speedup": times["tape"]["best_ms"] / times["fast"]["best_ms"],
    }


def bench_parity(
    factory, train_values: np.ndarray, epochs: int, rtol: float = PARITY_RTOL
) -> dict:
    """Max relative train-loss divergence between the two paths."""
    fast = factory(True, epochs).fit(train_values)
    tape = factory(False, epochs).fit(train_values)
    fast_losses = np.array([r["train_loss"] for r in fast.history])
    tape_losses = np.array([r["train_loss"] for r in tape.history])
    rel = np.abs(fast_losses - tape_losses) / np.maximum(np.abs(tape_losses), 1e-12)
    return {
        "epochs": epochs,
        "max_rel_loss_diff": float(rel.max()),
        "fast_losses": [float(v) for v in fast_losses],
        "tape_losses": [float(v) for v in tape_losses],
        "rtol": rtol,
        "ok": bool(rel.max() < rtol),
    }


def bench_pool_reuse(
    forecaster, test_values: np.ndarray, train_length: int, repeats: int, jobs: int
) -> dict:
    """Repeated parallel backtests: persistent pool vs spawn-per-call.

    ``reused`` calls hit the shared pool (already warm after the first
    call); ``fresh_pool`` forces a throwaway pool per call, which is the
    pre-fix behaviour.  ``serial`` (n_jobs=1) is the floor a small
    workload should stay near.
    """
    kwargs = dict(
        context_length=forecaster.context_length,
        horizon=forecaster.horizon,
        levels=LEVELS,
        series_start_index=train_length,
    )

    def serial() -> None:
        backtest(forecaster, test_values, n_jobs=1, **kwargs)

    def reused() -> None:
        backtest(forecaster, test_values, n_jobs=jobs, **kwargs)

    # Warm the shared pool so `reused` times steady-state, and measure
    # the one-time startup separately.
    shutdown_shared_pool()
    start = time.perf_counter()
    reused()
    startup_ms = (time.perf_counter() - start) * 1e3

    times = interleaved_times({"serial": serial, "reused": reused}, repeats)

    # Pre-fix behaviour: spawn (and tear down) a pool every call.
    fresh: list[float] = []
    for _ in range(max(2, repeats // 2)):
        shutdown_shared_pool()
        start = time.perf_counter()
        reused()
        fresh.append((time.perf_counter() - start) * 1e3)
    shutdown_shared_pool()

    # Determinism across reuse: pooled calls must equal n_jobs=1.
    base = backtest(forecaster, test_values, n_jobs=1, **kwargs)
    pooled = [backtest(forecaster, test_values, n_jobs=jobs, **kwargs) for _ in range(2)]
    identical = all(
        np.array_equal(a.values, b.values)
        for run in pooled
        for a, b in zip(base.forecasts, run.forecasts)
    )
    shutdown_shared_pool()

    return {
        **times,
        "fresh_pool": {"best_ms": float(np.min(fresh)), "median_ms": float(np.median(fresh))},
        "pool_startup_ms": startup_ms,
        "reuse_speedup_vs_fresh": float(np.min(fresh)) / times["reused"]["best_ms"],
        "parallel_speedup": times["serial"]["median_ms"] / times["reused"]["median_ms"],
        "jobs": jobs,
        "deterministic": bool(identical),
    }


def bench_float32_kernels(
    hidden_size: int, num_layers: int, repeats: int,
    batch: int = 64, steps: int = 72, features: int = 6,
) -> dict:
    """Fused LSTM forward+backward, float32 vs float64, same shapes.

    Gradients are compared against the float64 run (max relative
    difference) as a sanity record — float32 training is not wired up,
    so this is informational, not gated.
    """
    from repro.nn import fastgrad

    rng = np.random.default_rng(11)
    x = rng.normal(size=(batch, steps, features))
    layer_params = []
    for layer in range(num_layers):
        in_size = features if layer == 0 else hidden_size
        layer_params.append((
            rng.normal(size=(in_size, 4 * hidden_size), scale=0.1),
            rng.normal(size=(hidden_size, 4 * hidden_size), scale=0.1),
            rng.normal(size=4 * hidden_size, scale=0.1),
        ))

    def run(dtype):
        def fn() -> None:
            outputs, caches = fastgrad.lstm_forward_train(
                x, layer_params, hidden_size, dtype=dtype
            )
            fastgrad.lstm_backward(np.ones_like(outputs), caches, hidden_size)

        return fn

    times = interleaved_times(
        {"float64": run(np.float64), "float32": run(np.float32)}, repeats
    )

    grads = {}
    for dtype in (np.float64, np.float32):
        outputs, caches = fastgrad.lstm_forward_train(
            x, layer_params, hidden_size, dtype=dtype
        )
        grads[dtype], _, _ = fastgrad.lstm_backward(
            np.ones_like(outputs), caches, hidden_size
        )
    rel_diffs = []
    for g64, g32 in zip(grads[np.float64], grads[np.float32]):
        for a, b in zip(g64, g32):
            denom = np.maximum(np.abs(a), 1e-8)
            rel_diffs.append(float(np.max(np.abs(a - b.astype(np.float64)) / denom)))
    return {
        **times,
        "speedup": times["float64"]["median_ms"] / times["float32"]["median_ms"],
        "max_rel_grad_diff": max(rel_diffs),
        "batch": batch,
        "steps": steps,
        "hidden_size": hidden_size,
        "num_layers": num_layers,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="perf_training")
    parser.add_argument("--quick", action="store_true",
                        help="CI-scale run: fewer repeats, shorter trace")
    parser.add_argument("--output", default="BENCH_training.json")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per variant (overrides --quick)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count for the pool-reuse benchmark")
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 5)
    parity_epochs = 2 if args.quick else 4
    days = 8 if args.quick else 12
    context_length, horizon = 72, 72

    print(f"generating {days}-day trace...", file=sys.stderr)
    trace = alibaba_like_trace(num_steps=days * STEPS_PER_DAY, seed=3)
    train, test = trace.split(test_fraction=0.25)

    def deepar_factory(fast: bool, epochs: int):
        return _make_deepar(fast, epochs, context_length, horizon)

    def mlp_factory(fast: bool, epochs: int):
        return _make_mlp(fast, epochs, context_length, horizon)

    def tft_factory(fast: bool, epochs: int):
        return _make_tft(fast, epochs, context_length, horizon)

    print(f"timing epochs ({repeats} repeats/variant, interleaved)...", file=sys.stderr)
    report = {
        "benchmark": "training",
        "config": {
            "quick": args.quick,
            "repeats": repeats,
            "context_length": context_length,
            "horizon": horizon,
            "hidden_size": 32,
            "num_layers": 2,
            "batch_size": 64,
            "window_stride": 3,
        },
        "epoch_deepar": bench_epoch(deepar_factory, train.values, repeats),
        "epoch_mlp": bench_epoch(mlp_factory, train.values, repeats),
        "epoch_tft": bench_epoch(tft_factory, train.values, repeats),
        "parity": {
            "deepar": bench_parity(deepar_factory, train.values, parity_epochs),
            "mlp": bench_parity(mlp_factory, train.values, parity_epochs),
            "tft": bench_parity(
                tft_factory, train.values, parity_epochs, rtol=TFT_PARITY_RTOL
            ),
        },
    }

    print("timing float32 kernels...", file=sys.stderr)
    report["float32_kernels"] = bench_float32_kernels(32, 2, repeats)

    print("timing pool reuse...", file=sys.stderr)
    eval_forecaster = _make_deepar(True, 1, context_length, horizon).fit(train.values)
    report["pool_reuse"] = bench_pool_reuse(
        eval_forecaster, test.values, len(train.values), repeats, args.jobs
    )

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    for key in ("epoch_deepar", "epoch_mlp", "epoch_tft"):
        e = report[key]
        print(
            f"{key:12s}: fast {e['fast']['best_ms']:.0f}ms  "
            f"tape {e['tape']['best_ms']:.0f}ms  -> {e['speedup']:.2f}x"
        )
    for model, p in report["parity"].items():
        print(
            f"parity {model:6s}: max rel loss diff {p['max_rel_loss_diff']:.2e} "
            f"({'ok' if p['ok'] else 'FAIL'})"
        )
    fk = report["float32_kernels"]
    print(
        f"float32_kern: f64 {fk['float64']['best_ms']:.0f}ms  "
        f"f32 {fk['float32']['best_ms']:.0f}ms  -> {fk['speedup']:.2f}x, "
        f"max rel grad diff {fk['max_rel_grad_diff']:.2e}"
    )
    pr = report["pool_reuse"]
    print(
        f"pool_reuse  : serial {pr['serial']['best_ms']:.0f}ms  "
        f"reused {pr['reused']['best_ms']:.0f}ms  "
        f"fresh {pr['fresh_pool']['best_ms']:.0f}ms  "
        f"-> {pr['reuse_speedup_vs_fresh']:.1f}x "
        f"({pr['parallel_speedup']:.2f}x vs serial), "
        f"deterministic={pr['deterministic']}"
    )
    print(f"wrote {args.output}")

    failed = [m for m, p in report["parity"].items() if not p["ok"]]
    if failed:
        print(f"PARITY FAILURE: {', '.join(failed)} trajectories diverge", file=sys.stderr)
        return 1
    if not pr["deterministic"]:
        print("DETERMINISM FAILURE: pooled backtests disagree with serial", file=sys.stderr)
        return 1
    if report["epoch_tft"]["speedup"] < TFT_MIN_SPEEDUP:
        print(
            f"SPEEDUP FAILURE: analytic TFT epoch "
            f"{report['epoch_tft']['speedup']:.2f}x < {TFT_MIN_SPEEDUP}x tape",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
