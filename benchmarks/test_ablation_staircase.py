"""Ablation — two-level adaptive (Algorithm 1) vs the staircase extension.

The paper sketches extending the adaptive policy "beyond just two
optional quantile levels ... a staircase-like range of options".  We
quantify what the extra rungs buy: with cut points at the uncertainty
distribution's terciles, a 3-rung staircase should interpolate the
trade-off curve more finely than any single two-level policy with the
same extremes — matching the conservative end's robustness at lower
total allocation.
"""

import numpy as np
import pytest

from repro.core import StaircasePolicy, UncertaintyAwarePolicy, quantile_uncertainty
from repro.core.plan import required_nodes

from benchmarks.helpers import THETA, print_header, provisioning_rates


def _total_nodes(rolling, bound_fn) -> int:
    return int(
        sum(
            required_nodes(np.maximum(bound_fn(fc), 0.0), THETA).sum()
            for fc in rolling.forecasts
        )
    )


def test_staircase_ablation(benchmark, trace_name, tft_rolling):
    uncertainty = np.concatenate(
        [quantile_uncertainty(fc) for fc in tft_rolling.forecasts]
    )
    t1, t2 = np.quantile(uncertainty, [1 / 3, 2 / 3])

    policies = {
        "fixed-0.7": lambda fc: fc.at(0.7),
        "fixed-0.95": lambda fc: fc.at(0.95),
        "two-level 0.7/0.95": UncertaintyAwarePolicy(
            0.7, 0.95, uncertainty_threshold=float(t1)
        ).bound_workload,
        "staircase 0.7/0.9/0.95": StaircasePolicy(
            [(0.0, 0.7), (float(t1), 0.9), (float(t2), 0.95)]
        ).bound_workload,
    }

    print_header(
        f"Ablation — staircase vs two-level adaptive ({trace_name}, TFT)",
        f"uncertainty terciles: {t1:.1f}, {t2:.1f}",
    )
    print(f"{'policy':<24} {'under':>8} {'over':>8} {'node-steps':>11}")
    results = {}
    for name, bound_fn in policies.items():
        under, over = provisioning_rates(tft_rolling, bound_fn)
        nodes = _total_nodes(tft_rolling, bound_fn)
        results[name] = (under, over, nodes)
        print(f"{name:<24} {under:>8.4f} {over:>8.4f} {nodes:>11}")

    stair = results["staircase 0.7/0.9/0.95"]
    two = results["two-level 0.7/0.95"]
    conservative = results["fixed-0.95"]
    optimistic = results["fixed-0.7"]
    # The staircase sits inside the fixed envelope.
    assert optimistic[0] >= stair[0] >= conservative[0] - 1e-9
    assert optimistic[2] <= stair[2] <= conservative[2]
    # And it spends fewer nodes than always-conservative.
    assert stair[2] < conservative[2]

    benchmark(lambda: provisioning_rates(tft_rolling, policies["staircase 0.7/0.9/0.95"]))
