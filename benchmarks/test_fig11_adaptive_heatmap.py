"""Figure 11 — adaptive (tau1, tau2) heatmaps for DeepAR and TFT.

For every combination of two optional quantile levels the adaptive
policy (Algorithm 1) picks the conservative tau2 on high-uncertainty
steps and the optimistic tau1 otherwise; the diagonal (tau1 == tau2)
degenerates to the basic fixed-quantile method.  The paper's claim:
relative to fixed-tau2, the adaptive combination cuts over-provisioning
without giving up (much) under-provisioning robustness.

The uncertainty threshold rho is calibrated per model to the median
per-step uncertainty across the evaluation windows.
"""

import numpy as np
import pytest

from repro.core import UncertaintyAwarePolicy, quantile_uncertainty

from benchmarks.helpers import print_header, provisioning_rates

LEVELS = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99)


def _rho(rolling) -> float:
    return float(
        np.median(np.concatenate([quantile_uncertainty(fc) for fc in rolling.forecasts]))
    )


def _heatmap(rolling, rho):
    under = np.full((len(LEVELS), len(LEVELS)), np.nan)
    over = np.full((len(LEVELS), len(LEVELS)), np.nan)
    for i, tau1 in enumerate(LEVELS):
        for j, tau2 in enumerate(LEVELS):
            if tau1 > tau2:
                continue
            policy = UncertaintyAwarePolicy(tau1, tau2, uncertainty_threshold=rho)
            under[i, j], over[i, j] = provisioning_rates(
                rolling, policy.bound_workload
            )
    return under, over


def _print_matrix(name, matrix):
    print(f"\n{name} (rows tau1, cols tau2):")
    print("      " + "".join(f"{tau:>7}" for tau in LEVELS))
    for i, tau1 in enumerate(LEVELS):
        cells = "".join(
            f"{matrix[i, j]:>7.3f}" if not np.isnan(matrix[i, j]) else f"{'':>7}"
            for j in range(len(LEVELS))
        )
        print(f"{tau1:>6}{cells}")


def test_fig11_heatmaps(benchmark, trace_name, deepar_rolling, tft_rolling):
    print_header(f"Figure 11 — adaptive quantile-combination heatmaps ({trace_name})")
    for rolling, label in ((deepar_rolling, "DeepAR"), (tft_rolling, "TFT")):
        rho = _rho(rolling)
        under, over = _heatmap(rolling, rho)
        print(f"\n=== {label} (rho = {rho:.1f}) ===")
        _print_matrix("under-provisioning", under)
        _print_matrix("over-provisioning", over)

        diag = np.arange(len(LEVELS))
        for i, tau1 in enumerate(LEVELS):
            for j in range(i + 1, len(LEVELS)):
                # Adaptive (tau1, tau2) sits between the fixed endpoints.
                assert under[i, j] <= under[i, i] + 1e-9, (label, tau1, LEVELS[j])
                assert under[i, j] >= under[j, j] - 1e-9
                assert over[i, j] <= over[j, j] + 1e-9
                assert over[i, j] >= over[i, i] - 1e-9

        # The paper's headline cell-level claim, checked on a canonical
        # combination (0.8, 0.95): less over-provisioning than fixed-0.95
        # at under-provisioning far below fixed-0.8.
        i, j = LEVELS.index(0.8), LEVELS.index(0.95)
        assert over[i, j] < over[j, j]
        assert under[i, j] <= under[i, i]

    benchmark(
        lambda: provisioning_rates(
            tft_rolling,
            UncertaintyAwarePolicy(0.8, 0.95, uncertainty_threshold=1.0).bound_workload,
        )
    )
