"""Figure 9 — under-provisioning rate across all scaling strategies.

The paper's headline comparison on both traces: reactive scalers
(Reactive-Max, Reactive-Avg), point-forecast scalers (QB5000,
TFT-point), their CloudScale-style padding enhancements, and the robust
quantile strategies DeepAR-tau / TFT-tau for tau in {0.6, 0.8, 0.9}.

Expected shape:
* predictive strategies beat reactive ones (inherent reactive lag);
* quantile strategies beat point strategies, even when the quantile
  model (DeepAR) is less accurate than the point model (TFT);
* padding improves point forecasting but does not catch the robust
  quantile strategies;
* under-provisioning falls monotonically with tau.
"""

import numpy as np
import pytest

from repro.core import (
    PointForecastScaler,
    ReactiveAvgScaler,
    ReactiveMaxScaler,
    evaluate_strategy,
)
from repro.forecast import PaddedPointForecaster

from benchmarks.helpers import (
    CONTEXT,
    EVAL_STRIDE,
    HORIZON,
    THETA,
    print_header,
    provisioning_rates,
)

TAUS = (0.6, 0.8, 0.9)


def _point_rates(forecaster, name, test_series, train_length, padding=False):
    if padding:
        forecaster = PaddedPointForecaster(forecaster, window=HORIZON * 4, percentile=0.95)
        forecaster._fitted = True
    scaler = PointForecastScaler(forecaster, THETA, name=name)

    def feedback(point, plan, actual):
        if padding:
            forecaster.observe(actual, plan.metadata["point_forecast"])

    ev = evaluate_strategy(
        scaler, test_series, CONTEXT, HORIZON, THETA, stride=EVAL_STRIDE,
        on_window=feedback, series_start_index=train_length,
    )
    return ev.report.under_provisioning_rate, ev.report.over_provisioning_rate


def test_fig9(
    benchmark,
    trace_name,
    test_series,
    train_series,
    qb5000,
    tft_point,
    deepar_rolling,
    tft_rolling,
):
    rows: list[tuple[str, float, float]] = []

    for scaler in (ReactiveMaxScaler(), ReactiveAvgScaler()):
        ev = evaluate_strategy(
            scaler, test_series, CONTEXT, HORIZON, THETA, stride=EVAL_STRIDE
        )
        rows.append(
            (scaler.name, ev.report.under_provisioning_rate,
             ev.report.over_provisioning_rate)
        )

    train_length = len(train_series)
    for name, forecaster, pad in [
        ("QB5000", qb5000, False),
        ("QB5000-padding", qb5000, True),
        ("TFT-point", tft_point, False),
        ("TFT-point-padding", tft_point, True),
    ]:
        under, over = _point_rates(forecaster, name, test_series, train_length, pad)
        rows.append((name, under, over))

    for rolling, label in ((deepar_rolling, "DeepAR"), (tft_rolling, "TFT")):
        for tau in TAUS:
            under, over = provisioning_rates(rolling, lambda fc, t=tau: fc.at(t))
            rows.append((f"{label}-{tau}", under, over))

    print_header(
        f"Figure 9 — under-provisioning rates ({trace_name})",
        f"theta = {THETA}% CPU per node, horizon {HORIZON} steps",
    )
    print(f"{'strategy':<20} {'under-prov':>11} {'over-prov':>10}")
    for name, under, over in rows:
        print(f"{name:<20} {under:>11.4f} {over:>10.4f}")

    by_name = {name: under for name, under, _ in rows}
    # Predictive beats reactive (reactive lag).
    assert by_name["TFT-0.9"] < by_name["Reactive-Avg"]
    # Quantile strategies beat raw point strategies.
    assert by_name["TFT-0.9"] < by_name["TFT-point"]
    assert by_name["DeepAR-0.9"] < by_name["TFT-point"]
    # Padding helps point forecasting but monotone tau ordering holds.
    assert by_name["TFT-point-padding"] <= by_name["TFT-point"] + 1e-9
    for label in ("DeepAR", "TFT"):
        taus = [by_name[f"{label}-{tau}"] for tau in TAUS]
        assert taus == sorted(taus, reverse=True) or max(taus) - min(taus) < 1e-9

    benchmark(lambda: provisioning_rates(tft_rolling, lambda fc: fc.at(0.9)))
