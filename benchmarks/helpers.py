"""Shared machinery for the benchmark/experiment harness.

Every benchmark reproduces one table or figure from the paper at a
laptop-scale budget.  Models are trained once per session (see
``conftest.py``) and their rolling forecasts over the test split are
cached, so re-planning with different policies/quantiles — which is what
most figures sweep — costs almost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import decision_points
from repro.forecast.base import Forecaster, QuantileForecast

# ---------------------------------------------------------------------------
# Experiment scale (reduced relative to the paper; shapes, not magnitudes,
# are the reproduction target — see EXPERIMENTS.md)
# ---------------------------------------------------------------------------
TRACE_DAYS = 12
CONTEXT = 72  # 12 hours at 10-minute steps, as in the paper
HORIZON = 72
THETA = 60.0  # percentage-CPU threshold per node
EVAL_STRIDE = 36  # decisions every 6 hours for more evaluation windows
TABLE1_LEVELS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
SCALING_LEVELS = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99)
ALL_LEVELS = tuple(sorted(set(TABLE1_LEVELS) | set(SCALING_LEVELS)))


@dataclass
class RollingForecasts:
    """Quantile forecasts for every decision window over a test split."""

    model: str
    points: list[int]
    forecasts: list[QuantileForecast]
    actuals: list[np.ndarray]

    @property
    def merged_actual(self) -> np.ndarray:
        return np.concatenate(self.actuals)

    def merged_level(self, tau: float) -> np.ndarray:
        return np.concatenate([fc.at(tau) for fc in self.forecasts])

    def merged_levels(self, levels: tuple[float, ...]) -> dict[float, np.ndarray]:
        return {tau: self.merged_level(tau) for tau in levels}

    def merged_point(self) -> np.ndarray:
        return np.concatenate([fc.point for fc in self.forecasts])


def rolling_forecasts(
    model: Forecaster,
    model_name: str,
    test_values: np.ndarray,
    train_length: int,
    levels: tuple[float, ...] = ALL_LEVELS,
    context: int = CONTEXT,
    horizon: int = HORIZON,
    stride: int = EVAL_STRIDE,
) -> RollingForecasts:
    """Forecast every decision window of the test split once."""
    points = decision_points(len(test_values), context, horizon, stride)
    forecasts, actuals = [], []
    for point in points:
        fc = model.predict(
            test_values[point - context : point],
            levels=levels,
            start_index=train_length + point - context,
        )
        forecasts.append(fc)
        actuals.append(test_values[point : point + horizon])
    return RollingForecasts(model_name, points, forecasts, actuals)


def provisioning_rates(
    forecasts: RollingForecasts, bound_fn, threshold: float = THETA
) -> tuple[float, float]:
    """(under, over) rates when allocating to ``bound_fn(forecast)``."""
    from repro.core import ScalingPlan, evaluate_plan, required_nodes

    nodes = np.concatenate(
        [
            required_nodes(np.maximum(bound_fn(fc), 0.0), threshold)
            for fc in forecasts.forecasts
        ]
    )
    plan = ScalingPlan(nodes=nodes, threshold=threshold)
    report = evaluate_plan(plan, forecasts.merged_actual)
    return report.under_provisioning_rate, report.over_provisioning_rate


def print_header(title: str, detail: str = "") -> None:
    bar = "=" * max(len(title), 60)
    print(f"\n{bar}\n{title}")
    if detail:
        print(detail)
    print(bar)
