"""Figure 12 — sensitivity of the adaptive policy to the uncertainty
threshold rho (Google trace).

Sweeping rho from 0 (always conservative) to +inf (always optimistic)
moves the adaptive policy between its two fixed endpoints.  The paper
observes distinct *step-like* changes: ranges of rho yield identical
rates because only a handful of per-step uncertainty values separate the
regimes — which is what makes threshold selection forgiving in practice.
"""

import numpy as np
import pytest

from repro.core import UncertaintyAwarePolicy, quantile_uncertainty

from benchmarks.helpers import print_header, provisioning_rates

COMBOS = [(0.7, 0.9), (0.8, 0.95)]


@pytest.fixture(scope="module", autouse=True)
def only_google(trace_name):
    if trace_name != "google":
        pytest.skip("the paper runs Figure 12 on the Google trace")


def test_fig12_threshold_sweep(benchmark, tft_rolling):
    all_uncertainty = np.concatenate(
        [quantile_uncertainty(fc) for fc in tft_rolling.forecasts]
    )
    # Sweep thresholds across the uncertainty distribution's range.
    sweep = np.quantile(all_uncertainty, np.linspace(0.0, 1.0, 13))
    sweep = np.concatenate([[0.0], sweep, [np.inf]])

    print_header(
        "Figure 12 — sensitivity to the uncertainty threshold (Google, TFT)"
    )
    for tau1, tau2 in COMBOS:
        print(f"\ncombination (tau1={tau1}, tau2={tau2}):")
        print(f"{'rho':>12} {'under-prov':>11} {'over-prov':>10}")
        unders, overs = [], []
        for rho in sweep:
            policy = UncertaintyAwarePolicy(tau1, tau2, uncertainty_threshold=float(rho))
            under, over = provisioning_rates(tft_rolling, policy.bound_workload)
            unders.append(under)
            overs.append(over)
            label = f"{rho:.1f}" if np.isfinite(rho) else "inf"
            print(f"{label:>12} {under:>11.4f} {over:>10.4f}")

        unders, overs = np.array(unders), np.array(overs)
        # Endpoints are the fixed policies.
        end_conservative = provisioning_rates(
            tft_rolling, lambda fc, t=tau2: fc.at(t)
        )
        end_optimistic = provisioning_rates(tft_rolling, lambda fc, t=tau1: fc.at(t))
        assert unders[0] == pytest.approx(end_conservative[0])
        assert unders[-1] == pytest.approx(end_optimistic[0])
        # Raising rho (less conservative) never decreases under-provisioning
        # and never increases over-provisioning.
        assert np.all(np.diff(unders) >= -1e-9)
        assert np.all(np.diff(overs) <= 1e-9)
        # Step-like structure: adjacent thresholds often yield identical rates.
        repeats = int((np.diff(unders) == 0).sum())
        print(f"plateau segments: {repeats}/{len(unders) - 1} adjacent pairs identical")
        assert repeats >= 2

    benchmark(
        lambda: provisioning_rates(
            tft_rolling,
            UncertaintyAwarePolicy(0.7, 0.9, uncertainty_threshold=1.0).bound_workload,
        )
    )
