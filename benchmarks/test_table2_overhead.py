"""Table II — computation overhead of one scaling decision cycle.

Times one full decision for each method: reactive scalers (window
statistic + allocation), the QB5000 hybrid, DeepAR (inference requires
sampling 100 paths through the RNN — the paper measures it an order of
magnitude slower than TFT), and TFT (direct quantile output).

Expected shape: reactive < QB5000 ~ TFT << DeepAR.  Absolute numbers
differ from the paper's (different hardware and runtime), the ordering
should not.
"""

import numpy as np
import pytest

from repro.core import ReactiveAvgScaler, ReactiveMaxScaler, required_nodes

from benchmarks.helpers import CONTEXT, THETA, print_header


@pytest.fixture(scope="module", autouse=True)
def only_alibaba(trace_name):
    if trace_name != "alibaba":
        pytest.skip("Table II is measured once (hardware metric, not per-trace)")


@pytest.fixture(scope="module")
def recent(test_series):
    return test_series[:CONTEXT]


@pytest.mark.benchmark(group="table2-decision-cycle")
def test_reactive_max(benchmark, recent):
    scaler = ReactiveMaxScaler(window=6)

    def decide():
        estimate = scaler.window_statistic(recent[-6:])
        return required_nodes(np.array([estimate]), THETA)

    benchmark(decide)


@pytest.mark.benchmark(group="table2-decision-cycle")
def test_reactive_avg(benchmark, recent):
    scaler = ReactiveAvgScaler(window=6)

    def decide():
        estimate = scaler.window_statistic(recent[-6:])
        return required_nodes(np.array([estimate]), THETA)

    benchmark(decide)


@pytest.mark.benchmark(group="table2-decision-cycle")
def test_qb5000(benchmark, qb5000, recent, train_series):
    def decide():
        forecast = qb5000.predict_point(recent, start_index=len(train_series))
        return required_nodes(np.maximum(forecast, 0.0), THETA)

    benchmark(decide)


@pytest.mark.benchmark(group="table2-decision-cycle")
def test_deepar(benchmark, deepar, recent, train_series):
    def decide():
        fc = deepar.predict(recent, levels=(0.9,), start_index=len(train_series))
        return required_nodes(np.maximum(fc.values[0], 0.0), THETA)

    benchmark(decide)


@pytest.mark.benchmark(group="table2-decision-cycle")
def test_tft(benchmark, tft, recent, train_series):
    def decide():
        fc = tft.predict(recent, levels=(0.9,), start_index=len(train_series))
        return required_nodes(np.maximum(fc.values[0], 0.0), THETA)

    benchmark(decide)


def test_table2_summary(benchmark, qb5000, deepar, tft, recent, train_series):
    """Print the Table II rows directly (single-shot timings)."""
    import time

    def timed(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best * 1000

    reactive_max = ReactiveMaxScaler(window=6)
    reactive_avg = ReactiveAvgScaler(window=6)
    rows = [
        ("Reactive-Max", timed(lambda: reactive_max.window_statistic(recent[-6:]))),
        ("Reactive-Average", timed(lambda: reactive_avg.window_statistic(recent[-6:]))),
        ("Hybrid(QB5000)", timed(lambda: qb5000.predict_point(recent))),
        ("DeepAR", timed(lambda: deepar.predict(recent, levels=(0.9,)))),
        ("TFT", timed(lambda: tft.predict(recent, levels=(0.9,)))),
    ]
    print_header("Table II — computation overhead comparison")
    print(f"{'Method':<18} {'Execution Time':>16}")
    for name, ms in rows:
        print(f"{name:<18} {ms:>13.2f} ms")

    times = dict(rows)
    # Paper shape: DeepAR inference is the most expensive by a wide margin.
    assert times["DeepAR"] > times["TFT"]
    assert times["Reactive-Max"] < times["TFT"]
    benchmark(lambda: reactive_max.window_statistic(recent[-6:]))
