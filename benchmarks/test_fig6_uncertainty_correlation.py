"""Figure 6 — the Eq. 8 uncertainty metric tracks forecast accuracy.

The paper plots per-step uncertainty U next to the per-step MSE of the
mean forecast and the per-step mean weighted quantile loss over sampled
horizons, and observes that "higher levels of uncertainty at each time
step are generally indicative of less accurate predictions".

That is a statement about conditional averages, and with bursty
workloads the per-step error is an extremely heavy-tailed variable — a
single step's error says little, so we evaluate the claim the way it is
used by Algorithm 1: split steps by their uncertainty and compare mean
accuracy between the high-U and low-U halves (and extreme quartiles).
Rank correlations are reported as diagnostics.
"""

import numpy as np
import pytest
from scipy import stats

from repro.core import quantile_uncertainty

from benchmarks.helpers import TABLE1_LEVELS, print_header, rolling_forecasts


@pytest.fixture(scope="module")
def dense_rolling(tft, test_series, train_series):
    """Denser decision grid than the shared fixture (more steps to bin)."""
    return rolling_forecasts(tft, "TFT", test_series, len(train_series), stride=12)


def _per_step_series(rolling):
    uncertainty, sq_error, pinball = [], [], []
    for fc, actual in zip(rolling.forecasts, rolling.actuals):
        uncertainty.append(quantile_uncertainty(fc))
        sq_error.append((fc.point - actual) ** 2)
        step_losses = np.zeros(fc.horizon)
        for tau in TABLE1_LEVELS:
            values = fc.at(tau)
            indicator = (actual < values).astype(float)
            step_losses += (tau - indicator) * (actual - values)
        pinball.append(step_losses / len(TABLE1_LEVELS))
    return (
        np.concatenate(uncertainty),
        np.concatenate(sq_error),
        np.concatenate(pinball),
    )


def test_fig6_uncertainty_tracks_error(benchmark, trace_name, dense_rolling):
    uncertainty, sq_error, pinball = _per_step_series(dense_rolling)

    print_header(
        f"Figure 6 — uncertainty vs accuracy ({trace_name}, TFT)",
        f"{len(uncertainty)} forecast steps across "
        f"{len(dense_rolling.forecasts)} sampled horizons",
    )

    # Decile view (the figure's qualitative content).
    order = np.argsort(uncertainty)
    deciles = np.array_split(order, 10)
    print(f"{'U decile':>9} {'mean U':>10} {'mean sq.err':>12} {'mean QL':>10}")
    for i, idx in enumerate(deciles):
        print(
            f"{i:>9} {uncertainty[idx].mean():>10.1f} "
            f"{sq_error[idx].mean():>12.1f} {pinball[idx].mean():>10.2f}"
        )

    median = np.median(uncertainty)
    high, low = uncertainty >= median, uncertainty < median
    q1, q4 = np.quantile(uncertainty, [0.25, 0.75])
    top, bottom = uncertainty >= q4, uncertainty <= q1
    ratio_half = sq_error[high].mean() / sq_error[low].mean()
    ratio_quart = sq_error[top].mean() / sq_error[bottom].mean()
    ratio_ql = pinball[top].mean() / pinball[bottom].mean()
    print(f"\nmean sq.err, high-U half / low-U half : {ratio_half:.2f}x")
    print(f"mean sq.err, top / bottom U quartile   : {ratio_quart:.2f}x")
    print(f"mean QL,     top / bottom U quartile   : {ratio_ql:.2f}x")
    print(
        "rank correlations (diagnostic): "
        f"spearman(U, sq.err) = {stats.spearmanr(uncertainty, sq_error).statistic:.3f}, "
        f"pearson(U, sq.err) = {stats.pearsonr(uncertainty, sq_error).statistic:.3f}"
    )

    # The paper's operational claim: high-uncertainty steps are, on
    # average, forecast less accurately — the signal Algorithm 1 exploits.
    assert ratio_quart > 1.0
    assert ratio_ql > 1.0

    benchmark(lambda: quantile_uncertainty(dense_rolling.forecasts[0]))
