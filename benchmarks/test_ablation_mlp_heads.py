"""Ablation — parametric vs quantile-grid output at fixed capacity.

Section III-B2 contrasts the two probabilistic methodologies and notes
the same architecture can implement either.  We train the identical
two-hidden-layer MLP body with (a) a Gaussian head + NLL and (b) a
quantile-grid head + pinball loss, and compare quantile accuracy.

Expected shape (the paper's "Pros, Cons & Selection Criteria"): the grid
head, free of the Gaussian's symmetric-thin-tail assumption, wins on
quantile accuracy at the scaling-relevant upper levels on bursty data.
"""

import numpy as np
import pytest

from repro.evaluation import mean_weighted_quantile_loss, weighted_quantile_loss
from repro.forecast import MLPForecaster, MLPQuantileForecaster, TrainingConfig

from benchmarks.helpers import (
    CONTEXT,
    HORIZON,
    TABLE1_LEVELS,
    print_header,
    rolling_forecasts,
)


@pytest.fixture(scope="module")
def heads(train_series, test_series):
    config = TrainingConfig(epochs=12, batch_size=64, window_stride=3, patience=3, seed=0)
    parametric = MLPForecaster(CONTEXT, HORIZON, hidden_size=64, config=config).fit(
        train_series
    )
    grid = MLPQuantileForecaster(
        CONTEXT, HORIZON, quantile_levels=TABLE1_LEVELS, hidden_size=64, config=config
    ).fit(train_series)
    return {
        "gaussian-head": rolling_forecasts(
            parametric, "MLP-gaussian", test_series, len(train_series),
            levels=TABLE1_LEVELS,
        ),
        "quantile-grid-head": rolling_forecasts(
            grid, "MLP-grid", test_series, len(train_series),
            levels=TABLE1_LEVELS,
        ),
    }


def test_mlp_head_ablation(benchmark, trace_name, heads):
    print_header(
        f"Ablation — MLP output head: parametric vs quantile grid ({trace_name})"
    )
    print(f"{'head':<20} {'mean_wQL':>10} {'wQL[0.9]':>10}")
    summary = {}
    for name, rolling in heads.items():
        target = rolling.merged_actual
        mean_wql = mean_weighted_quantile_loss(
            target, rolling.merged_levels(TABLE1_LEVELS)
        )
        wql90 = weighted_quantile_loss(target, rolling.merged_level(0.9), 0.9)
        summary[name] = (mean_wql, wql90)
        print(f"{name:<20} {mean_wql:>10.4f} {wql90:>10.4f}")

    # Both heads must be in a sane range; report which wins.
    for mean_wql, wql90 in summary.values():
        assert np.isfinite([mean_wql, wql90]).all()
    winner = min(summary, key=lambda k: summary[k][0])
    print(f"\nlower mean_wQL: {winner}")

    rolling = heads["quantile-grid-head"]
    benchmark(
        lambda: mean_weighted_quantile_loss(
            rolling.merged_actual, rolling.merged_levels(TABLE1_LEVELS)
        )
    )
