"""Figure 5 — scale-out overhead is seconds-scale.

The paper's Figure 5 (data from Alibaba Cloud) shows that scaling out a
storage-disaggregated database — rebuilding in-memory components from
checkpoints — takes only a few seconds.  We reproduce the shape on the
simulator: warm-up grows linearly with checkpoint size and stays in
single-digit seconds for realistic buffer-pool checkpoints, which is
negligible against the 600-second scaling interval.
"""

import numpy as np
import pytest

from repro.core import solve_closed_form
from repro.simulator import SharedStorage, replay_plan

from benchmarks.helpers import print_header


@pytest.fixture(scope="module", autouse=True)
def only_alibaba(trace_name):
    if trace_name != "alibaba":
        pytest.skip("Figure 5 is a property of the simulator, not of a trace")


CHECKPOINT_SIZES_GB = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0]


def test_fig5_warmup_curve(benchmark):
    print_header(
        "Figure 5 — scale-out overhead vs in-memory checkpoint size",
        "warm-up = attach latency + checkpoint / rebuild bandwidth",
    )
    print(f"{'checkpoint (GB)':>16} {'warm-up (s)':>12} {'% of 10-min interval':>22}")
    warmups = []
    for size in CHECKPOINT_SIZES_GB:
        storage = SharedStorage(
            checkpoint_gb=size, rebuild_bandwidth_gbps=1.2,
            attach_latency_s=0.8, jitter_fraction=0.0,
        )
        seconds = storage.expected_warmup_seconds()
        warmups.append(seconds)
        print(f"{size:>16.1f} {seconds:>12.2f} {100 * seconds / 600:>21.2f}%")

    # Shape: linear in checkpoint size, seconds-scale throughout.
    assert all(w < 30.0 for w in warmups)
    increments = np.diff(warmups) / np.diff(CHECKPOINT_SIZES_GB)
    np.testing.assert_allclose(increments, increments[0], rtol=1e-9)

    benchmark(
        lambda: SharedStorage(checkpoint_gb=4.0, jitter_fraction=0.0).warmup_seconds()
    )


def test_fig5_negligible_in_replay(benchmark, test_series):
    """End-to-end: warm-up costs <1% capacity at the paper's interval."""
    w = test_series[:72]
    plan = solve_closed_form(w, 60.0)
    result = replay_plan(
        plan, w, interval_seconds=600.0,
        storage=SharedStorage(checkpoint_gb=4.0, jitter_fraction=0.0),
    )
    efficiency = [o.effective_nodes / o.target_nodes for o in result.outcomes]
    print(f"\nmean capacity efficiency during replay: {np.mean(efficiency):.4f}")
    assert np.mean(efficiency) > 0.99
    benchmark(
        lambda: replay_plan(
            plan, w, interval_seconds=600.0,
            storage=SharedStorage(checkpoint_gb=4.0, jitter_fraction=0.0),
        )
    )
