"""Table I — forecasting accuracy of ARIMA / MLP / DeepAR / TFT.

Reproduces the paper's Table I at laptop scale: mean_wQL, wQL at
{0.7, 0.8, 0.9}, Coverage at {0.7, 0.8, 0.9}, and MSE, per model, on
both traces.  Expected shape (not magnitudes): DeepAR and TFT beat ARIMA
and MLP on every wQL column, with TFT best overall and roughly an order
of magnitude worse wQL on the Google trace than on Alibaba.
"""

import numpy as np
import pytest

from repro.evaluation import evaluate_quantile_forecast, format_table

from benchmarks.helpers import TABLE1_LEVELS, print_header


@pytest.fixture(scope="module")
def reports(trace_name, arima_rolling, mlp_rolling, deepar_rolling, tft_rolling):
    out = []
    for rolling in (arima_rolling, mlp_rolling, deepar_rolling, tft_rolling):
        target = rolling.merged_actual
        forecasts = rolling.merged_levels(TABLE1_LEVELS)
        out.append(
            evaluate_quantile_forecast(
                rolling.model, trace_name, target, forecasts,
                point_forecast=rolling.merged_point(),
            )
        )
    return out


def test_table1(benchmark, trace_name, reports, tft, test_series, train_series):
    print_header(
        f"Table I — forecast accuracy on the {trace_name} trace",
        "context 72 steps, horizon 72 steps, A = {0.1..0.9}",
    )
    print(format_table(reports))

    by_model = {r.model: r for r in reports}
    # Paper shape: neural probabilistic models beat the simple baselines.
    # (On the hardest trace TFT and MLP run close at laptop budgets —
    # allow a 15% band there; DeepAR must win outright, and both must
    # beat ARIMA.)
    assert by_model["TFT"].mean_wql < by_model["MLP"].mean_wql * 1.15
    assert by_model["DeepAR"].mean_wql < by_model["MLP"].mean_wql
    assert by_model["TFT"].mean_wql < by_model["ARIMA"].mean_wql
    assert by_model["DeepAR"].mean_wql < by_model["ARIMA"].mean_wql
    # Every model produces sane coverage ordering at increasing levels.
    for report in reports:
        assert report.coverage[0.9] >= report.coverage[0.7] - 0.05

    # Time one full Table I forecast (TFT, one decision window).
    context = test_series[:72]
    benchmark(
        lambda: tft.predict(
            context, levels=TABLE1_LEVELS, start_index=len(train_series)
        )
    )
