"""Extension — QoS impact of scaling strategies (Section V-B future work).

The paper evaluates provisioning against resource thresholds and leaves
QoS modelling to future work.  With the M/M/c performance model from
:mod:`repro.simulator.qos` we close that loop: each strategy's node
allocations are scored against a p99 response-time SLO.

Expected shape: the latency view preserves the resource-view ordering —
robust quantile strategies violate the SLO far less often than median
scaling, at moderate extra node cost.
"""

import numpy as np
import pytest

from repro.core import ScalingPlan, required_nodes
from repro.simulator import evaluate_qos

from benchmarks.helpers import THETA, print_header

SERVICE_RATE = 100.0  # queries/s per node
SLO_SECONDS = 0.025
# A node saturates around 70% CPU in trace units: sustained utilization
# beyond that drives queueing (the reason theta is set at 60%, leaving
# headroom).  This maps the theta=60 operating point to rho ~ 0.86.
PERCENT_PER_NODE = 70.0


def _plan_for(rolling, tau):
    nodes = np.concatenate(
        [
            required_nodes(np.maximum(fc.at(tau), 0.0), THETA)
            for fc in rolling.forecasts
        ]
    )
    return ScalingPlan(nodes=nodes, threshold=THETA, strategy=f"tau={tau}")


def test_qos_across_quantiles(benchmark, trace_name, tft_rolling):
    actual = tft_rolling.merged_actual
    print_header(
        f"Extension — p99 latency SLO across quantile levels ({trace_name})",
        f"M/M/c, mu = {SERVICE_RATE}/s per node, SLO p99 <= {SLO_SECONDS * 1000:.0f} ms",
    )
    print(f"{'tau':>6} {'SLO violations':>15} {'mean p99 (ms)':>14} {'node-steps':>11}")
    results = {}
    for tau in (0.5, 0.7, 0.9, 0.99):
        plan = _plan_for(tft_rolling, tau)
        report = evaluate_qos(
            plan, actual, service_rate=SERVICE_RATE, slo_seconds=SLO_SECONDS,
            percent_per_node=PERCENT_PER_NODE,
        )
        results[tau] = report
        print(
            f"{tau:>6} {report.slo_violation_rate:>15.4f} "
            f"{report.mean_p99 * 1000:>14.2f} {plan.total_nodes:>11}"
        )

    violations = [results[tau].slo_violation_rate for tau in (0.5, 0.7, 0.9, 0.99)]
    # Higher quantiles monotonically improve the latency SLO.
    assert all(a >= b - 1e-9 for a, b in zip(violations, violations[1:]))
    assert results[0.99].slo_violation_rate < results[0.5].slo_violation_rate

    plan = _plan_for(tft_rolling, 0.9)
    benchmark(
        lambda: evaluate_qos(
            plan, actual, service_rate=SERVICE_RATE, slo_seconds=SLO_SECONDS,
            percent_per_node=PERCENT_PER_NODE,
        )
    )
