"""Figure 10 — the under/over-provisioning trade-off across quantiles.

Scaling against forecasts at tau in {0.5 .. 0.99} traces the trade-off
curve: under-provisioning falls monotonically with tau while
over-provisioning rises; the crossover region identifies the operating
point the paper recommends choosing.
"""

import numpy as np
import pytest

from benchmarks.helpers import SCALING_LEVELS, print_header, provisioning_rates


def test_fig10_sweep(benchmark, trace_name, deepar_rolling, tft_rolling):
    print_header(
        f"Figure 10 — provisioning rates vs quantile level ({trace_name})"
    )
    curves = {}
    for rolling, label in ((deepar_rolling, "DeepAR"), (tft_rolling, "TFT")):
        print(f"\n{label}:")
        print(f"{'tau':>6} {'under-prov':>11} {'over-prov':>10}")
        unders, overs = [], []
        for tau in SCALING_LEVELS:
            under, over = provisioning_rates(rolling, lambda fc, t=tau: fc.at(t))
            unders.append(under)
            overs.append(over)
            print(f"{tau:>6} {under:>11.4f} {over:>10.4f}")
        curves[label] = (np.array(unders), np.array(overs))

    for label, (unders, overs) in curves.items():
        # Monotone trade-off (allowing tiny ties at node granularity).
        assert np.all(np.diff(unders) <= 1e-9), f"{label} under not non-increasing"
        assert np.all(np.diff(overs) >= -1e-9), f"{label} over not non-decreasing"
        # The sweep actually moves both rates materially.
        assert unders[0] - unders[-1] > 0.05
        assert overs[-1] - overs[0] > 0.05

    # Identify the crossover operating point the paper's Figure 10 suggests.
    unders, overs = curves["TFT"]
    crossover = SCALING_LEVELS[int(np.argmin(np.abs(unders - (1 - overs))))]
    print(f"\nTFT balance point (under ~= 1 - over): tau ~ {crossover}")

    benchmark(lambda: provisioning_rates(tft_rolling, lambda fc: fc.at(0.9)))
