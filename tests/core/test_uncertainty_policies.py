"""Tests for the Eq. 8 uncertainty metric and quantile-selection policies."""

import numpy as np
import pytest

from repro.core import (
    FixedQuantilePolicy,
    StaircasePolicy,
    UncertaintyAwarePolicy,
    quantile_uncertainty,
)
from repro.core.uncertainty import distribution_uncertainty, forecast_uncertainty
from repro.distributions import Gaussian
from repro.forecast import QuantileForecast


def fan_forecast(width: float, horizon: int = 4) -> QuantileForecast:
    """Symmetric quantile fan of the given half-width around 100."""
    levels = np.array([0.1, 0.5, 0.9])
    values = np.stack(
        [
            np.full(horizon, 100.0 - width),
            np.full(horizon, 100.0),
            np.full(horizon, 100.0 + width),
        ]
    )
    return QuantileForecast(levels=levels, values=values)


class TestQuantileUncertainty:
    def test_collapsed_fan_zero_uncertainty(self):
        np.testing.assert_allclose(quantile_uncertainty(fan_forecast(0.0)), 0.0)

    def test_uncertainty_non_negative(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            base = rng.uniform(10, 100, size=5)
            spread = rng.uniform(0, 20, size=(3, 5))
            values = np.sort(base + np.cumsum(spread, axis=0), axis=0)
            fc = QuantileForecast(levels=np.array([0.2, 0.5, 0.8]), values=values)
            assert np.all(quantile_uncertainty(fc) >= -1e-12)

    def test_wider_fan_higher_uncertainty(self):
        narrow = quantile_uncertainty(fan_forecast(5.0))
        wide = quantile_uncertainty(fan_forecast(20.0))
        assert np.all(wide > narrow)

    def test_exact_value_symmetric_fan(self):
        # upper: 0.9 * width ; lower: (1-0.1) * width ; median contributes 0
        width = 10.0
        expected = 0.9 * width + 0.9 * width
        np.testing.assert_allclose(quantile_uncertainty(fan_forecast(width)), expected)

    def test_per_step_resolution(self):
        levels = np.array([0.1, 0.5, 0.9])
        values = np.array(
            [[99.0, 90.0], [100.0, 100.0], [101.0, 110.0]]
        )  # step 0 tight, step 1 wide
        fc = QuantileForecast(levels=levels, values=values)
        u = quantile_uncertainty(fc)
        assert u[1] > u[0]

    def test_distribution_uncertainty_is_std(self):
        d = Gaussian(np.zeros(3), np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(distribution_uncertainty(d), [1.0, 2.0, 3.0])

    def test_normalised_variant_scale_free(self):
        small = forecast_uncertainty(fan_forecast(10.0), normalise=True)
        big_fc = fan_forecast(10.0)
        big_fc = QuantileForecast(levels=big_fc.levels, values=big_fc.values * 10)
        big = forecast_uncertainty(big_fc, normalise=True)
        np.testing.assert_allclose(small, big, rtol=1e-9)


class TestFixedPolicy:
    def test_constant_levels(self):
        policy = FixedQuantilePolicy(0.9)
        np.testing.assert_array_equal(
            policy.select_levels(fan_forecast(5.0)), np.full(4, 0.9)
        )

    def test_bound_is_quantile(self):
        policy = FixedQuantilePolicy(0.9)
        np.testing.assert_allclose(
            policy.bound_workload(fan_forecast(5.0)), np.full(4, 105.0)
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            FixedQuantilePolicy(1.0)

    def test_name(self):
        assert FixedQuantilePolicy(0.8).name == "fixed-0.8"


class TestUncertaintyAwarePolicy:
    def test_algorithm1_switching(self):
        """Low-U steps use tau1; high-U steps use tau2 (Algorithm 1)."""
        levels = np.array([0.1, 0.5, 0.9])
        values = np.array([[99.0, 80.0], [100.0, 100.0], [101.0, 120.0]])
        fc = QuantileForecast(levels=levels, values=values)
        u = quantile_uncertainty(fc)
        threshold = (u[0] + u[1]) / 2
        policy = UncertaintyAwarePolicy(0.7, 0.9, uncertainty_threshold=threshold)
        np.testing.assert_array_equal(policy.select_levels(fc), [0.7, 0.9])

    def test_threshold_boundary_is_conservative(self):
        """At U == rho exactly, Algorithm 1 picks the conservative level."""
        fc = fan_forecast(10.0)
        u = quantile_uncertainty(fc)[0]
        policy = UncertaintyAwarePolicy(0.6, 0.9, uncertainty_threshold=u)
        np.testing.assert_array_equal(policy.select_levels(fc), np.full(4, 0.9))

    def test_infinite_threshold_always_optimistic(self):
        policy = UncertaintyAwarePolicy(0.6, 0.9, uncertainty_threshold=np.inf)
        np.testing.assert_array_equal(
            policy.select_levels(fan_forecast(50.0)), np.full(4, 0.6)
        )

    def test_zero_threshold_always_conservative(self):
        policy = UncertaintyAwarePolicy(0.6, 0.9, uncertainty_threshold=0.0)
        np.testing.assert_array_equal(
            policy.select_levels(fan_forecast(50.0)), np.full(4, 0.9)
        )

    def test_bound_mixes_levels(self):
        levels = np.array([0.1, 0.5, 0.9])
        values = np.array([[99.0, 80.0], [100.0, 100.0], [101.0, 120.0]])
        fc = QuantileForecast(levels=levels, values=values)
        u = quantile_uncertainty(fc)
        policy = UncertaintyAwarePolicy(
            0.5, 0.9, uncertainty_threshold=(u[0] + u[1]) / 2
        )
        bound = policy.bound_workload(fc)
        assert bound[0] == pytest.approx(100.0)  # optimistic median at step 0
        assert bound[1] == pytest.approx(120.0)  # conservative 0.9 at step 1

    def test_rejects_inverted_levels(self):
        with pytest.raises(ValueError):
            UncertaintyAwarePolicy(0.9, 0.6, uncertainty_threshold=1.0)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            UncertaintyAwarePolicy(0.6, 0.9, uncertainty_threshold=-1.0)


class TestStaircasePolicy:
    def test_three_rung_selection(self):
        rungs = [(0.0, 0.6), (10.0, 0.8), (30.0, 0.95)]
        policy = StaircasePolicy(rungs)
        levels = np.array([0.1, 0.5, 0.9])
        # widths 2, 12, 40 -> uncertainties 3.6, 21.6, 72
        values = np.array(
            [
                [98.0, 88.0, 60.0],
                [100.0, 100.0, 100.0],
                [102.0, 112.0, 140.0],
            ]
        )
        fc = QuantileForecast(levels=levels, values=values)
        np.testing.assert_array_equal(policy.select_levels(fc), [0.6, 0.8, 0.95])

    def test_two_rungs_equivalent_to_algorithm1(self):
        fc = fan_forecast(10.0)
        u = float(quantile_uncertainty(fc)[0])
        stair = StaircasePolicy([(0.0, 0.6), (u, 0.9)])
        adaptive = UncertaintyAwarePolicy(0.6, 0.9, uncertainty_threshold=u)
        np.testing.assert_array_equal(
            stair.select_levels(fc), adaptive.select_levels(fc)
        )

    def test_rejects_unsorted_cutoffs(self):
        with pytest.raises(ValueError):
            StaircasePolicy([(5.0, 0.6), (0.0, 0.9)])

    def test_rejects_decreasing_taus(self):
        with pytest.raises(ValueError):
            StaircasePolicy([(0.0, 0.9), (5.0, 0.6)])

    def test_rejects_nonzero_base(self):
        with pytest.raises(ValueError):
            StaircasePolicy([(1.0, 0.6)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            StaircasePolicy([])
