"""Tests for the event-driven step API and runtime checkpoint surface."""

import numpy as np
import pytest

from repro.core import AutoscalingRuntime, ScalingPlan, StepResult
from repro.core.plan import required_nodes
from repro.obs import AlertEngine, ModelHealthMonitor, default_rules


class QuantilePlanner:
    """Deterministic planner carrying forecast metadata (test double)."""

    name = "quantile-double"

    def __init__(self, horizon, threshold):
        self.horizon = horizon
        self.threshold = threshold
        self.calls = []

    def plan(self, context, start_index=0):
        self.calls.append(start_index)
        base = float(np.mean(context))
        levels = np.array([0.1, 0.5, 0.9])
        values = np.vstack([
            np.full(self.horizon, base * f) for f in (0.8, 1.0, 1.2)
        ])
        return ScalingPlan(
            nodes=required_nodes(values[-1], self.threshold),
            threshold=self.threshold,
            strategy=self.name,
            quantile_levels=(0.9,),
            metadata={"forecast_levels": levels, "forecast_values": values},
        )


def make_runtime(context=6, horizon=4, start_tick=0, monitor=None, replan=None):
    return AutoscalingRuntime(
        planner=QuantilePlanner(horizon, 60.0),
        context_length=context,
        horizon=horizon,
        threshold=60.0,
        replan_every=replan,
        start_tick=start_tick,
        monitor=monitor,
    )


SERIES = np.abs(np.random.default_rng(7).normal(300, 80, size=40))


class TestStepEquivalence:
    def test_step_matches_target_nodes_observe_pair(self):
        classic = make_runtime()
        stepped = make_runtime()
        for value in SERIES:
            expected = classic.target_nodes()
            classic.observe(value)
            assert stepped.step(value).target_nodes == expected
        assert len(classic.decisions) == len(stepped.decisions)
        for a, b in zip(classic.decisions, stepped.decisions):
            assert a.to_state() == b.to_state()

    def test_run_is_a_thin_loop_over_step(self):
        loop = make_runtime()
        manual = make_runtime()
        allocations = loop.run(SERIES)
        stepped = np.array([manual.step(v).target_nodes for v in SERIES])
        np.testing.assert_array_equal(allocations, stepped)


class TestStepResult:
    def test_result_is_stamped_with_the_interval_tick(self):
        runtime = make_runtime(start_tick=100)
        results = [runtime.step(v) for v in SERIES[:10]]
        assert [r.tick for r in results] == list(range(100, 110))
        assert all(isinstance(r, StepResult) for r in results)

    def test_planned_flag_and_decision_surface_new_plans(self):
        runtime = make_runtime(context=6, horizon=4)
        results = [runtime.step(v) for v in SERIES[:20]]
        planned = [r for r in results if r.planned]
        # First plan once the context fills (tick 6), then every 4 ticks.
        assert [r.tick for r in planned] == [6, 10, 14, 18]
        for r in planned:
            assert r.decision is not None
            assert r.decision.tick == r.tick
            assert r.source == "predictive"
        unplanned = [r for r in results if not r.planned]
        assert all(r.decision is None for r in unplanned)

    def test_cold_start_steps_report_fallback_source(self):
        runtime = make_runtime(context=6)
        results = [runtime.step(v) for v in SERIES[:6]]
        assert {r.source for r in results} == {"reactive-fallback"}
        assert all(r.observed is not None for r in results)


class TestPhaseMethods:
    def test_actuate_does_not_plan(self):
        runtime = make_runtime(context=4)
        for value in SERIES[:6]:
            runtime.step(value)
        calls_before = len(runtime.planner.calls)
        runtime.actuate()
        assert len(runtime.planner.calls) == calls_before

    def test_request_replan_forces_a_plan_at_next_step(self):
        runtime = make_runtime(context=4, horizon=8)
        for value in SERIES[:6]:
            runtime.step(value)
        # Plan committed at tick 4 covers through tick 11; without the
        # request the next step would not plan.
        runtime.request_replan()
        result = runtime.step(SERIES[6])
        assert result.planned

    def test_maybe_plan_force_before_context_full_returns_none(self):
        runtime = make_runtime(context=8)
        runtime.step(SERIES[0])
        assert runtime.maybe_plan(force=True) is None


class TestTickConsolidation:
    def test_monitor_and_provenance_share_the_step_tick(self):
        monitor = ModelHealthMonitor(
            window=8, alerts=AlertEngine(default_rules(nominal_level=0.9))
        )
        runtime = make_runtime(context=6, start_tick=500, monitor=monitor)
        runtime.record_provenance = True
        for value in SERIES:
            runtime.step(value)
        # Monitored intervals start once the first plan exists (tick 506)
        # and use the same absolute tick the decision log uses.
        indices = [w.start_index for w in monitor.windows]
        assert indices and all(i >= 506 for i in indices)
        decision_ticks = {d.tick for d in runtime.decisions}
        assert {p["time_index"] for p in runtime.provenance} == decision_ticks


class TestStateDictRoundTrip:
    def test_mid_run_round_trip_is_bit_identical(self):
        full = make_runtime(context=6, horizon=4, start_tick=50)
        half = make_runtime(context=6, horizon=4, start_tick=50)
        for value in SERIES[:17]:
            full.step(value)
            half.step(value)
        state = half.state_dict()
        restored = make_runtime(context=6, horizon=4, start_tick=50)
        restored.load_state_dict(state)
        tail_full = [full.step(v).target_nodes for v in SERIES[17:]]
        tail_restored = [restored.step(v).target_nodes for v in SERIES[17:]]
        assert tail_full == tail_restored
        assert [d.to_state() for d in full.decisions] == [
            d.to_state() for d in restored.decisions
        ]

    def test_state_dict_is_json_safe(self):
        import json

        runtime = make_runtime()
        for value in SERIES[:10]:
            runtime.step(value)
        encoded = json.dumps(runtime.state_dict())
        restored = make_runtime()
        restored.load_state_dict(json.loads(encoded))
        plan = restored._current_plan
        assert isinstance(plan.metadata["forecast_values"], np.ndarray)
        assert plan.metadata["forecast_values"].shape == (3, 4)


class TestConstructorCompat:
    def test_start_index_kwarg_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="start_index"):
            runtime = AutoscalingRuntime(
                planner=QuantilePlanner(4, 60.0),
                context_length=6,
                horizon=4,
                threshold=60.0,
                start_index=123,
            )
        assert runtime.start_tick == 123
        assert runtime.start_index == 123  # read-only alias still works

    def test_unknown_kwarg_raises_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            AutoscalingRuntime(
                planner=QuantilePlanner(4, 60.0),
                context_length=6,
                horizon=4,
                threshold=60.0,
                bogus=1,
            )

    def test_time_index_alias(self):
        runtime = make_runtime(start_tick=9)
        runtime.step(100.0)
        assert runtime.time_index == runtime.tick == 10
