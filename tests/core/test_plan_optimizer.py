"""Tests for scaling plans, provisioning reports, and the solvers."""

import numpy as np
import pytest

from repro.core import (
    ScalingPlan,
    evaluate_plan,
    required_nodes,
    solve_closed_form,
    solve_lp,
    solve_with_ramp_limits,
)


class TestRequiredNodes:
    def test_exact_division(self):
        np.testing.assert_array_equal(required_nodes(np.array([120.0]), 60.0), [2])

    def test_ceiling(self):
        np.testing.assert_array_equal(required_nodes(np.array([121.0]), 60.0), [3])

    def test_minimum_one_node(self):
        np.testing.assert_array_equal(required_nodes(np.array([0.0]), 60.0), [1])

    def test_per_step_thresholds(self):
        out = required_nodes(np.array([100.0, 100.0]), np.array([50.0, 100.0]))
        np.testing.assert_array_equal(out, [2, 1])

    def test_constraint_satisfied(self):
        rng = np.random.default_rng(0)
        w = rng.uniform(0, 5000, size=200)
        c = required_nodes(w, 60.0)
        assert np.all(w / c <= 60.0 + 1e-9)

    def test_minimality(self):
        rng = np.random.default_rng(1)
        w = rng.uniform(100, 5000, size=200)
        c = required_nodes(w, 60.0)
        # One fewer node must violate wherever c > 1.
        mask = c > 1
        assert np.all(w[mask] / (c[mask] - 1) > 60.0)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            required_nodes(np.array([1.0]), 0.0)

    def test_rejects_negative_workload(self):
        with pytest.raises(ValueError):
            required_nodes(np.array([-1.0]), 60.0)


class TestScalingPlan:
    def test_total_nodes(self):
        plan = ScalingPlan(nodes=np.array([2, 3, 4]), threshold=60.0)
        assert plan.total_nodes == 9
        assert plan.horizon == 3

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            ScalingPlan(nodes=np.array([0, 1]), threshold=60.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ScalingPlan(nodes=np.ones((2, 2), dtype=int), threshold=60.0)


class TestEvaluatePlan:
    def test_perfect_plan(self):
        w = np.array([100.0, 200.0, 300.0])
        plan = solve_closed_form(w, 60.0)
        report = evaluate_plan(plan, w)
        assert report.under_provisioning_rate == 0.0
        assert report.over_provisioning_rate == 0.0
        assert report.exact_rate == 1.0

    def test_underestimate_produces_under_provisioning(self):
        forecast = np.array([100.0, 100.0])
        actual = np.array([500.0, 100.0])
        report = evaluate_plan(solve_closed_form(forecast, 60.0), actual)
        assert report.under_provisioning_rate == 0.5
        assert report.violation_steps == 1
        assert report.mean_violation_magnitude > 0

    def test_overestimate_produces_over_provisioning(self):
        forecast = np.array([500.0, 100.0])
        actual = np.array([100.0, 100.0])
        report = evaluate_plan(solve_closed_form(forecast, 60.0), actual)
        assert report.over_provisioning_rate == 0.5
        assert report.mean_excess_nodes > 0

    def test_shape_mismatch_raises(self):
        plan = ScalingPlan(nodes=np.array([1, 1]), threshold=60.0)
        with pytest.raises(ValueError):
            evaluate_plan(plan, np.ones(3))

    def test_minimum_nodes_reported(self):
        actual = np.array([120.0, 240.0])
        plan = ScalingPlan(nodes=np.array([10, 10]), threshold=60.0)
        assert evaluate_plan(plan, actual).minimum_nodes == 2 + 4


class TestSolvers:
    def test_closed_form_satisfies_constraint(self):
        rng = np.random.default_rng(2)
        w = rng.uniform(0, 4000, size=100)
        plan = solve_closed_form(w, 60.0)
        assert np.all(w / plan.nodes <= 60.0 + 1e-9)

    def test_lp_matches_closed_form(self):
        """The ablation claim: both solvers find the same optimum."""
        rng = np.random.default_rng(3)
        for _ in range(5):
            w = rng.uniform(0, 4000, size=72)
            closed = solve_closed_form(w, 60.0)
            lp = solve_lp(w, 60.0)
            np.testing.assert_array_equal(closed.nodes, lp.nodes)

    def test_lp_per_step_thresholds(self):
        w = np.array([100.0, 100.0])
        theta = np.array([50.0, 10.0])
        np.testing.assert_array_equal(solve_lp(w, theta).nodes, [2, 10])

    def test_strategy_label_propagates(self):
        assert solve_closed_form(np.ones(2), 1.0, strategy="x").strategy == "x"


class TestRampLimits:
    def test_unconstrained_when_limits_loose(self):
        w = np.array([100.0, 3000.0, 100.0])
        plan = solve_with_ramp_limits(w, 60.0, max_scale_out=100, max_scale_in=100)
        np.testing.assert_array_equal(plan.nodes, solve_closed_form(w, 60.0).nodes)

    def test_backward_pass_preprovisions_for_spikes(self):
        # demand: [1, 1, 10]; scale-out limit 2/step forces early ramping
        w = np.array([50.0, 50.0, 600.0])
        plan = solve_with_ramp_limits(w, 60.0, max_scale_out=2, max_scale_in=2)
        np.testing.assert_array_equal(plan.nodes, [6, 8, 10])

    def test_forward_pass_limits_scale_in(self):
        w = np.array([600.0, 50.0, 50.0])
        plan = solve_with_ramp_limits(w, 60.0, max_scale_out=5, max_scale_in=3)
        np.testing.assert_array_equal(plan.nodes, [10, 7, 4])

    def test_ramp_constraints_hold(self):
        rng = np.random.default_rng(4)
        w = rng.uniform(0, 4000, size=200)
        plan = solve_with_ramp_limits(w, 60.0, max_scale_out=5, max_scale_in=5)
        deltas = np.diff(plan.nodes)
        assert deltas.max() <= 5
        assert deltas.min() >= -5

    def test_demand_always_met(self):
        rng = np.random.default_rng(5)
        w = rng.uniform(0, 4000, size=200)
        plan = solve_with_ramp_limits(w, 60.0, max_scale_out=5, max_scale_in=5)
        assert np.all(w / plan.nodes <= 60.0 + 1e-9)

    def test_never_cheaper_than_unconstrained(self):
        rng = np.random.default_rng(6)
        w = rng.uniform(0, 4000, size=100)
        constrained = solve_with_ramp_limits(w, 60.0, max_scale_out=2, max_scale_in=2)
        unconstrained = solve_closed_form(w, 60.0)
        assert constrained.total_nodes >= unconstrained.total_nodes

    def test_pointwise_minimality(self):
        """Decreasing any step by one must violate demand or a ramp bound."""
        rng = np.random.default_rng(7)
        w = rng.uniform(0, 4000, size=80)
        out_limit, in_limit = 3, 2
        plan = solve_with_ramp_limits(w, 60.0, out_limit, in_limit)
        demand = solve_closed_form(w, 60.0).nodes
        c = plan.nodes
        for t in range(len(c)):
            lowered = c[t] - 1
            violates_demand = lowered < demand[t]
            violates_out = t + 1 < len(c) and c[t + 1] - lowered > out_limit
            violates_in = t > 0 and c[t - 1] - lowered > in_limit
            assert violates_demand or violates_out or violates_in, f"step {t} not tight"

    def test_initial_anchor_scale_in_limit(self):
        w = np.array([50.0, 50.0])
        plan = solve_with_ramp_limits(
            w, 60.0, max_scale_out=5, max_scale_in=2, initial_nodes=10
        )
        np.testing.assert_array_equal(plan.nodes, [8, 6])

    def test_unreachable_demand_raises(self):
        w = np.array([6000.0])
        with pytest.raises(ValueError):
            solve_with_ramp_limits(
                w, 60.0, max_scale_out=2, max_scale_in=2, initial_nodes=1
            )

    def test_rejects_zero_limits(self):
        with pytest.raises(ValueError):
            solve_with_ramp_limits(np.ones(2), 1.0, max_scale_out=0, max_scale_in=1)

    def test_only_scale_out_limit(self):
        # Scale-in is unconstrained: drop from 10 to 1 in one step, but
        # the spike still forces early ramp-up at 2/step.
        w = np.array([50.0, 50.0, 600.0, 50.0])
        plan = solve_with_ramp_limits(w, 60.0, max_scale_out=2)
        np.testing.assert_array_equal(plan.nodes, [6, 8, 10, 1])

    def test_only_scale_in_limit(self):
        # Scale-out is unconstrained: jump to 10 in one step, but the
        # descent is capped at 3/step.
        w = np.array([600.0, 50.0, 50.0, 50.0])
        plan = solve_with_ramp_limits(w, 60.0, max_scale_in=3)
        np.testing.assert_array_equal(plan.nodes, [10, 7, 4, 1])

    def test_only_scale_in_limit_with_initial_anchor(self):
        w = np.array([50.0, 50.0])
        plan = solve_with_ramp_limits(w, 60.0, max_scale_in=2, initial_nodes=10)
        np.testing.assert_array_equal(plan.nodes, [8, 6])

    def test_no_limits_degrades_to_closed_form(self):
        rng = np.random.default_rng(8)
        w = rng.uniform(0, 4000, size=50)
        plan = solve_with_ramp_limits(w, 60.0)
        np.testing.assert_array_equal(plan.nodes, solve_closed_form(w, 60.0).nodes)

    def test_one_sided_demand_always_met(self):
        rng = np.random.default_rng(9)
        w = rng.uniform(0, 4000, size=200)
        for kwargs in ({"max_scale_out": 4}, {"max_scale_in": 4}):
            plan = solve_with_ramp_limits(w, 60.0, **kwargs)
            assert np.all(w / plan.nodes <= 60.0 + 1e-9), kwargs
